//! The exchange as a simulation node.
//!
//! Ties the whole substrate together behind cross-connect ports (§2):
//! PITCH-like multicast feed out, BOE-like order entry in/out, a matching
//! engine in the middle, and a background order-flow generator standing in
//! for the rest of the market.
//!
//! ## Ports
//!
//! * `feed_ports` — each carries the full multicast feed (two ports make
//!   an A/B pair, as real exchanges publish).
//! * Order entry arrives on *any* port; replies return through the port
//!   the session's traffic came from.
//!
//! ## Timers
//!
//! * [`TICK`] — periodic background-flow batch; re-arms itself. Arm once
//!   from the scenario with `sim.schedule_timer(start, exchange, TICK)`.
//! * [`BURST_BASE`]` + i` — one-shot bursts of `cfg.bursts[i]` events,
//!   scheduled by the scenario to model correlated market-wide spikes.
//!
//! ## Simplifications (documented in DESIGN.md)
//!
//! Order entry rides simplified TCP: segments carry real headers and
//! per-session byte sequence numbers, but there is no handshake or
//! retransmission — order paths in the simulated fabrics are lossless and
//! in-order, so the machinery would never fire.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};
use tn_wire::{boe, eth, ipv4, stack, tcp};

use tn_feed::RetransmissionServer;

use crate::engine::{MatchingEngine, Reply};
use crate::feedpub::FeedPublisher;
use crate::flow::{FlowMix, OrderFlowGenerator};
use crate::partition::PartitionScheme;
use crate::symbols::SymbolDirectory;

/// Timer token for the background-flow tick.
pub const TICK: TimerToken = TimerToken(100);
/// Timer tokens `BURST_BASE + i` fire burst `i` of `ExchangeConfig::bursts`.
pub const BURST_BASE: u64 = 1_000;

const MATCH_TOKEN: u64 = 1;

/// Exchange-side TCP port for order-entry sessions.
pub const ORDER_ENTRY_PORT: u16 = 7_001;

/// UDP port of the exchange's gap-request (retransmission) service.
pub const RETRANS_PORT: u16 = 7_002;

/// Exchange configuration.
pub struct ExchangeConfig {
    /// Identity used in normalized records and diagnostics.
    pub exchange_id: u8,
    /// Listed universe.
    pub directory: SymbolDirectory,
    /// Feed partitioning scheme.
    pub scheme: PartitionScheme,
    /// Multicast group index base: unit `u` publishes to group
    /// `mcast_base + u`.
    pub mcast_base: u32,
    /// Ports carrying the feed (e.g. two for an A/B pair).
    pub feed_ports: Vec<PortId>,
    /// Exchange-side addressing.
    pub src_mac: eth::MacAddr,
    /// Exchange source IP.
    pub src_ip: ipv4::Addr,
    /// UDP port for feed packets.
    pub feed_udp_port: u16,
    /// Matching-engine service time per order-entry message.
    pub order_service: SimTime,
    /// Background events per second (0 disables ambient flow).
    pub background_rate: f64,
    /// Background tick interval.
    pub tick_interval: SimTime,
    /// One-shot burst sizes, fired by `BURST_BASE + index` timers.
    pub bursts: Vec<u32>,
    /// Largest feed payload per packet.
    pub max_payload: usize,
    /// Retransmission history depth per unit (packets). Zero disables the
    /// gap-request service.
    pub retrans_history: usize,
    /// PRNG seed for the exchange's own randomness.
    pub seed: u64,
}

impl ExchangeConfig {
    /// A small default exchange over `directory`.
    pub fn new(exchange_id: u8, directory: SymbolDirectory) -> ExchangeConfig {
        ExchangeConfig {
            exchange_id,
            directory,
            scheme: PartitionScheme::ByHash { units: 4 },
            mcast_base: 0,
            feed_ports: vec![PortId(0)],
            src_mac: eth::MacAddr::host(0xEE00 + u32::from(exchange_id)),
            src_ip: ipv4::Addr::new(10, 200, exchange_id, 1),
            feed_udp_port: 30_001,
            order_service: SimTime::from_us(10),
            background_rate: 0.0,
            tick_interval: SimTime::from_ms(1),
            bursts: Vec::new(),
            max_payload: 1_400,
            retrans_history: 256,
            seed: 1,
        }
    }
}

/// Exchange counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Feed packets emitted (per port).
    pub feed_packets: u64,
    /// Feed messages emitted.
    pub feed_messages: u64,
    /// Order-entry messages processed.
    pub orders_processed: u64,
    /// Replies sent (acks, fills, rejects).
    pub replies_sent: u64,
}

#[derive(Debug, Clone, Copy)]
struct SessionAddr {
    port: PortId,
    mac: eth::MacAddr,
    ip: ipv4::Addr,
    tcp_port: u16,
    /// Next TCP sequence (byte offset) for exchange→firm segments.
    tx_seq: u32,
}

/// The exchange node.
pub struct Exchange {
    cfg: ExchangeConfig,
    engine: MatchingEngine,
    publisher: FeedPublisher,
    flow: OrderFlowGenerator,
    rng: SmallRng,
    /// Stream reassembly per transport peer.
    decoders: HashMap<(ipv4::Addr, u16), boe::Decoder>,
    /// Session id → reply addressing, learned at login.
    sessions: HashMap<u32, SessionAddr>,
    /// Peer → session (so mid-stream messages resolve their session).
    peer_session: HashMap<(ipv4::Addr, u16), u32>,
    matcher: TxQueue,
    retrans: Option<RetransmissionServer>,
    stats: ExchangeStats,
    event_counter: u64,
    /// Wire-to-wire response latencies: for every inbound order frame
    /// whose metadata carries the market-data event time that triggered
    /// it, the picoseconds from that event leaving the matching engine to
    /// the order arriving back — the firm's end-to-end reaction time as
    /// the exchange observes it.
    response_latency_ps: Vec<u64>,
    /// Reusable wire-emission buffer: each feed packet is emitted once
    /// here, then arena-copied per feed port.
    wire_scratch: Vec<u8>,
    /// Reusable BOE reply payload buffer.
    payload_scratch: Vec<u8>,
    /// Reusable per-dispatch output batch (taken/restored around builds).
    outbox: Vec<(PortId, Frame)>,
    /// Reusable background-tick message batch.
    msg_scratch: Vec<tn_wire::pitch::Message>,
    /// Reusable order-entry message batch.
    boe_scratch: Vec<boe::Message>,
}

impl Exchange {
    /// Build the node.
    pub fn new(cfg: ExchangeConfig) -> Exchange {
        let engine = MatchingEngine::new(cfg.directory.instruments().iter().map(|i| i.symbol));
        let publisher = FeedPublisher::new(cfg.scheme, cfg.max_payload, 0);
        let flow = OrderFlowGenerator::new(&cfg.directory, FlowMix::default());
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let matcher = TxQueue::new(MATCH_TOKEN);
        // Recovery replay is policed at ~1 Gbps with a 64 kB burst so it
        // cannot starve the live feed.
        let retrans = (cfg.retrans_history > 0)
            .then(|| RetransmissionServer::new(cfg.retrans_history, 125_000_000, 65_536));
        Exchange {
            cfg,
            engine,
            publisher,
            flow,
            rng,
            decoders: HashMap::new(),
            sessions: HashMap::new(),
            peer_session: HashMap::new(),
            matcher,
            retrans,
            stats: ExchangeStats::default(),
            event_counter: 0,
            response_latency_ps: Vec::new(),
            wire_scratch: Vec::new(),
            payload_scratch: Vec::new(),
            outbox: Vec::new(),
            msg_scratch: Vec::new(),
            boe_scratch: Vec::new(),
        }
    }

    /// Observed firm reaction latencies (see field docs), picoseconds.
    pub fn response_latency_ps(&self) -> &[u64] {
        &self.response_latency_ps
    }

    /// Counters so far.
    pub fn stats(&self) -> ExchangeStats {
        self.stats
    }

    /// The matching engine (for assertions in tests/experiments).
    pub fn engine(&self) -> &MatchingEngine {
        &self.engine
    }

    fn offset_ns(now: SimTime) -> u32 {
        (now.as_ps() % 1_000_000_000_000 / 1_000) as u32
    }

    /// Build multicast frames for feed messages produced now, appending to
    /// `out`; one frame per (packet, feed port). A/B copies share the
    /// measurement tag but carry distinct [`tn_sim::FrameId`]s, exactly as
    /// real A/B publications are distinct wire frames.
    fn build_feed_frames(
        &mut self,
        ctx: &mut Context<'_>,
        msgs: &[tn_wire::pitch::Message],
        out: &mut Vec<(PortId, Frame)>,
    ) {
        if msgs.is_empty() {
            return;
        }
        let now = ctx.now();
        let time_ns = now.as_ps() / 1_000;
        self.stats.feed_messages += msgs.len() as u64;
        let packets = self.publisher.publish(&self.cfg.directory, time_ns, msgs);
        for pkt in packets {
            if let Some(server) = &mut self.retrans {
                let _ = server.store(&pkt.bytes);
            }
            let group = ipv4::Addr::multicast_group(self.cfg.mcast_base + u32::from(pkt.unit));
            // Emit the wire frame once into the reusable scratch buffer;
            // each feed port then gets an arena-backed copy.
            self.wire_scratch.clear();
            stack::emit_udp_into(
                self.cfg.src_mac,
                None,
                self.cfg.src_ip,
                group,
                self.cfg.feed_udp_port,
                self.cfg.feed_udp_port,
                &pkt.bytes,
                &mut self.wire_scratch,
            );
            self.event_counter += 1;
            let tag = self.event_counter;
            for &port in &self.cfg.feed_ports {
                let frame = ctx
                    .frame()
                    .copy_from(&self.wire_scratch)
                    .tag(tag)
                    .event_time(now)
                    .build();
                self.stats.feed_packets += 1;
                out.push((port, frame));
            }
        }
    }

    /// Publish immediately (background-flow path: tick granularity is far
    /// coarser than matcher service time).
    fn publish_feed(&mut self, ctx: &mut Context<'_>, msgs: &[tn_wire::pitch::Message]) {
        let mut out = std::mem::take(&mut self.outbox);
        self.build_feed_frames(ctx, msgs, &mut out);
        for (port, frame) in out.drain(..) {
            ctx.send(port, frame);
        }
        self.outbox = out;
    }

    fn run_background(&mut self, ctx: &mut Context<'_>, events: u32) {
        let mut msgs = std::mem::take(&mut self.msg_scratch);
        msgs.clear();
        let offset = Self::offset_ns(ctx.now());
        for _ in 0..events {
            msgs.extend(self.flow.step(
                &self.cfg.directory,
                &mut self.engine,
                &mut self.rng,
                offset,
            ));
        }
        self.publish_feed(ctx, &msgs);
        self.msg_scratch = msgs;
    }

    /// Build reply segments, appending to `out`; the caller decides how to
    /// charge service.
    fn build_reply_frames(
        &mut self,
        ctx: &mut Context<'_>,
        replies: &[Reply],
        out: &mut Vec<(PortId, Frame)>,
    ) {
        for r in replies {
            let Some(addr) = self.sessions.get_mut(&r.session) else {
                continue;
            };
            self.payload_scratch.clear();
            r.message.emit(addr.tx_seq, &mut self.payload_scratch);
            let (dst_mac, dst_ip, dst_port, tx_seq, port) =
                (addr.mac, addr.ip, addr.tcp_port, addr.tx_seq, addr.port);
            addr.tx_seq = addr.tx_seq.wrapping_add(self.payload_scratch.len() as u32);
            let (src_mac, src_ip) = (self.cfg.src_mac, self.cfg.src_ip);
            let payload = &self.payload_scratch;
            let frame = ctx
                .frame()
                .fill(|b| {
                    stack::emit_tcp_into(
                        src_mac,
                        dst_mac,
                        src_ip,
                        dst_ip,
                        ORDER_ENTRY_PORT,
                        dst_port,
                        tx_seq,
                        0,
                        tcp::Flags::ACK | tcp::Flags::PSH,
                        payload,
                        b,
                    )
                })
                .build();
            self.stats.replies_sent += 1;
            out.push((port, frame));
        }
    }

    fn on_order_entry(&mut self, ctx: &mut Context<'_>, port: PortId, view: stack::TcpView<'_>) {
        let peer = (view.src_ip, view.src_port);
        let decoder = self.decoders.entry(peer).or_default();
        decoder.push(view.payload);
        let mut messages = std::mem::take(&mut self.boe_scratch);
        while let Ok(Some((msg, _seq))) = decoder.next_message() {
            messages.push(msg);
        }
        let (src_mac, src_ip, src_port) = (view.src_mac, view.src_ip, view.src_port);
        for msg in messages.drain(..) {
            self.stats.orders_processed += 1;
            if let boe::Message::Login { session, .. } = msg {
                self.sessions.insert(
                    session,
                    SessionAddr {
                        port,
                        mac: src_mac,
                        ip: src_ip,
                        tcp_port: src_port,
                        tx_seq: 1,
                    },
                );
                self.peer_session.insert(peer, session);
                continue;
            }
            let Some(&session) = self.peer_session.get(&peer) else {
                continue; // not logged in; drop (real exchanges disconnect)
            };
            let offset = Self::offset_ns(ctx.now());
            let out = self.engine.handle_boe(session, msg, offset);
            // Charge one matcher service quantum to the order; all of its
            // outputs (replies and feed) leave after that service time,
            // serialized behind earlier orders — a single-threaded
            // matching engine.
            let mut service = self.cfg.order_service;
            let mut outputs = std::mem::take(&mut self.outbox);
            self.build_reply_frames(ctx, &out.replies, &mut outputs);
            self.build_feed_frames(ctx, &out.feed, &mut outputs);
            for (port, frame) in outputs.drain(..) {
                self.matcher.send_after(ctx, service, port, frame);
                service = SimTime::ZERO;
            }
            self.outbox = outputs;
        }
        self.boe_scratch = messages;
    }

    fn on_gap_request(&mut self, ctx: &mut Context<'_>, port: PortId, view: stack::UdpView<'_>) {
        let Ok(req) = tn_wire::pitch::GapRequest::parse(view.payload) else {
            return;
        };
        let Some(server) = &mut self.retrans else {
            return;
        };
        let Ok(replays) = server.serve(ctx.now(), &req) else {
            return; // aged out or throttled: the requester re-snapshots
        };
        let (src_mac, src_ip) = (self.cfg.src_mac, self.cfg.src_ip);
        let (dst_mac, dst_ip, dst_port) = (view.src_mac, view.src_ip, view.src_port);
        for payload in replays {
            let frame = ctx
                .frame()
                .fill(|b| {
                    stack::emit_udp_into(
                        src_mac,
                        Some(dst_mac),
                        src_ip,
                        dst_ip,
                        RETRANS_PORT,
                        dst_port,
                        &payload,
                        b,
                    )
                })
                .build();
            ctx.send(port, frame);
        }
    }
}

impl Node for Exchange {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        if frame.meta.event_time != SimTime::ZERO {
            let rtt = ctx.now().saturating_sub(frame.meta.event_time);
            self.response_latency_ps.push(rtt.as_ps());
        }
        if let Ok(view) = stack::parse_tcp(&frame.bytes) {
            self.on_order_entry(ctx, port, view);
        } else if let Ok(view) = stack::parse_udp(&frame.bytes) {
            if view.dst_port == RETRANS_PORT {
                self.on_gap_request(ctx, port, view);
            }
        }
        // Anything else (stray multicast, unknown ports) is ignored. Either
        // way the exchange is a terminal consumer: the frame is fully
        // decoded here, so its buffer goes back to the arena.
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.matcher.on_timer(ctx, timer) {
            return;
        }
        if timer == TICK {
            let secs = self.cfg.tick_interval.as_secs_f64();
            let lambda = self.cfg.background_rate * secs;
            let events = sample_poisson(&mut self.rng, lambda);
            self.run_background(ctx, events as u32);
            let interval = self.cfg.tick_interval;
            ctx.set_timer(interval, TICK);
            return;
        }
        if timer.0 >= BURST_BASE {
            let idx = (timer.0 - BURST_BASE) as usize;
            if let Some(&events) = self.cfg.bursts.get(idx) {
                self.run_background(ctx, events);
            }
        }
    }
}

fn sample_poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (lambda + lambda.sqrt() * z).max(0.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::pitch;
    use tn_wire::pitch::Side;
    use tn_wire::Symbol;

    struct Collector {
        frames: Vec<(SimTime, Vec<u8>)>,
    }
    impl Node for Collector {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.frames.push((ctx.now(), f.bytes));
        }
    }

    fn small_exchange(background_rate: f64) -> ExchangeConfig {
        let mut cfg = ExchangeConfig::new(1, SymbolDirectory::synthetic(20));
        cfg.background_rate = background_rate;
        cfg.feed_ports = vec![PortId(0)];
        cfg
    }

    #[test]
    fn background_flow_publishes_parseable_feed() {
        let mut sim = Simulator::new(3);
        let ex = sim.add_node("exch", Exchange::new(small_exchange(50_000.0)));
        let col = sim.add_node("col", Collector { frames: vec![] });
        sim.connect_spec(
            ex,
            PortId(0),
            col,
            PortId(0),
            &LinkSpec::ideal(SimTime::from_ns(100)),
        );
        sim.schedule_timer(SimTime::ZERO, ex, TICK);
        sim.run_until(SimTime::from_ms(20));
        let frames = &sim.node::<Collector>(col).unwrap().frames;
        assert!(!frames.is_empty(), "no feed frames");
        let mut messages = 0usize;
        for (_, bytes) in frames {
            let v = stack::parse_udp(bytes).expect("valid udp frame");
            assert!(v.dst_ip.is_multicast());
            let pkt = pitch::Packet::new_checked(v.payload).expect("valid pitch");
            for m in pkt.messages() {
                m.expect("parseable message");
                messages += 1;
            }
        }
        assert!(messages > 100, "messages {messages}");
        let stats = sim.node::<Exchange>(ex).unwrap().stats();
        // Frames sent just before the deadline may still be in flight.
        assert!(stats.feed_packets as usize >= frames.len());
        assert!(stats.feed_packets as usize <= frames.len() + 16);
    }

    #[test]
    fn ab_feed_ports_carry_duplicates() {
        let mut cfg = small_exchange(20_000.0);
        cfg.feed_ports = vec![PortId(0), PortId(1)];
        let mut sim = Simulator::new(3);
        let ex = sim.add_node("exch", Exchange::new(cfg));
        let a = sim.add_node("a", Collector { frames: vec![] });
        let b = sim.add_node("b", Collector { frames: vec![] });
        sim.connect_spec(ex, PortId(0), a, PortId(0), &LinkSpec::ideal(SimTime::ZERO));
        sim.connect_spec(ex, PortId(1), b, PortId(0), &LinkSpec::ideal(SimTime::ZERO));
        sim.schedule_timer(SimTime::ZERO, ex, TICK);
        sim.run_until(SimTime::from_ms(10));
        let fa = &sim.node::<Collector>(a).unwrap().frames;
        let fb = &sim.node::<Collector>(b).unwrap().frames;
        assert!(!fa.is_empty());
        assert_eq!(fa.len(), fb.len());
        assert_eq!(fa[0].1, fb[0].1); // identical bytes on A and B
    }

    #[test]
    fn order_entry_round_trip_ack_and_feed() {
        let mut sim = Simulator::new(3);
        let mut cfg = small_exchange(0.0);
        let symbol = cfg.directory.instruments()[0].symbol;
        cfg.feed_ports = vec![PortId(1)];
        let ex_ip = cfg.src_ip;
        let ex_mac = cfg.src_mac;
        let ex = sim.add_node("exch", Exchange::new(cfg));
        let firm = sim.add_node("firm", Collector { frames: vec![] });
        let feed = sim.add_node("feed", Collector { frames: vec![] });
        sim.connect_spec(
            ex,
            PortId(0),
            firm,
            PortId(0),
            &LinkSpec::ideal(SimTime::from_ns(500)),
        );
        sim.connect_spec(
            ex,
            PortId(1),
            feed,
            PortId(0),
            &LinkSpec::ideal(SimTime::from_ns(500)),
        );

        // Login then a new order, from 10.0.0.9:40000.
        let firm_ip = ipv4::Addr::new(10, 0, 0, 9);
        let firm_mac = eth::MacAddr::host(9);
        let mut payload = Vec::new();
        boe::Message::Login {
            session: 7,
            token: 1,
        }
        .emit(0, &mut payload);
        boe::Message::NewOrder {
            cl_ord_id: 1,
            side: Side::Buy,
            qty: 100,
            symbol,
            price: 50_0000,
        }
        .emit(1, &mut payload);
        let seg = stack::build_tcp(
            firm_mac,
            ex_mac,
            firm_ip,
            ex_ip,
            40_000,
            30_001,
            1,
            0,
            tcp::Flags::ACK | tcp::Flags::PSH,
            &payload,
        );
        let f = sim.frame().copy_from(&seg).build();
        sim.inject_frame(SimTime::from_us(1), ex, PortId(0), f);
        sim.run();

        // The firm got an ack.
        let firm_frames = &sim.node::<Collector>(firm).unwrap().frames;
        assert_eq!(firm_frames.len(), 1);
        let v = stack::parse_tcp(&firm_frames[0].1).unwrap();
        let (msg, _, _) = boe::Message::parse(v.payload).unwrap();
        assert!(matches!(msg, boe::Message::OrderAck { cl_ord_id: 1, .. }));
        // The ack was delayed by the matching service time (10 us).
        assert!(firm_frames[0].0 >= SimTime::from_us(11));

        // The feed observed the resulting AddOrder.
        let feed_frames = &sim.node::<Collector>(feed).unwrap().frames;
        assert_eq!(feed_frames.len(), 1);
        let v = stack::parse_udp(&feed_frames[0].1).unwrap();
        let pkt = pitch::Packet::new_checked(v.payload).unwrap();
        let msgs: Vec<_> = pkt.messages().map(|m| m.unwrap()).collect();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, pitch::Message::AddOrder { qty: 100, .. })));
        let _ = Symbol::new("X");
    }

    #[test]
    fn gap_requests_are_served_over_the_wire() {
        let mut cfg = small_exchange(0.0);
        cfg.bursts = vec![50];
        let mut sim = Simulator::new(3);
        let ex = sim.add_node("exch", Exchange::new(cfg));
        let col = sim.add_node("col", Collector { frames: vec![] });
        sim.connect_spec(
            ex,
            PortId(0),
            col,
            PortId(0),
            &LinkSpec::ideal(SimTime::ZERO),
        );
        sim.schedule_timer(SimTime::from_ms(1), ex, TimerToken(BURST_BASE));
        sim.run();
        // Take the first published packet and pretend we lost it.
        let (unit, seq, count, original) = {
            let frames = &sim.node::<Collector>(col).unwrap().frames;
            assert!(!frames.is_empty());
            let v = stack::parse_udp(&frames[0].1).unwrap();
            let pkt = tn_wire::pitch::Packet::new_checked(v.payload).unwrap();
            (pkt.unit(), pkt.sequence(), pkt.count(), v.payload.to_vec())
        };
        let before = sim.node::<Collector>(col).unwrap().frames.len();
        // Ask for it back over the recovery channel.
        let req = tn_wire::pitch::GapRequest {
            unit,
            seq,
            count: u16::from(count),
        };
        let frame_bytes = stack::build_udp(
            eth::MacAddr::host(9),
            Some(eth::MacAddr::host(0xEE01)),
            ipv4::Addr::new(10, 0, 0, 9),
            ipv4::Addr::new(10, 200, 1, 1),
            50_000,
            RETRANS_PORT,
            &req.emit(),
        );
        let f = sim.frame().copy_from(&frame_bytes).build();
        let t = sim.now();
        sim.inject_frame(t, ex, PortId(0), f);
        sim.run();
        let frames = &sim.node::<Collector>(col).unwrap().frames;
        assert_eq!(frames.len(), before + 1, "one retransmitted packet");
        let v = stack::parse_udp(&frames[before].1).unwrap();
        assert_eq!(v.src_port, RETRANS_PORT);
        assert_eq!(v.dst_ip, ipv4::Addr::new(10, 0, 0, 9)); // unicast to requester
        assert_eq!(v.payload, &original[..], "replay is byte-identical");
        // A request for data that never existed is refused silently.
        let bad = tn_wire::pitch::GapRequest {
            unit: 99,
            seq: 1,
            count: 1,
        };
        let frame_bytes = stack::build_udp(
            eth::MacAddr::host(9),
            Some(eth::MacAddr::host(0xEE01)),
            ipv4::Addr::new(10, 0, 0, 9),
            ipv4::Addr::new(10, 200, 1, 1),
            50_000,
            RETRANS_PORT,
            &bad.emit(),
        );
        let f = sim.frame().copy_from(&frame_bytes).build();
        let t = sim.now();
        sim.inject_frame(t, ex, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<Collector>(col).unwrap().frames.len(), before + 1);
    }

    #[test]
    fn bursts_fire_on_schedule() {
        let mut cfg = small_exchange(0.0);
        cfg.bursts = vec![500];
        let mut sim = Simulator::new(3);
        let ex = sim.add_node("exch", Exchange::new(cfg));
        let col = sim.add_node("col", Collector { frames: vec![] });
        sim.connect_spec(
            ex,
            PortId(0),
            col,
            PortId(0),
            &LinkSpec::ideal(SimTime::ZERO),
        );
        sim.schedule_timer(SimTime::from_ms(5), ex, TimerToken(BURST_BASE));
        sim.run();
        let frames = &sim.node::<Collector>(col).unwrap().frames;
        assert!(!frames.is_empty());
        assert!(frames[0].0 >= SimTime::from_ms(5));
        // A 500-event burst coalesces into multi-message packets.
        let v = stack::parse_udp(&frames[0].1).unwrap();
        let pkt = pitch::Packet::new_checked(v.payload).unwrap();
        assert!(pkt.count() > 1);
    }
}
