//! Multi-symbol matching engine.
//!
//! Couples [`crate::book::OrderBook`]s with the two exchange-facing
//! protocols: BOE-style order entry in, PITCH-style market data out. Every
//! state change produces exactly the feed messages a real exchange would
//! publish, so the simulated feed is *causally* derived from order flow —
//! an order round-trip (gateway → engine → fill → feed) exercises the same
//! code path as production (§2).

use std::collections::{BTreeMap, HashMap};

use tn_wire::boe;
use tn_wire::pitch::{self, Side};
use tn_wire::Symbol;

use crate::book::{OrderBook, OrderId, Price, Qty};

/// Who submitted an order: a connected session or the background market.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// An order-entry session (firm gateways).
    Session(u32),
    /// Ambient market participants simulated by the workload generator.
    Background,
}

#[derive(Debug, Clone, Copy)]
struct OpenOrder {
    owner: Owner,
    cl_ord_id: u64,
    symbol: Symbol,
    side: Side,
}

/// A reply addressed to one order-entry session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// Destination session.
    pub session: u32,
    /// The message.
    pub message: boe::Message,
}

/// Output of one engine operation.
#[derive(Debug, Default)]
pub struct EngineOutput {
    /// Order-entry replies (acks, rejects, fills — possibly to several
    /// sessions, since a fill notifies the resting order's owner too).
    pub replies: Vec<Reply>,
    /// Market-data messages for the feed publisher, in causal order.
    pub feed: Vec<pitch::Message>,
}

/// The engine.
pub struct MatchingEngine {
    books: BTreeMap<Symbol, OrderBook>,
    open: BTreeMap<OrderId, OpenOrder>,
    by_client: HashMap<(u32, u64), OrderId>,
    next_order_id: OrderId,
    next_exec_id: u64,
}

impl MatchingEngine {
    /// An engine listing the given symbols.
    pub fn new(symbols: impl IntoIterator<Item = Symbol>) -> MatchingEngine {
        MatchingEngine {
            books: symbols.into_iter().map(|s| (s, OrderBook::new())).collect(),
            open: BTreeMap::new(),
            by_client: HashMap::new(),
            next_order_id: 1,
            next_exec_id: 1,
        }
    }

    /// Whether `symbol` is listed here.
    pub fn lists(&self, symbol: Symbol) -> bool {
        self.books.contains_key(&symbol)
    }

    /// Listed symbols, in sorted order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.books.keys().copied()
    }

    /// The book for `symbol`, if listed.
    pub fn book(&self, symbol: Symbol) -> Option<&OrderBook> {
        self.books.get(&symbol)
    }

    /// Open orders across all books.
    pub fn open_orders(&self) -> usize {
        self.open.len()
    }

    fn alloc_order_id(&mut self) -> OrderId {
        let id = self.next_order_id;
        self.next_order_id += 1;
        id
    }

    fn alloc_exec_id(&mut self) -> u64 {
        let id = self.next_exec_id;
        self.next_exec_id += 1;
        id
    }

    /// Submit an order on behalf of `owner`. `offset_ns` stamps the feed
    /// messages (nanoseconds within the current second).
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &mut self,
        owner: Owner,
        cl_ord_id: u64,
        symbol: Symbol,
        side: Side,
        price: Price,
        qty: Qty,
        ioc: bool,
        offset_ns: u32,
    ) -> EngineOutput {
        let mut out = EngineOutput::default();
        if !self.books.contains_key(&symbol) {
            if let Owner::Session(s) = owner {
                out.replies.push(Reply {
                    session: s,
                    message: boe::Message::OrderReject {
                        cl_ord_id,
                        reason: boe::RejectReason::UnknownSymbol,
                    },
                });
            }
            return out;
        }
        if qty == 0 || price == 0 {
            if let Owner::Session(s) = owner {
                out.replies.push(Reply {
                    session: s,
                    message: boe::Message::OrderReject {
                        cl_ord_id,
                        reason: boe::RejectReason::BadPrice,
                    },
                });
            }
            return out;
        }
        let exch_id = self.alloc_order_id();
        if let Owner::Session(s) = owner {
            out.replies.push(Reply {
                session: s,
                message: boe::Message::OrderAck {
                    cl_ord_id,
                    exch_ord_id: exch_id,
                },
            });
            self.by_client.insert((s, cl_ord_id), exch_id);
        }
        let result = self
            .books
            .get_mut(&symbol)
            // audit:allow(hotpath-unwrap): entry validation rejected unlisted symbols before this point
            .expect("listed")
            .submit(exch_id, side, price, qty, ioc);
        let mut aggressor_filled: Qty = 0;
        for exec in &result.executions {
            aggressor_filled += exec.qty;
            let exec_id = self.alloc_exec_id();
            out.feed.push(pitch::Message::OrderExecuted {
                offset_ns,
                order_id: exec.resting_id,
                qty: exec.qty,
                exec_id,
            });
            // Notify the resting order's owner.
            if let Some(open) = self.open.get(&exec.resting_id).copied() {
                if let Owner::Session(s) = open.owner {
                    out.replies.push(Reply {
                        session: s,
                        message: boe::Message::Fill {
                            cl_ord_id: open.cl_ord_id,
                            exec_id,
                            qty: exec.qty,
                            price: exec.price,
                            leaves: exec.resting_leaves,
                        },
                    });
                }
                if exec.resting_leaves == 0 {
                    self.open.remove(&exec.resting_id);
                    if let Owner::Session(s) = open.owner {
                        self.by_client.remove(&(s, open.cl_ord_id));
                    }
                }
            }
            // Notify the aggressor session of its own fill.
            if let Owner::Session(s) = owner {
                out.replies.push(Reply {
                    session: s,
                    message: boe::Message::Fill {
                        cl_ord_id,
                        exec_id,
                        qty: exec.qty,
                        price: exec.price,
                        // Leaves as seen mid-match; the remainder may
                        // still post (or die, if IOC) after matching.
                        leaves: qty - aggressor_filled,
                    },
                });
            }
        }
        if result.posted > 0 {
            self.open.insert(
                exch_id,
                OpenOrder {
                    owner,
                    cl_ord_id,
                    symbol,
                    side,
                },
            );
            out.feed.push(pitch::Message::AddOrder {
                offset_ns,
                order_id: exch_id,
                side,
                qty: result.posted,
                symbol,
                price,
            });
        } else if let Owner::Session(s) = owner {
            self.by_client.remove(&(s, cl_ord_id));
        }
        out
    }

    /// Cancel by exchange order id (background flow).
    pub fn cancel_exchange_order(&mut self, order_id: OrderId, offset_ns: u32) -> EngineOutput {
        let mut out = EngineOutput::default();
        let Some(open) = self.open.get(&order_id).copied() else {
            return out;
        };
        // audit:allow(hotpath-unwrap): every open order was admitted against a listed book
        let book = self.books.get_mut(&open.symbol).expect("listed");
        if book.cancel(order_id).is_some() {
            self.open.remove(&order_id);
            if let Owner::Session(s) = open.owner {
                self.by_client.remove(&(s, open.cl_ord_id));
                out.replies.push(Reply {
                    session: s,
                    message: boe::Message::CancelAck {
                        cl_ord_id: open.cl_ord_id,
                    },
                });
            }
            out.feed.push(pitch::Message::DeleteOrder {
                offset_ns,
                order_id,
            });
        }
        out
    }

    /// Reduce a resting order (background flow: partial cancel).
    pub fn reduce_exchange_order(
        &mut self,
        order_id: OrderId,
        by: Qty,
        offset_ns: u32,
    ) -> EngineOutput {
        let mut out = EngineOutput::default();
        let Some(open) = self.open.get(&order_id).copied() else {
            return out;
        };
        // audit:allow(hotpath-unwrap): every open order was admitted against a listed book
        let book = self.books.get_mut(&open.symbol).expect("listed");
        match book.reduce(order_id, by) {
            Some(0) => {
                self.open.remove(&order_id);
                out.feed.push(pitch::Message::DeleteOrder {
                    offset_ns,
                    order_id,
                });
            }
            Some(_) => {
                out.feed.push(pitch::Message::ReduceSize {
                    offset_ns,
                    order_id,
                    qty: by,
                });
            }
            None => {}
        }
        out
    }

    /// An arbitrary open (background) order id, for workload generators
    /// that cancel/modify existing liquidity. Deterministic given the map
    /// iteration seed `k`.
    pub fn sample_open_order(&self, k: usize) -> Option<OrderId> {
        if self.open.is_empty() {
            return None;
        }
        self.open.keys().nth(k % self.open.len()).copied()
    }

    /// Process one order-entry message from `session`.
    pub fn handle_boe(&mut self, session: u32, msg: boe::Message, offset_ns: u32) -> EngineOutput {
        match msg {
            boe::Message::NewOrder {
                cl_ord_id,
                side,
                qty,
                symbol,
                price,
            } => self.submit(
                Owner::Session(session),
                cl_ord_id,
                symbol,
                side,
                price,
                qty,
                false,
                offset_ns,
            ),
            boe::Message::CancelOrder { cl_ord_id } => {
                match self.by_client.get(&(session, cl_ord_id)).copied() {
                    Some(exch_id) => self.cancel_exchange_order(exch_id, offset_ns),
                    None => {
                        // The §2 race: cancel arrived after the fill.
                        let mut out = EngineOutput::default();
                        out.replies.push(Reply {
                            session,
                            message: boe::Message::OrderReject {
                                cl_ord_id,
                                reason: boe::RejectReason::UnknownOrder,
                            },
                        });
                        out
                    }
                }
            }
            boe::Message::ModifyOrder {
                cl_ord_id,
                qty,
                price,
            } => {
                // Cancel/replace semantics: price moves lose time priority.
                match self.by_client.get(&(session, cl_ord_id)).copied() {
                    Some(exch_id) => {
                        let open = self.open.get(&exch_id).copied();
                        let mut out = self.cancel_exchange_order(exch_id, offset_ns);
                        if let Some(open) = open {
                            // A modify keeps the original side; price
                            // changes go through cancel/replace.
                            let side = open.side;
                            let mut resubmit = self.submit(
                                Owner::Session(session),
                                cl_ord_id,
                                open.symbol,
                                side,
                                price,
                                qty,
                                false,
                                offset_ns,
                            );
                            out.replies.append(&mut resubmit.replies);
                            out.feed.append(&mut resubmit.feed);
                        }
                        out
                    }
                    None => {
                        let mut out = EngineOutput::default();
                        out.replies.push(Reply {
                            session,
                            message: boe::Message::OrderReject {
                                cl_ord_id,
                                reason: boe::RejectReason::UnknownOrder,
                            },
                        });
                        out
                    }
                }
            }
            boe::Message::Login { .. } | boe::Message::Heartbeat => EngineOutput::default(),
            // Exchange-to-firm messages arriving here are protocol errors.
            _ => {
                let mut out = EngineOutput::default();
                out.replies.push(Reply {
                    session,
                    message: boe::Message::OrderReject {
                        cl_ord_id: 0,
                        reason: boe::RejectReason::Session,
                    },
                });
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn engine() -> MatchingEngine {
        MatchingEngine::new([sym("SPY"), sym("QQQ")])
    }

    #[test]
    fn new_order_acks_and_publishes_add() {
        let mut e = engine();
        let out = e.submit(
            Owner::Session(1),
            100,
            sym("SPY"),
            Side::Buy,
            450_0000,
            10,
            false,
            5,
        );
        assert_eq!(out.replies.len(), 1);
        assert!(matches!(
            out.replies[0].message,
            boe::Message::OrderAck {
                cl_ord_id: 100,
                exch_ord_id: 1
            }
        ));
        assert_eq!(out.feed.len(), 1);
        assert!(matches!(
            out.feed[0],
            pitch::Message::AddOrder {
                order_id: 1,
                qty: 10,
                offset_ns: 5,
                ..
            }
        ));
        assert_eq!(e.open_orders(), 1);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let mut e = engine();
        let out = e.submit(
            Owner::Session(1),
            7,
            sym("ZZZ"),
            Side::Buy,
            1_0000,
            1,
            false,
            0,
        );
        assert!(matches!(
            out.replies[0].message,
            boe::Message::OrderReject {
                reason: boe::RejectReason::UnknownSymbol,
                ..
            }
        ));
        assert!(out.feed.is_empty());
    }

    #[test]
    fn cross_fills_both_sessions_and_publishes_execution() {
        let mut e = engine();
        e.submit(
            Owner::Session(1),
            1,
            sym("SPY"),
            Side::Sell,
            450_0000,
            10,
            false,
            0,
        );
        let out = e.submit(
            Owner::Session(2),
            2,
            sym("SPY"),
            Side::Buy,
            450_0000,
            10,
            false,
            9,
        );
        // Ack to session 2, fill to session 1 (resting), fill to session 2.
        let kinds: Vec<_> = out.replies.iter().map(|r| (r.session, r.message)).collect();
        assert!(matches!(kinds[0], (2, boe::Message::OrderAck { .. })));
        assert!(kinds
            .iter()
            .any(|(s, m)| *s == 1 && matches!(m, boe::Message::Fill { leaves: 0, .. })));
        assert!(kinds
            .iter()
            .any(|(s, m)| *s == 2 && matches!(m, boe::Message::Fill { .. })));
        assert_eq!(out.feed.len(), 1);
        assert!(matches!(
            out.feed[0],
            pitch::Message::OrderExecuted {
                order_id: 1,
                qty: 10,
                offset_ns: 9,
                ..
            }
        ));
        assert_eq!(e.open_orders(), 0);
    }

    #[test]
    fn boe_roundtrip_cancel_and_delete() {
        let mut e = engine();
        let new = boe::Message::NewOrder {
            cl_ord_id: 5,
            side: Side::Buy,
            qty: 100,
            symbol: sym("QQQ"),
            price: 380_0000,
        };
        let out = e.handle_boe(9, new, 0);
        assert!(matches!(
            out.replies[0].message,
            boe::Message::OrderAck { .. }
        ));
        let out = e.handle_boe(9, boe::Message::CancelOrder { cl_ord_id: 5 }, 100);
        assert!(matches!(
            out.replies[0].message,
            boe::Message::CancelAck { cl_ord_id: 5 }
        ));
        assert!(matches!(
            out.feed[0],
            pitch::Message::DeleteOrder { offset_ns: 100, .. }
        ));
        // Cancel again: the unknown-order race reject.
        let out = e.handle_boe(9, boe::Message::CancelOrder { cl_ord_id: 5 }, 101);
        assert!(matches!(
            out.replies[0].message,
            boe::Message::OrderReject {
                reason: boe::RejectReason::UnknownOrder,
                ..
            }
        ));
    }

    #[test]
    fn cancel_after_fill_race_rejects() {
        let mut e = engine();
        e.handle_boe(
            1,
            boe::Message::NewOrder {
                cl_ord_id: 10,
                side: Side::Sell,
                qty: 5,
                symbol: sym("SPY"),
                price: 450_0000,
            },
            0,
        );
        // Background flow lifts the offer before the cancel arrives.
        e.submit(
            Owner::Background,
            0,
            sym("SPY"),
            Side::Buy,
            450_0000,
            5,
            true,
            1,
        );
        let out = e.handle_boe(1, boe::Message::CancelOrder { cl_ord_id: 10 }, 2);
        assert!(matches!(
            out.replies[0].message,
            boe::Message::OrderReject {
                reason: boe::RejectReason::UnknownOrder,
                ..
            }
        ));
    }

    #[test]
    fn background_flow_produces_feed_without_replies() {
        let mut e = engine();
        let out = e.submit(
            Owner::Background,
            0,
            sym("SPY"),
            Side::Buy,
            449_0000,
            100,
            false,
            3,
        );
        assert!(out.replies.is_empty());
        assert_eq!(out.feed.len(), 1);
        let id = match out.feed[0] {
            pitch::Message::AddOrder { order_id, .. } => order_id,
            ref other => panic!("{other:?}"),
        };
        let out = e.reduce_exchange_order(id, 40, 4);
        assert!(matches!(
            out.feed[0],
            pitch::Message::ReduceSize { qty: 40, .. }
        ));
        let out = e.reduce_exchange_order(id, 60, 5);
        assert!(matches!(out.feed[0], pitch::Message::DeleteOrder { .. }));
        assert_eq!(e.open_orders(), 0);
    }

    #[test]
    fn sample_open_order_cycles() {
        let mut e = engine();
        assert_eq!(e.sample_open_order(0), None);
        for i in 0..5 {
            e.submit(
                Owner::Background,
                0,
                sym("SPY"),
                Side::Buy,
                400_0000 - i,
                10,
                false,
                0,
            );
        }
        let a = e.sample_open_order(0).unwrap();
        let b = e.sample_open_order(1).unwrap();
        assert!(e.open_orders() == 5);
        let _ = (a, b);
    }

    #[test]
    fn modify_loses_priority_via_cancel_replace() {
        let mut e = engine();
        e.handle_boe(
            1,
            boe::Message::NewOrder {
                cl_ord_id: 1,
                side: Side::Buy,
                qty: 10,
                symbol: sym("SPY"),
                price: 450_0000,
            },
            0,
        );
        let out = e.handle_boe(
            1,
            boe::Message::ModifyOrder {
                cl_ord_id: 1,
                qty: 20,
                price: 451_0000,
            },
            1,
        );
        // Delete of the old order, ack + add of the replacement.
        assert!(out
            .feed
            .iter()
            .any(|m| matches!(m, pitch::Message::DeleteOrder { .. })));
        assert!(out.feed.iter().any(|m| matches!(
            m,
            pitch::Message::AddOrder {
                qty: 20,
                price: 451_0000,
                ..
            }
        )));
        assert_eq!(e.open_orders(), 1);
    }
}
