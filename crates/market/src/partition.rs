//! Feed partitioning schemes.
//!
//! §2: "exchanges will partition this feed across multiple multicast
//! groups... Some exchanges partition based on the name of the instrument
//! (e.g. alphabetical by stock ticker's first letter), while others
//! partition based on the type of instrument." Both schemes live here,
//! plus the hash scheme firms use internally for re-partitioning.

use tn_wire::Symbol;

use crate::symbols::{InstrumentClass, SymbolDirectory};

/// How symbols map to feed units / partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Alphabetical by first letter, folded onto `units` units.
    ByFirstLetter {
        /// Number of units.
        units: u16,
    },
    /// By instrument class: equities on unit 0, ETFs on 1, options spread
    /// over the remaining `units - 2`.
    ByClass {
        /// Number of units (≥ 3).
        units: u16,
    },
    /// Uniform hash of the ticker (the firm-internal scheme; scales to
    /// any partition count).
    ByHash {
        /// Number of units.
        units: u16,
    },
}

impl PartitionScheme {
    /// Number of units the scheme spreads over.
    pub fn units(&self) -> u16 {
        match *self {
            PartitionScheme::ByFirstLetter { units }
            | PartitionScheme::ByClass { units }
            | PartitionScheme::ByHash { units } => units,
        }
    }

    /// The unit for `symbol`. `dir` supplies class information (only used
    /// by `ByClass`; pass any directory otherwise).
    pub fn unit_for(&self, dir: &SymbolDirectory, symbol: Symbol) -> u16 {
        match *self {
            PartitionScheme::ByFirstLetter { units } => {
                let letter = symbol.first_char().saturating_sub(b'A') as u16;
                letter % units.max(1)
            }
            PartitionScheme::ByClass { units } => {
                debug_assert!(units >= 3);
                match dir.get(symbol).map(|i| i.class) {
                    Some(InstrumentClass::Equity) | None => 0,
                    Some(InstrumentClass::Etf) => 1,
                    Some(InstrumentClass::Option) => {
                        2 + (fnv(symbol) % u64::from(units - 2)) as u16
                    }
                }
            }
            PartitionScheme::ByHash { units } => (fnv(symbol) % u64::from(units.max(1))) as u16,
        }
    }

    /// Histogram of symbols per unit for a directory — used to check
    /// balance (skewed partitions waste capacity, §3's partitioning
    /// discussion).
    pub fn load(&self, dir: &SymbolDirectory) -> Vec<usize> {
        let mut counts = vec![0usize; self.units() as usize];
        for inst in dir.instruments() {
            counts[self.unit_for(dir, inst.symbol) as usize] += 1;
        }
        counts
    }
}

fn fnv(symbol: Symbol) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in symbol.0 {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    #[test]
    fn first_letter_scheme() {
        let dir = SymbolDirectory::new();
        let s = PartitionScheme::ByFirstLetter { units: 4 };
        assert_eq!(s.unit_for(&dir, sym("APPL")), 0);
        assert_eq!(s.unit_for(&dir, sym("BAC")), 1);
        assert_eq!(s.unit_for(&dir, sym("EBAY")), 0); // E = 4 % 4
        assert_eq!(s.units(), 4);
    }

    #[test]
    fn class_scheme_routes_by_class() {
        let mut dir = SymbolDirectory::new();
        dir.add(sym("IBM"), InstrumentClass::Equity);
        dir.add(sym("SPY"), InstrumentClass::Etf);
        dir.add(sym("OPTA"), InstrumentClass::Option);
        dir.add(sym("OPTB"), InstrumentClass::Option);
        let s = PartitionScheme::ByClass { units: 8 };
        assert_eq!(s.unit_for(&dir, sym("IBM")), 0);
        assert_eq!(s.unit_for(&dir, sym("SPY")), 1);
        let ua = s.unit_for(&dir, sym("OPTA"));
        let ub = s.unit_for(&dir, sym("OPTB"));
        assert!((2..8).contains(&ua));
        assert!((2..8).contains(&ub));
        // Unknown symbols default to the equity unit.
        assert_eq!(s.unit_for(&dir, sym("ZZZ")), 0);
    }

    #[test]
    fn hash_scheme_is_stable_and_balanced() {
        let dir = SymbolDirectory::synthetic(2600);
        let s = PartitionScheme::ByHash { units: 13 };
        let u = s.unit_for(&dir, sym("A0000"));
        assert_eq!(s.unit_for(&dir, sym("A0000")), u); // deterministic
        let load = s.load(&dir);
        assert_eq!(load.len(), 13);
        let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
        // Hash partitioning should be roughly balanced.
        assert!(*max < 2 * *min, "imbalanced: {load:?}");
        assert_eq!(load.iter().sum::<usize>(), 2600);
    }

    #[test]
    fn alphabetical_skews_with_real_ticker_distributions() {
        // First-letter partitioning balances only if tickers do; our
        // synthetic universe is uniform, so it balances here, but the
        // scheme trivially cannot use more than 26 units.
        let dir = SymbolDirectory::synthetic(260);
        let s = PartitionScheme::ByFirstLetter { units: 52 };
        let load = s.load(&dir);
        let used = load.iter().filter(|&&c| c > 0).count();
        assert!(used <= 26);
    }
}
