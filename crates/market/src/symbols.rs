//! Symbol directory: instrument classes and interned ids.
//!
//! Firms maintain a dictionary mapping exchange tickers to internal
//! integer ids (used by the normalized format) and instrument classes
//! (used by class-based feed partitioning, §2).

use std::collections::HashMap;

use tn_wire::Symbol;

/// Broad instrument classes relevant to partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrumentClass {
    /// Common stock.
    Equity,
    /// Exchange-traded fund.
    Etf,
    /// Listed option series (aggregated per underlier here).
    Option,
}

/// One listed instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instrument {
    /// Ticker.
    pub symbol: Symbol,
    /// Firm-internal id (dense, 0-based — indexes arrays).
    pub id: u32,
    /// Class.
    pub class: InstrumentClass,
}

/// The directory.
#[derive(Debug, Default, Clone)]
pub struct SymbolDirectory {
    by_symbol: HashMap<Symbol, Instrument>,
    by_id: Vec<Instrument>,
}

impl SymbolDirectory {
    /// Empty directory.
    pub fn new() -> SymbolDirectory {
        SymbolDirectory::default()
    }

    /// Add an instrument; returns its interned id. Idempotent per symbol.
    pub fn add(&mut self, symbol: Symbol, class: InstrumentClass) -> u32 {
        if let Some(i) = self.by_symbol.get(&symbol) {
            return i.id;
        }
        let id = self.by_id.len() as u32;
        let inst = Instrument { symbol, id, class };
        self.by_symbol.insert(symbol, inst);
        self.by_id.push(inst);
        id
    }

    /// Look up by ticker.
    pub fn get(&self, symbol: Symbol) -> Option<Instrument> {
        self.by_symbol.get(&symbol).copied()
    }

    /// Look up by interned id.
    pub fn by_id(&self, id: u32) -> Option<Instrument> {
        self.by_id.get(id as usize).copied()
    }

    /// Number of instruments.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// All instruments in id order.
    pub fn instruments(&self) -> &[Instrument] {
        &self.by_id
    }

    /// A synthetic universe of `n` instruments with a realistic class mix
    /// (60% equities, 15% ETFs, 25% option underliers), tickers `S0000`….
    pub fn synthetic(n: usize) -> SymbolDirectory {
        let mut dir = SymbolDirectory::new();
        for i in 0..n {
            // Tickers spread across the alphabet so alphabetical
            // partitioning has work to do.
            let letter = (b'A' + (i % 26) as u8) as char;
            let sym = Symbol::new(&format!("{letter}{:04}", i % 10_000)).expect("valid ticker");
            let class = match i % 20 {
                0..=11 => InstrumentClass::Equity,
                12..=14 => InstrumentClass::Etf,
                _ => InstrumentClass::Option,
            };
            dir.add(sym, class);
        }
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut d = SymbolDirectory::new();
        let a = d.add(sym("SPY"), InstrumentClass::Etf);
        let b = d.add(sym("IBM"), InstrumentClass::Equity);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(d.add(sym("SPY"), InstrumentClass::Etf), 0); // idempotent
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(sym("SPY")).unwrap().class, InstrumentClass::Etf);
        assert_eq!(d.by_id(1).unwrap().symbol, sym("IBM"));
        assert!(d.by_id(5).is_none());
        assert!(d.get(sym("ZZZ")).is_none());
    }

    #[test]
    fn synthetic_universe_mix() {
        let d = SymbolDirectory::synthetic(1000);
        assert_eq!(d.len(), 1000);
        let eq = d
            .instruments()
            .iter()
            .filter(|i| i.class == InstrumentClass::Equity)
            .count();
        let opt = d
            .instruments()
            .iter()
            .filter(|i| i.class == InstrumentClass::Option)
            .count();
        assert!(eq > 500 && eq < 700, "equities {eq}");
        assert!(opt > 200 && opt < 300, "options {opt}");
        // Tickers span the alphabet.
        let first_letters: std::collections::HashSet<u8> = d
            .instruments()
            .iter()
            .map(|i| i.symbol.first_char())
            .collect();
        assert_eq!(first_letters.len(), 26);
    }
}
