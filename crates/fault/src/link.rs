//! [`FaultLink`]: a fault model in front of any link.
//!
//! The wrapper owns its own PRNG, seeded from the [`FaultSpec`], so fault
//! decisions never consume the kernel's scenario PRNG — wrapping a link
//! with a no-op spec leaves the kernel's random stream, and therefore the
//! whole run's trace digest, untouched. All fault randomness advances
//! only on `transmit` calls, which the deterministic kernel makes in a
//! reproducible order.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tn_sim::{DropReason, Link, LinkOutcome, Metrics, SimTime};

use crate::spec::{FaultSpec, LossModel};

/// Per-link drop accounting by cause (the kernel only counts totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to this link.
    pub offered: u64,
    /// Dropped by the loss process.
    pub lost: u64,
    /// Dropped as corrupted.
    pub corrupted: u64,
    /// Dropped because the link was down (outage/flap).
    pub down_drops: u64,
    /// Frames whose delivery was jittered.
    pub jittered: u64,
}

/// The base link models [`crate::LinkSpec`] can describe.
#[derive(Debug, Clone)]
pub enum BaseLink {
    /// No serialization, fixed delay.
    Ideal(tn_sim::IdealLink),
    /// Serializing, queue-bounded Ethernet link.
    Ether(tn_netdev::EtherLink),
}

impl Link for BaseLink {
    fn transmit(&mut self, now: SimTime, len: usize, coin: f64) -> LinkOutcome {
        match self {
            BaseLink::Ideal(l) => l.transmit(now, len, coin),
            BaseLink::Ether(l) => l.transmit(now, len, coin),
        }
    }

    fn propagation(&self) -> SimTime {
        match self {
            BaseLink::Ideal(l) => l.propagation(),
            BaseLink::Ether(l) => l.propagation(),
        }
    }

    fn min_delay(&self) -> SimTime {
        match self {
            BaseLink::Ideal(l) => l.min_delay(),
            BaseLink::Ether(l) => l.min_delay(),
        }
    }

    fn uses_kernel_coin(&self) -> bool {
        match self {
            BaseLink::Ideal(l) => l.uses_kernel_coin(),
            BaseLink::Ether(l) => l.uses_kernel_coin(),
        }
    }

    fn rate_bps(&self) -> Option<u64> {
        match self {
            BaseLink::Ideal(l) => l.rate_bps(),
            BaseLink::Ether(l) => l.rate_bps(),
        }
    }
}

/// A [`LinkSpec`](crate::LinkSpec)-built link: base model plus faults.
pub type SpecLink = FaultLink<BaseLink>;

/// Applies a [`FaultSpec`] in front of an inner link.
///
/// Order of checks per offered frame: down (outage/flap) → loss process →
/// corruption → inner link (queueing/MTU/serialization) → jitter on the
/// delivery time. The loss-state machine and RNG only advance when the
/// corresponding fault is configured, so enabling one fault never shifts
/// another's random stream.
#[derive(Debug, Clone)]
pub struct FaultLink<L> {
    inner: L,
    spec: FaultSpec,
    rng: SmallRng,
    /// Gilbert–Elliott state: currently in the Bad (bursty) state?
    bad: bool,
    stats: FaultStats,
    metrics: Metrics,
}

impl<L: Link> FaultLink<L> {
    /// Wrap `inner` with the faults described by `spec`.
    pub fn wrap(inner: L, spec: FaultSpec) -> FaultLink<L> {
        FaultLink {
            inner,
            rng: SmallRng::seed_from_u64(spec.seed),
            spec,
            bad: false,
            stats: FaultStats::default(),
            metrics: Metrics::disabled(),
        }
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// The fault model.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Drop accounting by cause.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One step of the loss process. Advances the Gilbert–Elliott state
    /// even on frames that survive — burst boundaries are a property of
    /// time-on-link, approximated per offered frame.
    fn loss_step(&mut self) -> bool {
        match self.spec.loss {
            LossModel::None => false,
            LossModel::Iid { p } => p > 0.0 && self.rng.gen::<f64>() < p,
            LossModel::GilbertElliott {
                p_good_bad,
                p_bad_good,
                loss_good,
                loss_bad,
            } => {
                let loss_p = if self.bad { loss_bad } else { loss_good };
                let lost = self.rng.gen::<f64>() < loss_p;
                let flip_p = if self.bad { p_bad_good } else { p_good_bad };
                if self.rng.gen::<f64>() < flip_p {
                    self.bad = !self.bad;
                }
                lost
            }
        }
    }
}

impl<L: Link> Link for FaultLink<L> {
    fn transmit(&mut self, now: SimTime, len: usize, coin: f64) -> LinkOutcome {
        self.stats.offered += 1;
        self.metrics.inc("fault", "offered", None);
        if self.spec.down_at(now) {
            self.stats.down_drops += 1;
            self.metrics.inc("fault", "down_drops", None);
            return LinkOutcome::Drop(DropReason::LinkDown);
        }
        if self.loss_step() {
            self.stats.lost += 1;
            self.metrics.inc("fault", "lost", None);
            return LinkOutcome::Drop(DropReason::RandomLoss);
        }
        if self.spec.corrupt > 0.0 && self.rng.gen::<f64>() < self.spec.corrupt {
            self.stats.corrupted += 1;
            self.metrics.inc("fault", "corrupted", None);
            return LinkOutcome::Drop(DropReason::Corrupted);
        }
        match self.inner.transmit(now, len, coin) {
            LinkOutcome::Deliver(at) => {
                if self.spec.jitter > SimTime::ZERO {
                    self.stats.jittered += 1;
                    self.metrics.inc("fault", "jittered", None);
                    let extra = self.rng.gen_range(0..=self.spec.jitter.as_ps());
                    LinkOutcome::Deliver(at + SimTime::from_ps(extra))
                } else {
                    LinkOutcome::Deliver(at)
                }
            }
            drop => drop,
        }
    }

    fn propagation(&self) -> SimTime {
        self.inner.propagation()
    }

    fn min_delay(&self) -> SimTime {
        // Faults only delay (jitter), drop, or pass frames through — they
        // never deliver earlier than the inner link would, so the inner
        // bound stays valid.
        self.inner.min_delay()
    }

    fn uses_kernel_coin(&self) -> bool {
        // The fault machinery draws from its own seeded PRNG, never the
        // kernel coin; only the wrapped link can consume it.
        self.inner.uses_kernel_coin()
    }

    fn rate_bps(&self) -> Option<u64> {
        self.inner.rate_bps()
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::IdealLink;

    fn ideal() -> IdealLink {
        IdealLink::new(SimTime::from_ns(100))
    }

    #[test]
    fn noop_spec_is_bit_transparent() {
        let mut faulty = FaultLink::wrap(ideal(), FaultSpec::new(99));
        let mut bare = ideal();
        for i in 0..1_000u64 {
            let now = SimTime::from_ns(i * 3);
            assert_eq!(
                faulty.transmit(now, 64 + i as usize % 1400, 0.123),
                bare.transmit(now, 64 + i as usize % 1400, 0.123)
            );
        }
        assert_eq!(faulty.stats().lost, 0);
        assert_eq!(faulty.stats().offered, 1_000);
    }

    #[test]
    fn iid_loss_rate_converges() {
        let mut l = FaultLink::wrap(ideal(), FaultSpec::new(5).with_iid_loss(0.1));
        let n = 20_000;
        let mut drops = 0;
        for i in 0..n {
            if matches!(
                l.transmit(SimTime::from_ns(i), 100, 0.5),
                LinkOutcome::Drop(DropReason::RandomLoss)
            ) {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
        assert_eq!(l.stats().lost, drops as u64);
    }

    #[test]
    fn burst_loss_clusters() {
        // Bad state loses everything; bursts should be much longer than
        // iid at the same mean rate would produce.
        let mut l = FaultLink::wrap(
            ideal(),
            FaultSpec::new(7).with_burst_loss(0.01, 0.2, 0.0, 1.0),
        );
        let mut run = 0u32;
        let mut max_run = 0u32;
        let mut drops = 0u64;
        let n = 50_000;
        for i in 0..n {
            match l.transmit(SimTime::from_ns(i), 100, 0.5) {
                LinkOutcome::Drop(_) => {
                    run += 1;
                    max_run = max_run.max(run);
                    drops += 1;
                }
                LinkOutcome::Deliver(_) => run = 0,
            }
        }
        // Mean burst length = 1/p_bad_good = 5 frames; max run over 50k
        // frames should easily exceed what p=0.048 iid loss produces.
        assert!(max_run >= 8, "max_run={max_run}");
        let mean = LossModel::GilbertElliott {
            p_good_bad: 0.01,
            p_bad_good: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
        .mean_loss();
        let rate = drops as f64 / n as f64;
        assert!((rate - mean).abs() < 0.02, "rate={rate} mean={mean}");
    }

    #[test]
    fn corruption_is_a_distinct_drop() {
        let mut l = FaultLink::wrap(ideal(), FaultSpec::new(11).with_corruption(1.0));
        assert_eq!(
            l.transmit(SimTime::ZERO, 100, 0.5),
            LinkOutcome::Drop(DropReason::Corrupted)
        );
        assert_eq!(l.stats().corrupted, 1);
    }

    #[test]
    fn outage_drops_as_link_down() {
        let spec = FaultSpec::new(1).with_outage(SimTime::from_us(10), SimTime::from_us(20));
        let mut l = FaultLink::wrap(ideal(), spec);
        assert!(matches!(
            l.transmit(SimTime::from_us(5), 100, 0.5),
            LinkOutcome::Deliver(_)
        ));
        assert_eq!(
            l.transmit(SimTime::from_us(15), 100, 0.5),
            LinkOutcome::Drop(DropReason::LinkDown)
        );
        assert!(matches!(
            l.transmit(SimTime::from_us(25), 100, 0.5),
            LinkOutcome::Deliver(_)
        ));
        assert_eq!(l.stats().down_drops, 1);
    }

    #[test]
    fn jitter_bounds_and_reorders() {
        let spec = FaultSpec::new(13).with_jitter(SimTime::from_us(5));
        let mut l = FaultLink::wrap(ideal(), spec);
        let base = SimTime::from_ns(100); // ideal() propagation
        let mut times = Vec::new();
        for _ in 0..200 {
            match l.transmit(SimTime::ZERO, 100, 0.5) {
                LinkOutcome::Deliver(t) => {
                    assert!(t >= base && t <= base + SimTime::from_us(5));
                    times.push(t);
                }
                other => panic!("{other:?}"),
            }
        }
        // Same offer time, varying delivery: some pair must be inverted
        // relative to offer order.
        assert!(times.windows(2).any(|w| w[1] < w[0]), "no reordering seen");
        assert_eq!(l.stats().jittered, 200);
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultSpec::new(21)
            .with_burst_loss(0.05, 0.3, 0.001, 0.9)
            .with_corruption(0.01)
            .with_jitter(SimTime::from_ns(500));
        let run = |spec: &FaultSpec| {
            let mut l = FaultLink::wrap(ideal(), spec.clone());
            (0..5_000u64)
                .map(|i| l.transmit(SimTime::from_ns(i * 7), 100 + (i % 900) as usize, 0.5))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&spec), run(&spec));
    }
}
