//! Declarative fault models.
//!
//! A [`FaultSpec`] describes everything that can go wrong on one link
//! direction (or, by applying it to every link of a device, on a feed
//! unit, switch port, or retransmission server). Specs are plain data:
//! they carry a seed but no generator, so they can be cloned into
//! scenario configs, compared, and rebuilt into identical
//! [`crate::FaultLink`] instances for dual-run digest checks.

use tn_sim::SimTime;

/// Frame-loss process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No injected loss.
    None,
    /// Independent per-frame loss with probability `p`.
    Iid {
        /// Loss probability in `[0,1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss: a Good and a Bad state with
    /// separate loss probabilities, flipping between them per frame. The
    /// classic model for microwave fade and congested-port loss, where
    /// drops cluster instead of arriving i.i.d.
    GilbertElliott {
        /// P(Good → Bad) per offered frame.
        p_good_bad: f64,
        /// P(Bad → Good) per offered frame.
        p_bad_good: f64,
        /// Loss probability while Good (usually ~0).
        loss_good: f64,
        /// Loss probability while Bad (often near 1).
        loss_bad: f64,
    },
}

impl LossModel {
    /// Mean loss rate of the stationary process (for reports/sanity
    /// checks, not simulation).
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { p } => p,
            LossModel::GilbertElliott {
                p_good_bad,
                p_bad_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary occupancy of Bad = p_gb / (p_gb + p_bg).
                let denom = p_good_bad + p_bad_good;
                if denom <= 0.0 {
                    return loss_good;
                }
                let pi_bad = p_good_bad / denom;
                loss_good * (1.0 - pi_bad) + loss_bad * pi_bad
            }
        }
    }
}

/// A scheduled hard-down window: `[start, end)` in absolute sim time.
/// Models maintenance windows and the feed-unit / switch-port / retrans
/// -server outages of the degraded-mode experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First instant the link is down.
    pub start: SimTime,
    /// First instant the link is back up.
    pub end: SimTime,
}

impl Outage {
    /// Is the window active at `now`?
    pub fn covers(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }

    /// Window length.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// Periodic link flapping: down for `down_for` at the start of every
/// `period`, beginning at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flap {
    /// Cycle length.
    pub period: SimTime,
    /// Down time at the head of each cycle.
    pub down_for: SimTime,
    /// Phase: the first down window opens at `offset`.
    pub offset: SimTime,
}

impl Flap {
    /// Is the link flapped down at `now`?
    pub fn down_at(&self, now: SimTime) -> bool {
        if now < self.offset || self.period == SimTime::ZERO {
            return false;
        }
        let phase = (now.as_ps() - self.offset.as_ps()) % self.period.as_ps();
        phase < self.down_for.as_ps()
    }
}

/// Everything injectable on one link direction. Construct with
/// [`FaultSpec::new`] and chain `with_*` calls; the default spec is a
/// no-op (and [`crate::FaultLink`] guarantees a no-op spec is
/// bit-transparent).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault stream. Derive it from the scenario's master
    /// seed (e.g. `master ^ link_index`) so whole runs replay from one
    /// number.
    pub seed: u64,
    /// Loss process.
    pub loss: LossModel,
    /// Per-frame corruption probability (corrupted frames are dropped at
    /// the receiver's FCS check).
    pub corrupt: f64,
    /// Maximum extra delivery delay, drawn uniformly per frame. Non-zero
    /// jitter lets frames pass each other in flight — the reordering
    /// that sequenced feeds must tolerate.
    pub jitter: SimTime,
    /// Scheduled hard-down windows.
    pub outages: Vec<Outage>,
    /// Periodic flapping.
    pub flap: Option<Flap>,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec::new(0)
    }
}

impl FaultSpec {
    /// A no-op spec seeded with `seed`; add faults with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            loss: LossModel::None,
            corrupt: 0.0,
            jitter: SimTime::ZERO,
            outages: Vec::new(),
            flap: None,
        }
    }

    /// Independent per-frame loss.
    pub fn with_iid_loss(mut self, p: f64) -> FaultSpec {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = LossModel::Iid { p };
        self
    }

    /// A seeded i.i.d.-loss spec, or `None` when `p <= 0`. Sweep axes use
    /// this so a zero-loss cell carries *no* fault spec at all and stays
    /// on the clean-path golden digests (a no-op `FaultLink` would still
    /// reproduce them, but absence is the stronger statement).
    pub fn iid(seed: u64, p: f64) -> Option<FaultSpec> {
        if p <= 0.0 {
            None
        } else {
            Some(FaultSpec::new(seed).with_iid_loss(p))
        }
    }

    /// Gilbert–Elliott burst loss (see [`LossModel::GilbertElliott`]).
    pub fn with_burst_loss(
        mut self,
        p_good_bad: f64,
        p_bad_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> FaultSpec {
        for p in [p_good_bad, p_bad_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        self.loss = LossModel::GilbertElliott {
            p_good_bad,
            p_bad_good,
            loss_good,
            loss_bad,
        };
        self
    }

    /// Per-frame corruption probability.
    pub fn with_corruption(mut self, p: f64) -> FaultSpec {
        assert!(
            (0.0..=1.0).contains(&p),
            "corruption probability out of range"
        );
        self.corrupt = p;
        self
    }

    /// Uniform reordering jitter in `[0, max_extra]`.
    pub fn with_jitter(mut self, max_extra: SimTime) -> FaultSpec {
        self.jitter = max_extra;
        self
    }

    /// Add a scheduled outage window `[start, end)`.
    pub fn with_outage(mut self, start: SimTime, end: SimTime) -> FaultSpec {
        assert!(start < end, "empty outage window");
        self.outages.push(Outage { start, end });
        self
    }

    /// Periodic flapping from `offset` onward.
    pub fn with_flap(mut self, period: SimTime, down_for: SimTime, offset: SimTime) -> FaultSpec {
        assert!(down_for <= period, "down_for longer than the period");
        self.flap = Some(Flap {
            period,
            down_for,
            offset,
        });
        self
    }

    /// True if this spec injects nothing — the bit-transparent case.
    pub fn is_noop(&self) -> bool {
        self.loss == LossModel::None
            && self.corrupt == 0.0
            && self.jitter == SimTime::ZERO
            && self.outages.is_empty()
            && self.flap.is_none()
    }

    /// Is the link down (outage or flap) at `now`?
    pub fn down_at(&self, now: SimTime) -> bool {
        self.outages.iter().any(|o| o.covers(now))
            || self.flap.as_ref().is_some_and(|f| f.down_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        let s = FaultSpec::default();
        assert!(s.is_noop());
        assert!(!s.down_at(SimTime::from_ms(5)));
        assert_eq!(s.loss.mean_loss(), 0.0);
    }

    #[test]
    fn iid_axis_helper() {
        assert_eq!(FaultSpec::iid(7, 0.0), None);
        assert_eq!(FaultSpec::iid(7, -1.0), None);
        let s = FaultSpec::iid(7, 0.02).expect("positive p yields a spec");
        assert_eq!(s.seed, 7);
        assert_eq!(s.loss, LossModel::Iid { p: 0.02 });
        assert!(!s.is_noop());
    }

    #[test]
    fn outage_window_edges() {
        let s = FaultSpec::new(1).with_outage(SimTime::from_ms(10), SimTime::from_ms(20));
        assert!(!s.is_noop());
        assert!(!s.down_at(SimTime::from_ms(10) - SimTime::PICOSECOND));
        assert!(s.down_at(SimTime::from_ms(10)));
        assert!(s.down_at(SimTime::from_ms(20) - SimTime::PICOSECOND));
        assert!(!s.down_at(SimTime::from_ms(20)));
    }

    #[test]
    fn flap_cycles() {
        let s = FaultSpec::new(1).with_flap(
            SimTime::from_ms(10),
            SimTime::from_ms(2),
            SimTime::from_ms(5),
        );
        assert!(!s.down_at(SimTime::from_ms(4))); // before offset
        assert!(s.down_at(SimTime::from_ms(5)));
        assert!(s.down_at(SimTime::from_ms(6)));
        assert!(!s.down_at(SimTime::from_ms(7)));
        assert!(s.down_at(SimTime::from_ms(15))); // next cycle
        assert!(!s.down_at(SimTime::from_ms(18)));
    }

    #[test]
    fn gilbert_elliott_mean_loss() {
        // Symmetric transitions: half the time Bad at loss 0.5 -> 0.25.
        let m = LossModel::GilbertElliott {
            p_good_bad: 0.1,
            p_bad_good: 0.1,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        assert!((m.mean_loss() - 0.25).abs() < 1e-12);
        assert_eq!(LossModel::Iid { p: 0.03 }.mean_loss(), 0.03);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_probability_validated() {
        let _ = FaultSpec::new(1).with_iid_loss(1.5);
    }
}
