//! # tn-fault — deterministic fault injection
//!
//! The paper's reliability argument (§2, §4) is that trading networks
//! survive loss at the *edges* — A/B feed pairs, gap detection,
//! retransmission units — not by retransmitting inside the fabric. To
//! exercise those claims the simulator needs faults, and the faults must
//! be as deterministic as everything else: two runs with the same master
//! seed and the same fault configuration must produce bit-identical
//! kernel trace digests (`tn-audit divergence` enforces this).
//!
//! Three layers:
//!
//! * [`FaultSpec`] — a declarative fault model for one link direction:
//!   i.i.d. or burst (Gilbert–Elliott) frame loss, corruption (dropped at
//!   the receiving NIC's FCS check), reordering jitter, periodic link
//!   flaps, and scheduled outage windows. All randomness comes from a
//!   [`tn_sim::SmallRng`] seeded from the spec, advanced only by
//!   `transmit` calls — never from wall clocks or global state.
//! * [`FaultLink`] — wraps any [`tn_sim::Link`] and applies a
//!   `FaultSpec` in front of it. A no-op spec is bit-transparent: the
//!   wrapped link sees exactly the calls it would have seen bare.
//! * [`LinkSpec`] + [`FaultConnect`] — the redesigned link-construction
//!   API: one struct carrying latency, rate, queueing, MTU and an
//!   optional fault model, accepted by `connect_spec` /
//!   `connect_directed_spec` on the simulator. This replaces threading
//!   positional `Link` parameters through every call site.
//!
//! ```
//! use tn_fault::{FaultConnect, FaultSpec, LinkSpec};
//! use tn_sim::{Simulator, SimTime, Node, Context, Frame, PortId};
//!
//! struct Sink(u64);
//! impl Node for Sink {
//!     fn on_frame(&mut self, _: &mut Context<'_>, _: PortId, _: Frame) { self.0 += 1; }
//! }
//!
//! let mut sim = Simulator::new(1);
//! let a = sim.add_node("a", Sink(0));
//! let b = sim.add_node("b", Sink(0));
//! let spec = LinkSpec::ten_gig(SimTime::from_ns(25))
//!     .with_fault(FaultSpec::new(7).with_iid_loss(0.05));
//! sim.connect_spec(a, PortId(0), b, PortId(0), &spec);
//! ```

pub mod link;
pub mod spec;

pub use link::{BaseLink, FaultLink, SpecLink};
pub use spec::{FaultSpec, Flap, LossModel, Outage};

use tn_sim::{Link, NodeId, PortId, Simulator};

/// A declarative link between two ports: propagation, optional
/// serialization rate, bounded queueing, MTU, and an optional fault
/// model. Replaces the positional `impl Link` parameters of
/// `Simulator::connect` / `connect_directed` (the old signatures remain
/// for low-level use but new call sites should build a `LinkSpec`).
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub propagation: tn_sim::SimTime,
    /// Line rate in bits/second; `None` models an infinitely fast hop
    /// (no serialization, no queueing) like [`tn_sim::IdealLink`].
    pub rate_bps: Option<u64>,
    /// Egress queue bound in bytes; `None` is unbounded.
    pub queue_bytes: Option<usize>,
    /// MTU in whole-frame bytes; `None` keeps the link default.
    pub mtu: Option<usize>,
    /// Injected fault model, if any. `None` is a clean link and is
    /// guaranteed bit-transparent: digests match a bare-link build.
    pub fault: Option<FaultSpec>,
}

impl LinkSpec {
    /// An infinitely fast, lossless hop with a fixed one-way delay.
    pub fn ideal(propagation: tn_sim::SimTime) -> LinkSpec {
        LinkSpec {
            propagation,
            rate_bps: None,
            queue_bytes: None,
            mtu: None,
            fault: None,
        }
    }

    /// A serializing link at `rate_bps`.
    pub fn ether(rate_bps: u64, propagation: tn_sim::SimTime) -> LinkSpec {
        LinkSpec {
            rate_bps: Some(rate_bps),
            ..LinkSpec::ideal(propagation)
        }
    }

    /// The standard 10 GbE colo/cross-connect link.
    pub fn ten_gig(propagation: tn_sim::SimTime) -> LinkSpec {
        LinkSpec::ether(10_000_000_000, propagation)
    }

    /// Bound the egress queue (bytes of backlog beyond the frame in
    /// flight).
    pub fn with_queue_bytes(mut self, bytes: usize) -> LinkSpec {
        self.queue_bytes = Some(bytes);
        self
    }

    /// Set the MTU.
    pub fn with_mtu(mut self, mtu: usize) -> LinkSpec {
        self.mtu = Some(mtu);
        self
    }

    /// Attach a fault model.
    pub fn with_fault(mut self, fault: FaultSpec) -> LinkSpec {
        self.fault = Some(fault);
        self
    }

    /// Materialize the link model this spec describes. Each call builds a
    /// fresh instance (fresh fault RNG, idle transmitter), so the two
    /// directions of a bidirectional connect fault independently but
    /// reproducibly.
    pub fn build(&self) -> SpecLink {
        let base = match self.rate_bps {
            None => BaseLink::Ideal(tn_sim::IdealLink::new(self.propagation)),
            Some(rate) => {
                let mut l = tn_netdev::EtherLink::new(rate, self.propagation);
                if let Some(q) = self.queue_bytes {
                    l = l.with_queue_bytes(q);
                }
                if let Some(m) = self.mtu {
                    l = l.with_mtu(m);
                }
                BaseLink::Ether(l)
            }
        };
        FaultLink::wrap(base, self.fault.clone().unwrap_or_default())
    }
}

/// Spec-based connection API for [`Simulator`]: the `LinkSpec`
/// counterparts of `connect` / `connect_directed`.
pub trait FaultConnect {
    /// Connect two ports bidirectionally; each direction gets its own
    /// independently built instance of `spec`.
    fn connect_spec(
        &mut self,
        a: NodeId,
        a_port: PortId,
        b: NodeId,
        b_port: PortId,
        spec: &LinkSpec,
    );

    /// Install a directional link described by `spec`.
    fn connect_directed_spec(
        &mut self,
        src: NodeId,
        src_port: PortId,
        dst: NodeId,
        dst_port: PortId,
        spec: &LinkSpec,
    );
}

impl FaultConnect for Simulator {
    fn connect_spec(
        &mut self,
        a: NodeId,
        a_port: PortId,
        b: NodeId,
        b_port: PortId,
        spec: &LinkSpec,
    ) {
        self.connect_directed_spec(a, a_port, b, b_port, spec);
        self.connect_directed_spec(b, b_port, a, a_port, spec);
    }

    fn connect_directed_spec(
        &mut self,
        src: NodeId,
        src_port: PortId,
        dst: NodeId,
        dst_port: PortId,
        spec: &LinkSpec,
    ) {
        let link: Box<dyn Link> = Box::new(spec.build());
        self.install_link(src, src_port, dst, dst_port, link);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{Context, Frame, LinkOutcome, Node, PortId, SimTime};

    struct Count(u64);
    impl Node for Count {
        fn on_frame(&mut self, _: &mut Context<'_>, _: PortId, _: Frame) {
            self.0 += 1;
        }
    }

    #[test]
    fn ideal_spec_matches_ideal_link() {
        let spec = LinkSpec::ideal(SimTime::from_ns(100));
        let mut built = spec.build();
        let mut bare = tn_sim::IdealLink::new(SimTime::from_ns(100));
        for t in [0u64, 10, 500] {
            assert_eq!(
                built.transmit(SimTime::from_ns(t), 64, 0.5),
                bare.transmit(SimTime::from_ns(t), 64, 0.5)
            );
        }
    }

    #[test]
    fn ether_spec_matches_ether_link() {
        let spec = LinkSpec::ten_gig(SimTime::from_ns(25))
            .with_queue_bytes(5_000)
            .with_mtu(1514);
        let mut built = spec.build();
        let mut bare = tn_netdev::EtherLink::ten_gig(SimTime::from_ns(25))
            .with_queue_bytes(5_000)
            .with_mtu(1514);
        for len in [64usize, 1514, 1515, 1250, 1250, 1250, 1250] {
            assert_eq!(
                built.transmit(SimTime::ZERO, len, 0.9),
                bare.transmit(SimTime::ZERO, len, 0.9)
            );
        }
    }

    #[test]
    fn connect_spec_wires_both_directions() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Count(0));
        let b = sim.add_node("b", Count(0));
        sim.connect_spec(
            a,
            PortId(0),
            b,
            PortId(0),
            &LinkSpec::ideal(SimTime::from_ns(5)),
        );
        assert!(sim.is_connected(a, PortId(0)));
        assert!(sim.is_connected(b, PortId(0)));
    }

    #[test]
    fn faulty_spec_drops_deterministically() {
        let spec = LinkSpec::ideal(SimTime::ZERO).with_fault(FaultSpec::new(3).with_iid_loss(0.5));
        let outcomes = |spec: &LinkSpec| {
            let mut l = spec.build();
            (0..64)
                .map(|i| l.transmit(SimTime::from_ns(i), 100, 0.5))
                .collect::<Vec<_>>()
        };
        let a = outcomes(&spec);
        let b = outcomes(&spec);
        assert_eq!(a, b);
        assert!(a.iter().any(|o| matches!(o, LinkOutcome::Drop(_))));
        assert!(a.iter().any(|o| matches!(o, LinkOutcome::Deliver(_))));
    }
}
