//! Evaluation reports: what a design run produces.

use tn_sim::SimTime;
use tn_stats::Summary;

/// Order statistics for a latency population, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: SimTime,
    /// Mean.
    pub mean: SimTime,
    /// Median.
    pub median: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl LatencyStats {
    /// Build from raw picosecond samples.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        let mut s = Summary::new();
        s.extend(samples.iter().copied());
        LatencyStats {
            count: s.count(),
            min: SimTime::from_ps(s.min()),
            mean: SimTime::from_ps(s.mean() as u64),
            median: SimTime::from_ps(s.median()),
            p99: SimTime::from_ps(s.percentile(99.0)),
            max: SimTime::from_ps(s.max()),
        }
    }

    /// An empty population.
    pub fn empty() -> LatencyStats {
        LatencyStats {
            count: 0,
            min: SimTime::ZERO,
            mean: SimTime::ZERO,
            median: SimTime::ZERO,
            p99: SimTime::ZERO,
            max: SimTime::ZERO,
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} median={} mean={} p99={} max={}",
            self.count, self.min, self.median, self.mean, self.p99, self.max
        )
    }
}

/// Degraded-mode accounting: what the feed path lost and what the
/// recovery machinery (A/B arbitration, reorder buffers, retransmission)
/// got back.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Distinct sequence-gap events receivers observed.
    pub gaps_seen: u64,
    /// Records lost for good (skipped forward or abandoned).
    pub records_lost: u64,
    /// Records recovered (retransmission fills plus the held packets
    /// they unblocked).
    pub records_recovered: u64,
    /// Duplicate copies absorbed (the other feed side arrived first).
    pub duplicates_absorbed: u64,
    /// Retransmission requests issued (including timed-out re-requests).
    pub retrans_requests: u64,
    /// Gap-fill latency: request to in-order release.
    pub gap_fill: LatencyStats,
    /// Delivered messages per second over the degraded window (0 when no
    /// degraded window was measured).
    pub degraded_throughput: f64,
}

impl RecoveryStats {
    /// A run with nothing to recover.
    pub fn none() -> RecoveryStats {
        RecoveryStats {
            gaps_seen: 0,
            records_lost: 0,
            records_recovered: 0,
            duplicates_absorbed: 0,
            retrans_requests: 0,
            gap_fill: LatencyStats::empty(),
            degraded_throughput: 0.0,
        }
    }
}

impl Default for RecoveryStats {
    fn default() -> RecoveryStats {
        RecoveryStats::none()
    }
}

/// Outcome of running one scenario over one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name.
    pub design: String,
    /// Market-data delivery: matching-engine event → record arriving at a
    /// strategy host (wire + switches + normalizer hop).
    pub feed_latency: LatencyStats,
    /// Wire-to-wire reaction: matching-engine event → responsive order
    /// arriving back at the exchange (the number firms compete on).
    pub reaction: LatencyStats,
    /// Feed messages the exchange published.
    pub feed_messages: u64,
    /// Records strategies evaluated.
    pub records_evaluated: u64,
    /// Records strategies discarded (host-side filtering).
    pub records_discarded: u64,
    /// Orders strategies sent.
    pub orders_sent: u64,
    /// Acks received by strategies.
    pub acks: u64,
    /// Fills received by strategies.
    pub fills: u64,
    /// Frames dropped anywhere (links + queues).
    pub frames_dropped: u64,
    /// Total software service on the reaction path (configured).
    pub software_path: SimTime,
    /// Fraction of the median reaction spent *outside* the firm's
    /// software (network + exchange): §4.1's "half of the overall time
    /// through the system is spent in the network".
    pub network_share: f64,
    /// Kernel trace digest of the run (FNV-1a over every event the
    /// kernel processed). Two runs of the same design + scenario + seed
    /// must report the same digest; `tn-audit divergence` enforces it.
    pub trace_digest: u64,
    /// Events folded into `trace_digest`.
    pub events_recorded: u64,
    /// Degraded-mode accounting (all-zero for clean runs).
    pub recovery: RecoveryStats,
}

impl DesignReport {
    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let recovery = if self.recovery == RecoveryStats::none() {
            String::new()
        } else {
            let r = &self.recovery;
            format!(
                "\n  recovery : gaps={} lost={} recovered={} dups={} requests={} fill[{}]",
                r.gaps_seen,
                r.records_lost,
                r.records_recovered,
                r.duplicates_absorbed,
                r.retrans_requests,
                r.gap_fill,
            )
        };
        format!(
            "[{}]\n  feed     : {}\n  reaction : {}\n  feed_msgs={} evaluated={} discarded={} \
             orders={} acks={} fills={} drops={}{recovery}\n  software_path={} \
             network_share={:.1}% digest={:016x}",
            self.design,
            self.feed_latency,
            self.reaction,
            self.feed_messages,
            self.records_evaluated,
            self.records_discarded,
            self.orders_sent,
            self.acks,
            self.fills,
            self.frames_dropped,
            self.software_path,
            self.network_share * 100.0,
            self.trace_digest,
        )
    }

    /// Network time on the median reaction (median minus software path,
    /// saturating).
    pub fn network_time(&self) -> SimTime {
        self.reaction.median.saturating_sub(self.software_path)
    }

    /// Machine-readable report. The schema is versioned — consumers must
    /// check `"schema": "tn-report/v1"` before parsing; fields may only
    /// be *added* within a version. All times are integer picoseconds;
    /// the digest is 16 lowercase hex digits.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        json_str(&mut s, "schema", SCHEMA_V1);
        s.push(',');
        json_str(&mut s, "design", &self.design);
        s.push(',');
        json_latency(&mut s, "feed_latency", &self.feed_latency);
        s.push(',');
        json_latency(&mut s, "reaction", &self.reaction);
        for (k, v) in [
            ("feed_messages", self.feed_messages),
            ("records_evaluated", self.records_evaluated),
            ("records_discarded", self.records_discarded),
            ("orders_sent", self.orders_sent),
            ("acks", self.acks),
            ("fills", self.fills),
            ("frames_dropped", self.frames_dropped),
            ("software_path_ps", self.software_path.as_ps()),
            ("events_recorded", self.events_recorded),
        ] {
            s.push(',');
            json_u64(&mut s, k, v);
        }
        s.push(',');
        json_f64(&mut s, "network_share", self.network_share);
        s.push(',');
        json_str(
            &mut s,
            "trace_digest",
            &format!("{:016x}", self.trace_digest),
        );
        let r = &self.recovery;
        s.push_str(",\"recovery\":{");
        for (i, (k, v)) in [
            ("gaps_seen", r.gaps_seen),
            ("records_lost", r.records_lost),
            ("records_recovered", r.records_recovered),
            ("duplicates_absorbed", r.duplicates_absorbed),
            ("retrans_requests", r.retrans_requests),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            json_u64(&mut s, k, v);
        }
        s.push(',');
        json_latency(&mut s, "gap_fill", &r.gap_fill);
        s.push(',');
        json_f64(&mut s, "degraded_throughput", r.degraded_throughput);
        s.push_str("}}");
        s
    }
}

/// Schema tag emitted by [`DesignReport::to_json`].
pub const SCHEMA_V1: &str = "tn-report/v1";

fn json_str(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_u64(out: &mut String, key: &str, val: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&val.to_string());
}

fn json_f64(out: &mut String, key: &str, val: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    // JSON has no NaN/Inf; clamp to null for robustness.
    if val.is_finite() {
        out.push_str(&format!("{val:.6}"));
    } else {
        out.push_str("null");
    }
}

fn json_latency(out: &mut String, key: &str, l: &LatencyStats) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":{");
    json_u64(out, "count", l.count as u64);
    for (k, v) in [
        ("min_ps", l.min),
        ("mean_ps", l.mean),
        ("median_ps", l.median),
        ("p99_ps", l.p99),
        ("max_ps", l.max),
    ] {
        out.push(',');
        json_u64(out, k, v.as_ps());
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let samples: Vec<u64> = (1..=100).map(|i| i * 1_000).collect(); // 1..100 ns
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, SimTime::from_ns(1));
        assert_eq!(s.median, SimTime::from_ns(50));
        assert_eq!(s.p99, SimTime::from_ns(99));
        assert_eq!(s.max, SimTime::from_ns(100));
        assert_eq!(s.mean, SimTime::from_ps(50_500));
    }

    #[test]
    fn empty_stats() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, SimTime::ZERO);
        assert_eq!(LatencyStats::empty(), s);
    }

    #[test]
    fn display_renders() {
        let s = LatencyStats::from_samples(&[1_000_000]);
        let out = s.to_string();
        assert!(out.contains("median=1.000us"), "{out}");
    }

    fn sample_report() -> DesignReport {
        DesignReport {
            design: "test \"design\"".into(),
            feed_latency: LatencyStats::from_samples(&[1_000, 2_000]),
            reaction: LatencyStats::from_samples(&[5_000]),
            feed_messages: 10,
            records_evaluated: 8,
            records_discarded: 2,
            orders_sent: 3,
            acks: 3,
            fills: 1,
            frames_dropped: 4,
            software_path: SimTime::from_us(5),
            network_share: 0.5,
            trace_digest: 0xff1d_bcd7_cf7e_729e,
            events_recorded: 123,
            recovery: RecoveryStats {
                gaps_seen: 2,
                records_lost: 1,
                records_recovered: 5,
                duplicates_absorbed: 7,
                retrans_requests: 3,
                gap_fill: LatencyStats::from_samples(&[9_000]),
                degraded_throughput: 1234.5,
            },
        }
    }

    #[test]
    fn json_is_versioned_and_carries_recovery() {
        let j = sample_report().to_json();
        assert!(j.starts_with("{\"schema\":\"tn-report/v1\""), "{j}");
        assert!(j.contains("\"design\":\"test \\\"design\\\"\""), "{j}");
        assert!(j.contains("\"trace_digest\":\"ff1dbcd7cf7e729e\""), "{j}");
        assert!(j.contains("\"recovery\":{\"gaps_seen\":2"), "{j}");
        assert!(j.contains("\"records_recovered\":5"), "{j}");
        assert!(j.contains("\"gap_fill\":{\"count\":1"), "{j}");
        assert!(j.contains("\"median_ps\":9000"), "{j}");
        assert!(j.contains("\"degraded_throughput\":1234.5"), "{j}");
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
        assert!(j.ends_with("}}"), "{j}");
    }

    #[test]
    fn summary_shows_recovery_only_when_degraded() {
        let mut r = sample_report();
        assert!(r.summary().contains("recovery : gaps=2"), "{}", r.summary());
        r.recovery = RecoveryStats::none();
        assert!(!r.summary().contains("recovery"), "{}", r.summary());
    }
}
