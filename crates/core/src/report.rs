//! Evaluation reports: what a design run produces.

use tn_sim::SimTime;
use tn_stats::Summary;

/// Order statistics for a latency population, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: SimTime,
    /// Mean.
    pub mean: SimTime,
    /// Median.
    pub median: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl LatencyStats {
    /// Build from raw picosecond samples.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        let mut s = Summary::new();
        s.extend(samples.iter().copied());
        LatencyStats {
            count: s.count(),
            min: SimTime::from_ps(s.min()),
            mean: SimTime::from_ps(s.mean() as u64),
            median: SimTime::from_ps(s.median()),
            p99: SimTime::from_ps(s.percentile(99.0)),
            max: SimTime::from_ps(s.max()),
        }
    }

    /// An empty population.
    pub fn empty() -> LatencyStats {
        LatencyStats {
            count: 0,
            min: SimTime::ZERO,
            mean: SimTime::ZERO,
            median: SimTime::ZERO,
            p99: SimTime::ZERO,
            max: SimTime::ZERO,
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} median={} mean={} p99={} max={}",
            self.count, self.min, self.median, self.mean, self.p99, self.max
        )
    }
}

/// Outcome of running one scenario over one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name.
    pub design: String,
    /// Market-data delivery: matching-engine event → record arriving at a
    /// strategy host (wire + switches + normalizer hop).
    pub feed_latency: LatencyStats,
    /// Wire-to-wire reaction: matching-engine event → responsive order
    /// arriving back at the exchange (the number firms compete on).
    pub reaction: LatencyStats,
    /// Feed messages the exchange published.
    pub feed_messages: u64,
    /// Records strategies evaluated.
    pub records_evaluated: u64,
    /// Records strategies discarded (host-side filtering).
    pub records_discarded: u64,
    /// Orders strategies sent.
    pub orders_sent: u64,
    /// Acks received by strategies.
    pub acks: u64,
    /// Fills received by strategies.
    pub fills: u64,
    /// Frames dropped anywhere (links + queues).
    pub frames_dropped: u64,
    /// Total software service on the reaction path (configured).
    pub software_path: SimTime,
    /// Fraction of the median reaction spent *outside* the firm's
    /// software (network + exchange): §4.1's "half of the overall time
    /// through the system is spent in the network".
    pub network_share: f64,
    /// Kernel trace digest of the run (FNV-1a over every event the
    /// kernel processed). Two runs of the same design + scenario + seed
    /// must report the same digest; `tn-audit divergence` enforces it.
    pub trace_digest: u64,
    /// Events folded into `trace_digest`.
    pub events_recorded: u64,
}

impl DesignReport {
    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "[{}]\n  feed     : {}\n  reaction : {}\n  feed_msgs={} evaluated={} discarded={} \
             orders={} acks={} fills={} drops={}\n  software_path={} network_share={:.1}% \
             digest={:016x}",
            self.design,
            self.feed_latency,
            self.reaction,
            self.feed_messages,
            self.records_evaluated,
            self.records_discarded,
            self.orders_sent,
            self.acks,
            self.fills,
            self.frames_dropped,
            self.software_path,
            self.network_share * 100.0,
            self.trace_digest,
        )
    }

    /// Network time on the median reaction (median minus software path,
    /// saturating).
    pub fn network_time(&self) -> SimTime {
        self.reaction.median.saturating_sub(self.software_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let samples: Vec<u64> = (1..=100).map(|i| i * 1_000).collect(); // 1..100 ns
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, SimTime::from_ns(1));
        assert_eq!(s.median, SimTime::from_ns(50));
        assert_eq!(s.p99, SimTime::from_ns(99));
        assert_eq!(s.max, SimTime::from_ns(100));
        assert_eq!(s.mean, SimTime::from_ps(50_500));
    }

    #[test]
    fn empty_stats() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, SimTime::ZERO);
        assert_eq!(LatencyStats::empty(), s);
    }

    #[test]
    fn display_renders() {
        let s = LatencyStats::from_samples(&[1_000_000]);
        let out = s.to_string();
        assert!(out.contains("median=1.000us"), "{out}");
    }
}
