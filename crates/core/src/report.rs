//! Evaluation reports: what a design run produces.

use tn_sim::{KernelProfile, SimTime, Snapshot, SnapshotValue};
use tn_stats::{FairnessWindow, Summary};

/// Order statistics for a latency population, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: SimTime,
    /// Mean.
    pub mean: SimTime,
    /// Median.
    pub median: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// Maximum.
    pub max: SimTime,
}

impl LatencyStats {
    /// Build from raw picosecond samples.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        let mut s = Summary::new();
        s.extend(samples.iter().copied());
        LatencyStats {
            count: s.count(),
            min: SimTime::from_ps(s.min()),
            mean: SimTime::from_ps(s.mean() as u64),
            median: SimTime::from_ps(s.median()),
            p99: SimTime::from_ps(s.p99()),
            max: SimTime::from_ps(s.max()),
        }
    }

    /// An empty population.
    pub fn empty() -> LatencyStats {
        LatencyStats {
            count: 0,
            min: SimTime::ZERO,
            mean: SimTime::ZERO,
            median: SimTime::ZERO,
            p99: SimTime::ZERO,
            max: SimTime::ZERO,
        }
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} median={} mean={} p99={} max={}",
            self.count, self.min, self.median, self.mean, self.p99, self.max
        )
    }
}

/// Degraded-mode accounting: what the feed path lost and what the
/// recovery machinery (A/B arbitration, reorder buffers, retransmission)
/// got back.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStats {
    /// Distinct sequence-gap events receivers observed.
    pub gaps_seen: u64,
    /// Records lost for good (skipped forward or abandoned).
    pub records_lost: u64,
    /// Records recovered (retransmission fills plus the held packets
    /// they unblocked).
    pub records_recovered: u64,
    /// Duplicate copies absorbed (the other feed side arrived first).
    pub duplicates_absorbed: u64,
    /// Retransmission requests issued (including timed-out re-requests).
    pub retrans_requests: u64,
    /// Gap-fill latency: request to in-order release.
    pub gap_fill: LatencyStats,
    /// Delivered messages per second over the degraded window (0 when no
    /// degraded window was measured).
    pub degraded_throughput: f64,
}

impl RecoveryStats {
    /// A run with nothing to recover.
    pub fn none() -> RecoveryStats {
        RecoveryStats {
            gaps_seen: 0,
            records_lost: 0,
            records_recovered: 0,
            duplicates_absorbed: 0,
            retrans_requests: 0,
            gap_fill: LatencyStats::empty(),
            degraded_throughput: 0.0,
        }
    }
}

impl Default for RecoveryStats {
    fn default() -> RecoveryStats {
        RecoveryStats::none()
    }
}

/// One segment kind's aggregate across every instrumented hop: where the
/// run's frame time went (enqueue vs. serialize vs. propagate ...).
#[derive(Debug, Clone, PartialEq)]
pub struct HopKindStat {
    /// Segment kind name (`"enqueue"`, `"serialize"`, ...).
    pub kind: String,
    /// Segments recorded.
    pub count: u64,
    /// Exact sum of segment durations, picoseconds.
    pub total_ps: u128,
    /// Mean segment duration, picoseconds.
    pub mean_ps: u64,
    /// Largest single segment, picoseconds.
    pub max_ps: u64,
    /// This kind's share of all hop time, `0.0..=1.0`.
    pub share: f64,
}

/// One node's share of accumulated hop time.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHopStat {
    /// Node id.
    pub node: u32,
    /// Segments attributed to the node.
    pub count: u64,
    /// Total hop time attributed to the node, picoseconds.
    pub total_ps: u128,
}

/// How many hottest nodes [`Telemetry::from_snapshot`] keeps.
const HOTTEST_NODES: usize = 5;

/// Telemetry section of a report, distilled from a metrics-registry
/// snapshot when the scenario enables recording
/// (`ScenarioConfig::obs.registry`); absent otherwise. Purely an *output*
/// of the run — whether it is collected never changes the trace digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// Simulated time the snapshot was taken, picoseconds.
    pub at_ps: u64,
    /// Per-kind hop decomposition (scope `"hop"`), in kind order.
    pub hops: Vec<HopKindStat>,
    /// Top nodes by accumulated hop time, descending (ties by node id).
    pub hottest_nodes: Vec<NodeHopStat>,
    /// Every counter in the registry: `(scope, name, node, value)`, in
    /// key order.
    pub counters: Vec<(String, String, Option<u32>, u64)>,
}

impl Telemetry {
    /// Distill a registry snapshot: aggregate the per-`(kind, node)` hop
    /// distributions into per-kind and per-node totals, and carry the
    /// counters through verbatim.
    pub fn from_snapshot(snap: &Snapshot) -> Telemetry {
        use std::collections::BTreeMap;
        let mut by_kind: BTreeMap<&str, (u64, u128, u64)> = BTreeMap::new();
        let mut by_node: BTreeMap<u32, (u64, u128)> = BTreeMap::new();
        let mut counters = Vec::new();
        for e in &snap.entries {
            match &e.value {
                SnapshotValue::Distribution {
                    count, sum, max, ..
                } if e.scope == "hop" => {
                    let k = by_kind.entry(e.name.as_str()).or_insert((0, 0, 0));
                    k.0 += count;
                    k.1 += sum;
                    k.2 = (k.2).max(*max);
                    if let Some(node) = e.node {
                        let n = by_node.entry(node).or_insert((0, 0));
                        n.0 += count;
                        n.1 += sum;
                    }
                }
                SnapshotValue::Counter(v) => {
                    counters.push((e.scope.clone(), e.name.clone(), e.node, *v));
                }
                _ => {}
            }
        }
        let grand: u128 = by_kind.values().map(|(_, sum, _)| sum).sum();
        let hops = by_kind
            .into_iter()
            .map(|(kind, (count, total_ps, max_ps))| HopKindStat {
                kind: kind.to_string(),
                count,
                total_ps,
                mean_ps: if count == 0 {
                    0
                } else {
                    (total_ps / u128::from(count)) as u64
                },
                max_ps,
                share: if grand == 0 {
                    0.0
                } else {
                    total_ps as f64 / grand as f64
                },
            })
            .collect();
        let mut hottest_nodes: Vec<NodeHopStat> = by_node
            .into_iter()
            .map(|(node, (count, total_ps))| NodeHopStat {
                node,
                count,
                total_ps,
            })
            .collect();
        // BTreeMap order makes the sort's tie-break (node id) deterministic.
        hottest_nodes.sort_by(|a, b| b.total_ps.cmp(&a.total_ps).then(a.node.cmp(&b.node)));
        hottest_nodes.truncate(HOTTEST_NODES);
        Telemetry {
            at_ps: snap.at_ps,
            hops,
            hottest_nodes,
            counters,
        }
    }

    /// Sum of every counter named `name` under `scope`, across nodes.
    pub fn counter_total(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(s, n, _, _)| s == scope && n == name)
            .map(|(_, _, _, v)| v)
            .sum()
    }
}

/// Sharded-execution section of a report: how the run was partitioned
/// and how the safe-window protocol went. Present only when the scenario
/// asked for sharded execution (`ScenarioConfig::shards`); every other
/// field of the report — the trace digest above all — is identical
/// either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Number of shards the topology was split into.
    pub shards: u16,
    /// Conservative-lookahead windows executed.
    pub windows: u64,
    /// Frames that crossed a shard boundary (merged by the leader).
    pub cross_shard_frames: u64,
    /// Events dispatched per shard.
    pub events_per_shard: Vec<u64>,
    /// Nodes owned per shard.
    pub nodes_per_shard: Vec<u64>,
}

/// Cloud-fairness section of a report: how evenly one published event
/// reached every subscriber, and what the fairness machinery charged for
/// it. Present only when the cloud design ran with
/// `CloudFairnessSpec::enabled()`; purely an output — collecting it never
/// moves the trace digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessStats {
    /// Subscribers (equalizer gates) measured.
    pub subscribers: u64,
    /// Events delivered to every subscriber (complete fairness groups).
    pub events_measured: u64,
    /// Events that missed at least one subscriber (excluded from spread).
    pub events_incomplete: u64,
    /// Deliveries that arrived past their equalizer ceiling and passed
    /// straight through — the jitter tail the ceiling failed to cover.
    pub late_deliveries: u64,
    /// Median delivery spread (last minus first subscriber) per event.
    pub spread_p50: SimTime,
    /// 99th-percentile delivery spread.
    pub spread_p99: SimTime,
    /// Worst delivery spread.
    pub spread_max: SimTime,
    /// Median padding the equalizers added per delivery — the latency
    /// price paid for the spread numbers above.
    pub pad_median: SimTime,
}

impl FairnessStats {
    /// Fold a populated [`FairnessWindow`] plus the equalizers' late
    /// counter and per-delivery padding samples into report form.
    pub fn from_window(w: &FairnessWindow, late_deliveries: u64, pad_ps: &[u64]) -> FairnessStats {
        let mut spreads = w.spreads();
        let mut pads = Summary::new();
        pads.extend(pad_ps.iter().copied());
        FairnessStats {
            subscribers: w.expected() as u64,
            events_measured: w.complete() as u64,
            events_incomplete: w.incomplete() as u64,
            late_deliveries,
            spread_p50: SimTime::from_ps(spreads.median()),
            spread_p99: SimTime::from_ps(spreads.p99()),
            spread_max: SimTime::from_ps(spreads.max()),
            pad_median: SimTime::from_ps(pads.median()),
        }
    }
}

/// Outcome of running one scenario over one design.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// Design name.
    pub design: String,
    /// Market-data delivery: matching-engine event → record arriving at a
    /// strategy host (wire + switches + normalizer hop).
    pub feed_latency: LatencyStats,
    /// Wire-to-wire reaction: matching-engine event → responsive order
    /// arriving back at the exchange (the number firms compete on).
    pub reaction: LatencyStats,
    /// Feed messages the exchange published.
    pub feed_messages: u64,
    /// Records strategies evaluated.
    pub records_evaluated: u64,
    /// Records strategies discarded (host-side filtering).
    pub records_discarded: u64,
    /// Orders strategies sent.
    pub orders_sent: u64,
    /// Acks received by strategies.
    pub acks: u64,
    /// Fills received by strategies.
    pub fills: u64,
    /// Frames dropped anywhere (links + queues).
    pub frames_dropped: u64,
    /// Total software service on the reaction path (configured).
    pub software_path: SimTime,
    /// Fraction of the median reaction spent *outside* the firm's
    /// software (network + exchange): §4.1's "half of the overall time
    /// through the system is spent in the network".
    pub network_share: f64,
    /// Kernel trace digest of the run (FNV-1a over every event the
    /// kernel processed). Two runs of the same design + scenario + seed
    /// must report the same digest; `tn-audit divergence` enforces it.
    pub trace_digest: u64,
    /// Events folded into `trace_digest`.
    pub events_recorded: u64,
    /// Degraded-mode accounting (all-zero for clean runs).
    pub recovery: RecoveryStats,
    /// Latency decomposition and counters, when the scenario enabled the
    /// metrics registry (`ScenarioConfig::obs.registry`).
    pub telemetry: Option<Telemetry>,
    /// Kernel self-profile (dispatch counters, queue-depth series,
    /// scheduler and arena statistics), when the scenario enabled the
    /// profiler (`ScenarioConfig::obs.profile`). Like telemetry, purely
    /// an output — collection never moves the trace digest.
    pub profile: Option<KernelProfile>,
    /// Rendered tn-flight ring at end of run, when the scenario enabled
    /// the flight recorder (`ScenarioConfig::obs.flight`). Carried so
    /// divergence harnesses can attach the last N kernel events to a
    /// failure message. Not serialized in `tn-report/v1`.
    pub flight_dump: Option<String>,
    /// Raw wire-to-wire reaction samples (picoseconds), in arrival order.
    /// Kept so cross-run consumers (the tn-lab sweep aggregator) can pool
    /// exact percentiles across seeds instead of averaging summaries.
    /// Not serialized in `tn-report/v1`.
    pub reaction_samples: Vec<u64>,
    /// Sharded-execution statistics, when the scenario asked for sharded
    /// execution (`ScenarioConfig::shards`). Like telemetry, purely an
    /// output — the partitioning never moves the trace digest.
    pub shard: Option<ShardReport>,
    /// Cloud-fairness statistics, when the cloud design ran with its
    /// fairness mechanisms enabled (`CloudConfig::fairness`). Purely an
    /// output, like telemetry.
    pub fairness: Option<FairnessStats>,
}

impl DesignReport {
    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let recovery = if self.recovery == RecoveryStats::none() {
            String::new()
        } else {
            let r = &self.recovery;
            format!(
                "\n  recovery : gaps={} lost={} recovered={} dups={} requests={} fill[{}]",
                r.gaps_seen,
                r.records_lost,
                r.records_recovered,
                r.duplicates_absorbed,
                r.retrans_requests,
                r.gap_fill,
            )
        };
        let telemetry = match &self.telemetry {
            None => String::new(),
            Some(t) => {
                let mut s = String::new();
                for h in &t.hops {
                    s.push_str(&format!(
                        "\n    hop {:<10}: n={} total={} mean={} max={} ({:.1}%)",
                        h.kind,
                        h.count,
                        SimTime::from_ps(h.total_ps.min(u128::from(u64::MAX)) as u64),
                        SimTime::from_ps(h.mean_ps),
                        SimTime::from_ps(h.max_ps),
                        h.share * 100.0,
                    ));
                }
                if !t.hottest_nodes.is_empty() {
                    s.push_str("\n    hottest   :");
                    for n in &t.hottest_nodes {
                        s.push_str(&format!(
                            " node{}={}",
                            n.node,
                            SimTime::from_ps(n.total_ps.min(u128::from(u64::MAX)) as u64),
                        ));
                    }
                }
                format!("\n  telemetry: {} counters{s}", t.counters.len())
            }
        };
        let profile = match &self.profile {
            None => String::new(),
            Some(p) => format!("\n{}", p.render("  ").trim_end_matches('\n')),
        };
        let shard = match &self.shard {
            None => String::new(),
            Some(sh) => format!(
                "\n  shard    : k={} windows={} cross_shard_frames={} events={:?}",
                sh.shards, sh.windows, sh.cross_shard_frames, sh.events_per_shard,
            ),
        };
        let fairness = match &self.fairness {
            None => String::new(),
            Some(fa) => format!(
                "\n  fairness : subs={} events={} incomplete={} late={} \
                 spread[p50={} p99={} max={}] pad_median={}",
                fa.subscribers,
                fa.events_measured,
                fa.events_incomplete,
                fa.late_deliveries,
                fa.spread_p50,
                fa.spread_p99,
                fa.spread_max,
                fa.pad_median,
            ),
        };
        format!(
            "[{}]\n  feed     : {}\n  reaction : {}\n  feed_msgs={} evaluated={} discarded={} \
             orders={} acks={} fills={} drops={}{recovery}{telemetry}{profile}{shard}{fairness}\n  \
             software_path={} network_share={:.1}% digest={:016x}",
            self.design,
            self.feed_latency,
            self.reaction,
            self.feed_messages,
            self.records_evaluated,
            self.records_discarded,
            self.orders_sent,
            self.acks,
            self.fills,
            self.frames_dropped,
            self.software_path,
            self.network_share * 100.0,
            self.trace_digest,
        )
    }

    /// Network time on the median reaction (median minus software path,
    /// saturating).
    pub fn network_time(&self) -> SimTime {
        self.reaction.median.saturating_sub(self.software_path)
    }

    /// Machine-readable report. The schema is versioned — consumers must
    /// check `"schema": "tn-report/v1"` before parsing; fields may only
    /// be *added* within a version. All times are integer picoseconds;
    /// the digest is 16 lowercase hex digits.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        json_str(&mut s, "schema", SCHEMA_V1);
        s.push(',');
        json_str(&mut s, "design", &self.design);
        s.push(',');
        json_latency(&mut s, "feed_latency", &self.feed_latency);
        s.push(',');
        json_latency(&mut s, "reaction", &self.reaction);
        for (k, v) in [
            ("feed_messages", self.feed_messages),
            ("records_evaluated", self.records_evaluated),
            ("records_discarded", self.records_discarded),
            ("orders_sent", self.orders_sent),
            ("acks", self.acks),
            ("fills", self.fills),
            ("frames_dropped", self.frames_dropped),
            ("software_path_ps", self.software_path.as_ps()),
            ("events_recorded", self.events_recorded),
        ] {
            s.push(',');
            json_u64(&mut s, k, v);
        }
        s.push(',');
        json_f64(&mut s, "network_share", self.network_share);
        s.push(',');
        json_str(
            &mut s,
            "trace_digest",
            &format!("{:016x}", self.trace_digest),
        );
        let r = &self.recovery;
        s.push_str(",\"recovery\":{");
        for (i, (k, v)) in [
            ("gaps_seen", r.gaps_seen),
            ("records_lost", r.records_lost),
            ("records_recovered", r.records_recovered),
            ("duplicates_absorbed", r.duplicates_absorbed),
            ("retrans_requests", r.retrans_requests),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            json_u64(&mut s, k, v);
        }
        s.push(',');
        json_latency(&mut s, "gap_fill", &r.gap_fill);
        s.push(',');
        json_f64(&mut s, "degraded_throughput", r.degraded_throughput);
        s.push('}');
        if let Some(t) = &self.telemetry {
            s.push_str(",\"telemetry\":{");
            json_u64(&mut s, "at_ps", t.at_ps);
            s.push_str(",\"hops\":[");
            for (i, h) in t.hops.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('{');
                json_str(&mut s, "kind", &h.kind);
                for (k, v) in [
                    ("count", h.count),
                    ("total_ps", clamp_u64(h.total_ps)),
                    ("mean_ps", h.mean_ps),
                    ("max_ps", h.max_ps),
                ] {
                    s.push(',');
                    json_u64(&mut s, k, v);
                }
                s.push(',');
                json_f64(&mut s, "share", h.share);
                s.push('}');
            }
            s.push_str("],\"hottest_nodes\":[");
            for (i, n) in t.hottest_nodes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('{');
                json_u64(&mut s, "node", u64::from(n.node));
                s.push(',');
                json_u64(&mut s, "count", n.count);
                s.push(',');
                json_u64(&mut s, "total_ps", clamp_u64(n.total_ps));
                s.push('}');
            }
            s.push_str("],\"counters\":[");
            for (i, (scope, name, node, v)) in t.counters.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('{');
                json_str(&mut s, "scope", scope);
                s.push(',');
                json_str(&mut s, "name", name);
                s.push_str(",\"node\":");
                match node {
                    Some(n) => s.push_str(&n.to_string()),
                    None => s.push_str("null"),
                }
                s.push(',');
                json_u64(&mut s, "value", *v);
                s.push('}');
            }
            s.push_str("]}");
        }
        if let Some(p) = &self.profile {
            s.push_str(",\"kernel_profile\":{");
            json_u64(&mut s, "at_ps", p.at_ps);
            s.push(',');
            json_str(&mut s, "scheduler", &p.scheduler);
            for (k, v) in [
                ("frames", p.frames),
                ("timers", p.timers),
                ("drops", p.drops),
                ("schedules", p.schedules),
                ("max_queue_depth", p.max_queue_depth),
                ("queue_stride", p.queue_stride),
                ("sched_rebuilds", p.sched_rebuilds),
                ("sched_cascades", p.sched_cascades),
                ("sched_bucket_count", p.sched_bucket_count),
                ("sched_bucket_width_ps", p.sched_bucket_width_ps),
                ("arena_allocated", p.arena_allocated),
                ("arena_reused", p.arena_reused),
                ("arena_recycled", p.arena_recycled),
            ] {
                s.push(',');
                json_u64(&mut s, k, v);
            }
            s.push_str(",\"arena_reuse_ratio\":");
            match p.arena_reuse_ratio() {
                Some(r) => s.push_str(&format!("{r:.6}")),
                None => s.push_str("null"),
            }
            s.push_str(",\"wheel_occupancy\":[");
            for (i, occ) in p.wheel_occupancy.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&occ.to_string());
            }
            s.push_str("],\"queue_depth\":[");
            for (i, (at, depth)) in p.queue_depth.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{at},{depth}]"));
            }
            s.push_str("],\"busiest_nodes\":[");
            for (i, n) in p.busiest_nodes(5).iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('{');
                for (j, (k, v)) in [
                    ("node", u64::from(n.node)),
                    ("frames", n.frames),
                    ("timers", n.timers),
                    ("drops", n.drops),
                    ("last_at_ps", n.last_at_ps),
                ]
                .into_iter()
                .enumerate()
                {
                    if j > 0 {
                        s.push(',');
                    }
                    json_u64(&mut s, k, v);
                }
                s.push('}');
            }
            s.push_str("]}");
        }
        if let Some(sh) = &self.shard {
            s.push_str(",\"shard\":{");
            json_u64(&mut s, "shards", u64::from(sh.shards));
            s.push(',');
            json_u64(&mut s, "windows", sh.windows);
            s.push(',');
            json_u64(&mut s, "cross_shard_frames", sh.cross_shard_frames);
            for (key, vals) in [
                ("events_per_shard", &sh.events_per_shard),
                ("nodes_per_shard", &sh.nodes_per_shard),
            ] {
                s.push_str(",\"");
                s.push_str(key);
                s.push_str("\":[");
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&v.to_string());
                }
                s.push(']');
            }
            s.push('}');
        }
        if let Some(fa) = &self.fairness {
            s.push_str(",\"fairness\":{");
            for (i, (k, v)) in [
                ("subscribers", fa.subscribers),
                ("events_measured", fa.events_measured),
                ("events_incomplete", fa.events_incomplete),
                ("late_deliveries", fa.late_deliveries),
                ("spread_p50_ps", fa.spread_p50.as_ps()),
                ("spread_p99_ps", fa.spread_p99.as_ps()),
                ("spread_max_ps", fa.spread_max.as_ps()),
                ("pad_median_ps", fa.pad_median.as_ps()),
            ]
            .into_iter()
            .enumerate()
            {
                if i > 0 {
                    s.push(',');
                }
                json_u64(&mut s, k, v);
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Picosecond totals are u128 to be overflow-proof, but JSON carries u64;
/// saturate (a run would need ~half a year of simulated hop time to clip).
fn clamp_u64(v: u128) -> u64 {
    v.min(u128::from(u64::MAX)) as u64
}

/// Schema tag emitted by [`DesignReport::to_json`].
pub const SCHEMA_V1: &str = "tn-report/v1";

fn json_str(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_u64(out: &mut String, key: &str, val: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&val.to_string());
}

fn json_f64(out: &mut String, key: &str, val: f64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    // JSON has no NaN/Inf; clamp to null for robustness.
    if val.is_finite() {
        out.push_str(&format!("{val:.6}"));
    } else {
        out.push_str("null");
    }
}

fn json_latency(out: &mut String, key: &str, l: &LatencyStats) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":{");
    json_u64(out, "count", l.count as u64);
    for (k, v) in [
        ("min_ps", l.min),
        ("mean_ps", l.mean),
        ("median_ps", l.median),
        ("p99_ps", l.p99),
        ("max_ps", l.max),
    ] {
        out.push(',');
        json_u64(out, k, v.as_ps());
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_samples() {
        let samples: Vec<u64> = (1..=100).map(|i| i * 1_000).collect(); // 1..100 ns
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, SimTime::from_ns(1));
        assert_eq!(s.median, SimTime::from_ns(50));
        assert_eq!(s.p99, SimTime::from_ns(99));
        assert_eq!(s.max, SimTime::from_ns(100));
        assert_eq!(s.mean, SimTime::from_ps(50_500));
    }

    #[test]
    fn empty_stats() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, SimTime::ZERO);
        assert_eq!(LatencyStats::empty(), s);
    }

    #[test]
    fn display_renders() {
        let s = LatencyStats::from_samples(&[1_000_000]);
        let out = s.to_string();
        assert!(out.contains("median=1.000us"), "{out}");
    }

    fn sample_report() -> DesignReport {
        DesignReport {
            design: "test \"design\"".into(),
            feed_latency: LatencyStats::from_samples(&[1_000, 2_000]),
            reaction: LatencyStats::from_samples(&[5_000]),
            feed_messages: 10,
            records_evaluated: 8,
            records_discarded: 2,
            orders_sent: 3,
            acks: 3,
            fills: 1,
            frames_dropped: 4,
            software_path: SimTime::from_us(5),
            network_share: 0.5,
            trace_digest: 0xff1d_bcd7_cf7e_729e,
            events_recorded: 123,
            recovery: RecoveryStats {
                gaps_seen: 2,
                records_lost: 1,
                records_recovered: 5,
                duplicates_absorbed: 7,
                retrans_requests: 3,
                gap_fill: LatencyStats::from_samples(&[9_000]),
                degraded_throughput: 1234.5,
            },
            telemetry: None,
            profile: None,
            flight_dump: None,
            reaction_samples: vec![5_000],
            shard: None,
            fairness: None,
        }
    }

    fn sample_profile() -> KernelProfile {
        KernelProfile {
            at_ps: 8_000_000,
            scheduler: "binary-heap".into(),
            frames: 40,
            timers: 2,
            drops: 1,
            schedules: 43,
            max_queue_depth: 6,
            queue_depth: vec![(0, 1), (4_000_000, 6)],
            queue_stride: 1,
            per_node: vec![tn_sim::NodeProfile {
                node: 2,
                shard: 0,
                frames: 40,
                timers: 2,
                drops: 1,
                first_at_ps: 100,
                last_at_ps: 7_999_000,
            }],
            sched_rebuilds: 0,
            sched_cascades: 0,
            sched_bucket_count: 0,
            sched_bucket_width_ps: 0,
            wheel_occupancy: [0; 9],
            arena_allocated: 10,
            arena_reused: 30,
            arena_recycled: 35,
        }
    }

    fn sample_telemetry() -> Telemetry {
        Telemetry {
            at_ps: 9_000_000,
            hops: vec![HopKindStat {
                kind: "serialize".into(),
                count: 4,
                total_ps: 40_000,
                mean_ps: 10_000,
                max_ps: 12_000,
                share: 1.0,
            }],
            hottest_nodes: vec![NodeHopStat {
                node: 3,
                count: 4,
                total_ps: 40_000,
            }],
            counters: vec![
                ("kernel".into(), "deliver".into(), None, 7),
                ("switch".into(), "frames".into(), Some(3), 4),
            ],
        }
    }

    #[test]
    fn json_is_versioned_and_carries_recovery() {
        let j = sample_report().to_json();
        assert!(j.starts_with("{\"schema\":\"tn-report/v1\""), "{j}");
        assert!(j.contains("\"design\":\"test \\\"design\\\"\""), "{j}");
        assert!(j.contains("\"trace_digest\":\"ff1dbcd7cf7e729e\""), "{j}");
        assert!(j.contains("\"recovery\":{\"gaps_seen\":2"), "{j}");
        assert!(j.contains("\"records_recovered\":5"), "{j}");
        assert!(j.contains("\"gap_fill\":{\"count\":1"), "{j}");
        assert!(j.contains("\"median_ps\":9000"), "{j}");
        assert!(j.contains("\"degraded_throughput\":1234.5"), "{j}");
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
        assert!(j.ends_with("}}"), "{j}");
    }

    #[test]
    fn json_telemetry_is_absent_when_disabled_and_additive_when_on() {
        let mut r = sample_report();
        assert!(!r.to_json().contains("telemetry"));
        r.telemetry = Some(sample_telemetry());
        let j = r.to_json();
        assert!(j.contains("\"telemetry\":{\"at_ps\":9000000"), "{j}");
        assert!(
            j.contains("\"hops\":[{\"kind\":\"serialize\",\"count\":4,\"total_ps\":40000"),
            "{j}"
        );
        assert!(
            j.contains("\"hottest_nodes\":[{\"node\":3,\"count\":4,\"total_ps\":40000}]"),
            "{j}"
        );
        assert!(
            j.contains("{\"scope\":\"kernel\",\"name\":\"deliver\",\"node\":null,\"value\":7}"),
            "{j}"
        );
        assert!(
            j.contains("{\"scope\":\"switch\",\"name\":\"frames\",\"node\":3,\"value\":4}"),
            "{j}"
        );
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
    }

    #[test]
    fn telemetry_from_snapshot_aggregates_hops_and_ranks_nodes() {
        let m = tn_sim::Metrics::enabled();
        m.observe("hop", "serialize", Some(1), 10_000);
        m.observe("hop", "serialize", Some(2), 30_000);
        m.observe("hop", "propagate", Some(2), 60_000);
        m.inc("kernel", "deliver", None);
        let t = Telemetry::from_snapshot(&m.snapshot(5_000).unwrap());
        assert_eq!(t.at_ps, 5_000);
        assert_eq!(t.hops.len(), 2);
        let ser = t.hops.iter().find(|h| h.kind == "serialize").unwrap();
        assert_eq!((ser.count, ser.total_ps, ser.mean_ps), (2, 40_000, 20_000));
        assert_eq!(ser.max_ps, 30_000);
        assert!((ser.share - 0.4).abs() < 1e-9);
        // Node 2 carries 90 µs of hop time vs node 1's 10 µs.
        assert_eq!(t.hottest_nodes[0].node, 2);
        assert_eq!(t.hottest_nodes[0].total_ps, 90_000);
        assert_eq!(t.counter_total("kernel", "deliver"), 1);
    }

    #[test]
    fn json_kernel_profile_is_absent_when_disabled_and_additive_when_on() {
        let mut r = sample_report();
        assert!(!r.to_json().contains("kernel_profile"));
        r.profile = Some(sample_profile());
        let j = r.to_json();
        assert!(
            j.contains("\"kernel_profile\":{\"at_ps\":8000000,\"scheduler\":\"binary-heap\""),
            "{j}"
        );
        assert!(j.contains("\"frames\":40,\"timers\":2,\"drops\":1"), "{j}");
        assert!(j.contains("\"arena_reuse_ratio\":0.750000"), "{j}");
        assert!(j.contains("\"wheel_occupancy\":[0,0,0,0,0,0,0,0,0]"), "{j}");
        assert!(j.contains("\"queue_depth\":[[0,1],[4000000,6]]"), "{j}");
        assert!(
            j.contains("\"busiest_nodes\":[{\"node\":2,\"frames\":40"),
            "{j}"
        );
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn summary_shows_kernel_profile_only_when_collected() {
        let mut r = sample_report();
        assert!(!r.summary().contains("kernel profile"));
        r.profile = Some(sample_profile());
        let s = r.summary();
        assert!(
            s.contains("kernel profile @ 8000000 ps (binary-heap)"),
            "{s}"
        );
        assert!(s.contains("75.0% reuse"), "{s}");
        assert!(
            s.contains("network_share=50.0%"),
            "summary tail survives the profile block: {s}"
        );
    }

    #[test]
    fn json_and_summary_shard_section_is_absent_when_serial_and_additive_when_on() {
        let mut r = sample_report();
        assert!(!r.to_json().contains("\"shard\""));
        assert!(!r.summary().contains("shard    :"));
        r.shard = Some(ShardReport {
            shards: 3,
            windows: 17,
            cross_shard_frames: 42,
            events_per_shard: vec![100, 90, 80],
            nodes_per_shard: vec![2, 2, 1],
        });
        let j = r.to_json();
        assert!(
            j.contains("\"shard\":{\"shards\":3,\"windows\":17,\"cross_shard_frames\":42"),
            "{j}"
        );
        assert!(j.contains("\"events_per_shard\":[100,90,80]"), "{j}");
        assert!(j.contains("\"nodes_per_shard\":[2,2,1]"), "{j}");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let s = r.summary();
        assert!(
            s.contains("shard    : k=3 windows=17 cross_shard_frames=42"),
            "{s}"
        );
    }

    #[test]
    fn json_and_summary_fairness_section_is_absent_by_default_and_additive_when_on() {
        let mut r = sample_report();
        assert!(!r.to_json().contains("\"fairness\""));
        assert!(!r.summary().contains("fairness :"));
        r.fairness = Some(FairnessStats {
            subscribers: 8,
            events_measured: 40,
            events_incomplete: 2,
            late_deliveries: 3,
            spread_p50: SimTime::from_ns(100),
            spread_p99: SimTime::from_ns(900),
            spread_max: SimTime::from_us(1),
            pad_median: SimTime::from_us(30),
        });
        let j = r.to_json();
        assert!(
            j.contains("\"fairness\":{\"subscribers\":8,\"events_measured\":40"),
            "{j}"
        );
        assert!(
            j.contains("\"events_incomplete\":2,\"late_deliveries\":3"),
            "{j}"
        );
        assert!(
            j.contains(
                "\"spread_p50_ps\":100000,\"spread_p99_ps\":900000,\"spread_max_ps\":1000000"
            ),
            "{j}"
        );
        assert!(j.contains("\"pad_median_ps\":30000000"), "{j}");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
        let s = r.summary();
        assert!(
            s.contains("fairness : subs=8 events=40 incomplete=2 late=3"),
            "{s}"
        );
        assert!(s.contains("network_share=50.0%"), "tail survives: {s}");
    }

    #[test]
    fn fairness_stats_fold_a_window_and_pad_samples() {
        let mut w = FairnessWindow::new(2);
        // Event 1: spread 400 ps; event 2: spread 0; event 3: incomplete.
        w.observe(1, 1_000);
        w.observe(1, 1_400);
        w.observe(2, 2_000);
        w.observe(2, 2_000);
        w.observe(3, 5_000);
        let fa = FairnessStats::from_window(&w, 9, &[10, 20, 30]);
        assert_eq!(fa.subscribers, 2);
        assert_eq!(fa.events_measured, 2);
        assert_eq!(fa.events_incomplete, 1);
        assert_eq!(fa.late_deliveries, 9);
        assert_eq!(fa.spread_max, SimTime::from_ps(400));
        assert_eq!(fa.spread_p50, SimTime::from_ps(0));
        assert_eq!(fa.pad_median, SimTime::from_ps(20));
    }

    #[test]
    fn summary_shows_recovery_only_when_degraded() {
        let mut r = sample_report();
        assert!(r.summary().contains("recovery : gaps=2"), "{}", r.summary());
        r.recovery = RecoveryStats::none();
        assert!(!r.summary().contains("recovery"), "{}", r.summary());
    }
}
