//! The common firm + market scenario all designs run.

use tn_sim::SimTime;

/// Everything about the workload and the firm that is *not* the network:
/// the same `ScenarioConfig` runs over every design, so differences in
/// the reports are attributable to the fabric alone.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed (drives workload and any model randomness).
    pub seed: u64,
    /// Listed instruments.
    pub symbols: usize,
    /// Normalizer hosts.
    pub normalizers: usize,
    /// Strategy hosts.
    pub strategies: usize,
    /// Gateway hosts.
    pub gateways: usize,
    /// Exchange feed units (native multicast partitions).
    pub feed_units: u16,
    /// Firm-internal partitions after normalization.
    pub internal_partitions: u16,
    /// Partitions each strategy subscribes to.
    pub subs_per_strategy: usize,
    /// Background market events per second.
    pub background_rate: f64,
    /// Measured interval (after warm-up).
    pub duration: SimTime,
    /// Warm-up before measurement starts (logins, joins, tree building).
    pub warmup: SimTime,
    /// Normalizer cost per native message (§3's per-event budget).
    pub normalizer_service: SimTime,
    /// Strategy decision cost per evaluated record (§4 assumes ≈2 µs per
    /// software function).
    pub decision_service: SimTime,
    /// Gateway translation cost per order.
    pub gateway_service: SimTime,
    /// Exchange matching cost per order-entry message.
    pub exchange_service: SimTime,
    /// Momentum threshold (1e-4 dollars) — lower fires more orders.
    pub momentum_threshold: i64,
    /// Exchange background-flow batch interval. Small intervals publish
    /// near-per-event (clean latency paths); larger ones coalesce events
    /// into multi-message packets (realistic bursts).
    pub tick_interval: SimTime,
}

impl ScenarioConfig {
    /// A laptop-fast scenario for tests and the quickstart example.
    pub fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 40,
            normalizers: 2,
            strategies: 6,
            gateways: 2,
            feed_units: 4,
            internal_partitions: 8,
            subs_per_strategy: 4,
            background_rate: 50_000.0,
            duration: SimTime::from_ms(40),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
        }
    }

    /// A scenario at the paper's §4 scale: ~1,000 servers ("a few dozen
    /// each for normalizers and gateways and the rest for strategies").
    pub fn paper_scale(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 2_000,
            normalizers: 24,
            strategies: 930,
            gateways: 24,
            feed_units: 24,
            internal_partitions: 128,
            subs_per_strategy: 8,
            background_rate: 200_000.0,
            duration: SimTime::from_ms(50),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
        }
    }

    /// Total software service on the event→order→exchange path: one
    /// normalizer + one strategy + one gateway hop (§4.1's "3 software
    /// hops"), plus the exchange's own matching time.
    pub fn software_path(&self) -> SimTime {
        self.normalizer_service + self.decision_service + self.gateway_service
    }

    /// The partitions strategy `s` subscribes to (deterministic
    /// round-robin, like the L1 fabric's circuit provisioning).
    pub fn subscriptions_for(&self, s: usize) -> Vec<u16> {
        (0..self
            .subs_per_strategy
            .min(self.internal_partitions as usize))
            .map(|k| ((s + k) % self.internal_partitions as usize) as u16)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_about_1000_servers() {
        let c = ScenarioConfig::paper_scale(1);
        let servers = c.normalizers + c.strategies + c.gateways;
        assert!((950..=1050).contains(&servers), "{servers}");
        // "a few dozen each for normalizers and gateways".
        assert!(c.normalizers >= 12 && c.normalizers <= 48);
        assert!(c.gateways >= 12 && c.gateways <= 48);
    }

    #[test]
    fn software_path_is_three_hops() {
        let c = ScenarioConfig::small(1);
        let expected = c.normalizer_service + c.decision_service + c.gateway_service;
        assert_eq!(c.software_path(), expected);
    }

    #[test]
    fn subscriptions_are_deterministic_and_bounded() {
        let c = ScenarioConfig::small(1);
        let s0 = c.subscriptions_for(0);
        assert_eq!(s0, c.subscriptions_for(0));
        assert_eq!(s0.len(), c.subs_per_strategy);
        assert!(s0.iter().all(|&p| p < c.internal_partitions));
        assert_ne!(s0, c.subscriptions_for(1));
    }
}
