//! The common firm + market scenario all designs run.

use tn_fault::FaultSpec;
use tn_sim::{ObsConfig, SchedulerKind, ShardPlan, SimTime, Simulator};

/// Why a [`ScenarioBuilder`] refused to produce a config.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A host tier (normalizers/strategies/gateways) has zero members.
    ZeroHosts(&'static str),
    /// A structural count (symbols, feed units, partitions, …) is zero.
    ZeroField(&'static str),
    /// Warm-up must end before the measured interval does.
    WarmupExceedsDuration {
        /// Configured warm-up.
        warmup: SimTime,
        /// Configured measured duration.
        duration: SimTime,
    },
    /// Background event rate must be positive and finite.
    NonPositiveRate(f64),
    /// Strategies cannot subscribe to more partitions than exist.
    SubsExceedPartitions {
        /// Requested subscriptions per strategy.
        subs: usize,
        /// Available internal partitions.
        partitions: u16,
    },
    /// The shard spec is structurally broken, or the topology cannot
    /// honor it (a cut link with zero lookahead, a coin-consuming cut
    /// link, an assignment that does not cover the nodes).
    ShardRejected(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroHosts(tier) => write!(f, "scenario needs at least one {tier}"),
            ConfigError::ZeroField(field) => write!(f, "{field} must be non-zero"),
            ConfigError::WarmupExceedsDuration { warmup, duration } => {
                write!(
                    f,
                    "warmup {warmup} must be shorter than duration {duration}"
                )
            }
            ConfigError::NonPositiveRate(r) => {
                write!(f, "background_rate {r} must be positive and finite")
            }
            ConfigError::SubsExceedPartitions { subs, partitions } => write!(
                f,
                "subs_per_strategy {subs} exceeds internal_partitions {partitions}"
            ),
            ConfigError::ShardRejected(msg) => write!(f, "shard spec rejected: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How a design's kernel executes the scenario.
///
/// Every variant produces the *same* trace digest — sharded execution is
/// pinned bit-for-bit against the serial run by `tn-audit divergence`
/// and the shard-equivalence proptest — so this knob trades wall-clock
/// only, like [`ScenarioConfig::scheduler`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ShardSpec {
    /// One kernel, one thread: the reference execution.
    #[default]
    Serial,
    /// Partition into at most this many shards with the cut-minimizing
    /// automatic planner ([`tn_sim::ShardPlan::auto`]), which never cuts
    /// a zero-delay or coin-consuming link.
    Auto(u16),
    /// Explicit node-to-shard assignment (`assignment[node] = shard`).
    /// Rejected — as [`ConfigError::ShardRejected`] — when it does not
    /// cover the topology or cuts a link the protocol cannot cut.
    Manual(Vec<u32>),
}

/// Everything about the workload and the firm that is *not* the network:
/// the same `ScenarioConfig` runs over every design, so differences in
/// the reports are attributable to the fabric alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed (drives workload and any model randomness).
    pub seed: u64,
    /// Listed instruments.
    pub symbols: usize,
    /// Normalizer hosts.
    pub normalizers: usize,
    /// Strategy hosts.
    pub strategies: usize,
    /// Gateway hosts.
    pub gateways: usize,
    /// Exchange feed units (native multicast partitions).
    pub feed_units: u16,
    /// Firm-internal partitions after normalization.
    pub internal_partitions: u16,
    /// Partitions each strategy subscribes to.
    pub subs_per_strategy: usize,
    /// Background market events per second.
    pub background_rate: f64,
    /// Measured interval (after warm-up).
    pub duration: SimTime,
    /// Warm-up before measurement starts (logins, joins, tree building).
    pub warmup: SimTime,
    /// Normalizer cost per native message (§3's per-event budget).
    pub normalizer_service: SimTime,
    /// Strategy decision cost per evaluated record (§4 assumes ≈2 µs per
    /// software function).
    pub decision_service: SimTime,
    /// Gateway translation cost per order.
    pub gateway_service: SimTime,
    /// Exchange matching cost per order-entry message.
    pub exchange_service: SimTime,
    /// Momentum threshold (1e-4 dollars) — lower fires more orders.
    pub momentum_threshold: i64,
    /// Exchange background-flow batch interval. Small intervals publish
    /// near-per-event (clean latency paths); larger ones coalesce events
    /// into multi-message packets (realistic bursts).
    pub tick_interval: SimTime,
    /// Fault model for the exchange's feed-publish links. `None` (the
    /// default) is bit-identical to the pre-fault-injection fabric; a
    /// spec degrades the A feed (and, where a design has only one feed
    /// path, the feed) while order entry stays clean.
    pub feed_fault: Option<FaultSpec>,
    /// Telemetry switches (provenance, metrics registry, trace export).
    /// Off by default; turning any of them on never changes a run's
    /// event schedule or trace digest (pinned by `tn-audit divergence`).
    pub obs: ObsConfig,
    /// Event scheduler the kernel runs on. The default stays the
    /// reference [`SchedulerKind::BinaryHeap`]; switching to
    /// [`SchedulerKind::CalendarQueue`] or
    /// [`SchedulerKind::TimingWheel`] changes wall-clock speed only —
    /// all three pop events in identical `(time, seq)` order, so trace
    /// digests are bit-for-bit unchanged (pinned by `tn-audit
    /// divergence` and the scheduler-equivalence proptest).
    pub scheduler: SchedulerKind,
    /// Recycle frame payload buffers through the kernel's
    /// [`tn_sim::FrameArena`] (the default). Turning pooling off makes
    /// every frame build a fresh allocation but never moves the run:
    /// buffers are handed out logically empty either way, so the event
    /// schedule and trace digest are bit-for-bit identical (pinned by
    /// `tn-audit divergence`).
    pub frame_pooling: bool,
    /// Sharded (parallel) execution of the built topology. The default
    /// [`ShardSpec::Serial`] is the reference single-kernel run; sharded
    /// runs reproduce its trace digest bit-for-bit (pinned by `tn-audit
    /// divergence` and the shard-equivalence proptest).
    pub shards: ShardSpec,
}

impl ScenarioConfig {
    /// Start a validated builder seeded from the [`small`] preset (every
    /// field has a working default; override what the experiment varies,
    /// then [`build`](ScenarioBuilder::build)).
    ///
    /// [`small`]: ScenarioConfig::small
    pub fn builder(seed: u64) -> ScenarioBuilder {
        ScenarioBuilder {
            cfg: ScenarioConfig::small(seed),
        }
    }

    /// Re-open any config (e.g. the [`paper_scale`] preset) as a builder
    /// to adjust and re-validate.
    ///
    /// [`paper_scale`]: ScenarioConfig::paper_scale
    pub fn to_builder(self) -> ScenarioBuilder {
        ScenarioBuilder { cfg: self }
    }

    /// A laptop-fast scenario for tests and the quickstart example.
    pub fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 40,
            normalizers: 2,
            strategies: 6,
            gateways: 2,
            feed_units: 4,
            internal_partitions: 8,
            subs_per_strategy: 4,
            background_rate: 50_000.0,
            duration: SimTime::from_ms(40),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
            feed_fault: None,
            obs: ObsConfig::off(),
            scheduler: SchedulerKind::BinaryHeap,
            frame_pooling: true,
            shards: ShardSpec::Serial,
        }
    }

    /// A scenario at the paper's §4 scale: ~1,000 servers ("a few dozen
    /// each for normalizers and gateways and the rest for strategies").
    pub fn paper_scale(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 2_000,
            normalizers: 24,
            strategies: 930,
            gateways: 24,
            feed_units: 24,
            internal_partitions: 128,
            subs_per_strategy: 8,
            background_rate: 200_000.0,
            duration: SimTime::from_ms(50),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
            feed_fault: None,
            obs: ObsConfig::off(),
            scheduler: SchedulerKind::BinaryHeap,
            frame_pooling: true,
            shards: ShardSpec::Serial,
        }
    }

    /// Total software service on the event→order→exchange path: one
    /// normalizer + one strategy + one gateway hop (§4.1's "3 software
    /// hops"), plus the exchange's own matching time.
    pub fn software_path(&self) -> SimTime {
        self.normalizer_service + self.decision_service + self.gateway_service
    }

    /// Resolve the configured [`ShardSpec`] against a built topology:
    /// `None` for serial execution, a validated [`ShardPlan`] for
    /// sharded. Manual assignments that do not cover the topology, or
    /// cut a link the conservative-lookahead protocol cannot cut
    /// (zero `min_delay`, kernel-coin consumption), come back as
    /// [`ConfigError::ShardRejected`]; automatic plans never cut such
    /// links and therefore always validate.
    pub fn resolve_shard_plan(&self, sim: &Simulator) -> Result<Option<ShardPlan>, ConfigError> {
        let plan = match &self.shards {
            ShardSpec::Serial => return Ok(None),
            ShardSpec::Auto(k) => ShardPlan::auto(sim, *k),
            ShardSpec::Manual(assignment) => ShardPlan::manual(assignment.clone()),
        };
        plan.validate(sim)
            .map_err(|e| ConfigError::ShardRejected(e.to_string()))?;
        Ok(Some(plan))
    }

    /// The partitions strategy `s` subscribes to (deterministic
    /// round-robin, like the L1 fabric's circuit provisioning).
    pub fn subscriptions_for(&self, s: usize) -> Vec<u16> {
        (0..self
            .subs_per_strategy
            .min(self.internal_partitions as usize))
            .map(|k| ((s + k) % self.internal_partitions as usize) as u16)
            .collect()
    }
}

/// Validated construction of a [`ScenarioConfig`].
///
/// Starts from the [`ScenarioConfig::small`] defaults and overrides
/// field by field; [`build`](ScenarioBuilder::build) rejects structurally
/// broken configs (zero hosts, warm-up at least as long as the measured
/// window, …) instead of letting a design panic mid-run.
///
/// ```
/// use tn_core::ScenarioConfig;
/// use tn_sim::SimTime;
///
/// let sc = ScenarioConfig::builder(42)
///     .strategies(12)
///     .duration(SimTime::from_ms(10))
///     .build()
///     .expect("valid scenario");
/// assert_eq!(sc.strategies, 12);
///
/// let err = ScenarioConfig::builder(42).normalizers(0).build();
/// assert!(err.is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
}

macro_rules! setter {
    ($(#[$doc:meta] $name:ident: $ty:ty),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(mut self, $name: $ty) -> ScenarioBuilder {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl ScenarioBuilder {
    setter! {
        /// Master seed.
        seed: u64,
        /// Listed instruments.
        symbols: usize,
        /// Normalizer hosts.
        normalizers: usize,
        /// Strategy hosts.
        strategies: usize,
        /// Gateway hosts.
        gateways: usize,
        /// Exchange feed units.
        feed_units: u16,
        /// Firm-internal partitions.
        internal_partitions: u16,
        /// Partitions each strategy subscribes to.
        subs_per_strategy: usize,
        /// Background market events per second.
        background_rate: f64,
        /// Measured interval (after warm-up).
        duration: SimTime,
        /// Warm-up before measurement starts.
        warmup: SimTime,
        /// Normalizer cost per native message.
        normalizer_service: SimTime,
        /// Strategy decision cost per evaluated record.
        decision_service: SimTime,
        /// Gateway translation cost per order.
        gateway_service: SimTime,
        /// Exchange matching cost per order-entry message.
        exchange_service: SimTime,
        /// Momentum threshold (lower fires more orders).
        momentum_threshold: i64,
        /// Exchange background-flow batch interval.
        tick_interval: SimTime,
    }

    /// Inject `spec`'s faults on the exchange's feed-publish links.
    pub fn feed_fault(mut self, spec: FaultSpec) -> ScenarioBuilder {
        self.cfg.feed_fault = Some(spec);
        self
    }

    /// Telemetry switches (provenance, metrics registry, trace export).
    pub fn obs(mut self, obs: ObsConfig) -> ScenarioBuilder {
        self.cfg.obs = obs;
        self
    }

    /// Event scheduler the kernel runs on (digest-neutral; see
    /// [`ScenarioConfig::scheduler`]).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> ScenarioBuilder {
        self.cfg.scheduler = scheduler;
        self
    }

    /// Frame-buffer pooling through the kernel arena (digest-neutral;
    /// see [`ScenarioConfig::frame_pooling`]).
    pub fn frame_pooling(mut self, on: bool) -> ScenarioBuilder {
        self.cfg.frame_pooling = on;
        self
    }

    /// Sharded execution (digest-neutral; see [`ScenarioConfig::shards`]).
    pub fn shards(mut self, shards: ShardSpec) -> ScenarioBuilder {
        self.cfg.shards = shards;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ScenarioConfig, ConfigError> {
        let c = self.cfg;
        for (n, tier) in [
            (c.normalizers, "normalizer"),
            (c.strategies, "strategy"),
            (c.gateways, "gateway"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroHosts(tier));
            }
        }
        for (n, field) in [
            (c.symbols, "symbols"),
            (c.feed_units as usize, "feed_units"),
            (c.internal_partitions as usize, "internal_partitions"),
            (c.subs_per_strategy, "subs_per_strategy"),
            (c.duration.as_ps() as usize, "duration"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroField(field));
            }
        }
        if c.warmup >= c.duration {
            return Err(ConfigError::WarmupExceedsDuration {
                warmup: c.warmup,
                duration: c.duration,
            });
        }
        if !(c.background_rate.is_finite() && c.background_rate > 0.0) {
            return Err(ConfigError::NonPositiveRate(c.background_rate));
        }
        if c.subs_per_strategy > c.internal_partitions as usize {
            return Err(ConfigError::SubsExceedPartitions {
                subs: c.subs_per_strategy,
                partitions: c.internal_partitions,
            });
        }
        // Topology-dependent shard checks (cut lookahead, coin links)
        // run in `resolve_shard_plan` once a design has built the graph;
        // the structurally-broken specs are caught here.
        match &c.shards {
            ShardSpec::Auto(0) => {
                return Err(ConfigError::ShardRejected(
                    "Auto(0): need at least one shard".into(),
                ));
            }
            ShardSpec::Manual(v) if v.is_empty() => {
                return Err(ConfigError::ShardRejected(
                    "manual assignment is empty".into(),
                ));
            }
            _ => {}
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_small_preset() {
        let built = ScenarioConfig::builder(42).build().unwrap();
        let preset = ScenarioConfig::small(42);
        // The builder is the preset plus validation — field for field.
        assert_eq!(format!("{built:?}"), format!("{preset:?}"));
    }

    #[test]
    fn builder_rejects_broken_configs() {
        assert_eq!(
            ScenarioConfig::builder(1).strategies(0).build(),
            Err(ConfigError::ZeroHosts("strategy"))
        );
        assert_eq!(
            ScenarioConfig::builder(1).feed_units(0).build(),
            Err(ConfigError::ZeroField("feed_units"))
        );
        let err = ScenarioConfig::builder(1)
            .warmup(SimTime::from_ms(40))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::WarmupExceedsDuration { .. }));
        assert!(!err.to_string().is_empty());
        assert!(matches!(
            ScenarioConfig::builder(1).background_rate(f64::NAN).build(),
            Err(ConfigError::NonPositiveRate(_))
        ));
        assert!(matches!(
            ScenarioConfig::builder(1).subs_per_strategy(500).build(),
            Err(ConfigError::SubsExceedPartitions { .. })
        ));
    }

    #[test]
    fn builder_carries_fault_spec() {
        let sc = ScenarioConfig::builder(1)
            .feed_fault(FaultSpec::new(9).with_iid_loss(0.02))
            .build()
            .unwrap();
        assert!(sc.feed_fault.is_some());
        assert!(ScenarioConfig::small(1).feed_fault.is_none());
    }

    #[test]
    fn builder_carries_scheduler_kind() {
        let sc = ScenarioConfig::builder(1)
            .scheduler(SchedulerKind::CalendarQueue)
            .build()
            .unwrap();
        assert_eq!(sc.scheduler, SchedulerKind::CalendarQueue);
        // Presets stay on the reference heap so existing runs never move.
        assert_eq!(
            ScenarioConfig::small(1).scheduler,
            SchedulerKind::BinaryHeap
        );
        assert_eq!(
            ScenarioConfig::paper_scale(1).scheduler,
            SchedulerKind::BinaryHeap
        );
    }

    #[test]
    fn paper_scale_is_about_1000_servers() {
        let c = ScenarioConfig::paper_scale(1);
        let servers = c.normalizers + c.strategies + c.gateways;
        assert!((950..=1050).contains(&servers), "{servers}");
        // "a few dozen each for normalizers and gateways".
        assert!(c.normalizers >= 12 && c.normalizers <= 48);
        assert!(c.gateways >= 12 && c.gateways <= 48);
    }

    #[test]
    fn software_path_is_three_hops() {
        let c = ScenarioConfig::small(1);
        let expected = c.normalizer_service + c.decision_service + c.gateway_service;
        assert_eq!(c.software_path(), expected);
    }

    #[test]
    fn builder_rejects_degenerate_shard_specs() {
        assert!(matches!(
            ScenarioConfig::builder(1)
                .shards(ShardSpec::Auto(0))
                .build(),
            Err(ConfigError::ShardRejected(_))
        ));
        assert!(matches!(
            ScenarioConfig::builder(1)
                .shards(ShardSpec::Manual(Vec::new()))
                .build(),
            Err(ConfigError::ShardRejected(_))
        ));
        let sc = ScenarioConfig::builder(1)
            .shards(ShardSpec::Auto(4))
            .build()
            .unwrap();
        assert_eq!(sc.shards, ShardSpec::Auto(4));
    }

    #[test]
    fn zero_delay_cut_is_rejected_at_plan_resolution() {
        use tn_sim::{Context, Frame, IdealLink, Node, PortId};

        struct Quiet;
        impl Node for Quiet {
            fn on_frame(&mut self, _ctx: &mut Context<'_>, _p: PortId, _f: Frame) {}
        }

        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Quiet);
        let b = sim.add_node("b", Quiet);
        sim.install_link(
            a,
            PortId(0),
            b,
            PortId(0),
            Box::new(IdealLink::new(SimTime::ZERO)),
        );
        // Manually cutting the zero-delay link collapses the lookahead;
        // the topology-aware validator rejects it with the sim layer's
        // explanation wrapped in a ConfigError.
        let mut sc = ScenarioConfig::small(1);
        sc.shards = ShardSpec::Manual(vec![0, 1]);
        let err = sc.resolve_shard_plan(&sim).unwrap_err();
        match &err {
            ConfigError::ShardRejected(msg) => {
                assert!(msg.contains("zero min_delay"), "{msg}");
            }
            other => panic!("expected ShardRejected, got {other:?}"),
        }
        // Keeping the pair together (or any serial spec) resolves fine.
        sc.shards = ShardSpec::Manual(vec![0, 0]);
        assert!(sc.resolve_shard_plan(&sim).unwrap().is_some());
        sc.shards = ShardSpec::Serial;
        assert!(sc.resolve_shard_plan(&sim).unwrap().is_none());
    }

    #[test]
    fn subscriptions_are_deterministic_and_bounded() {
        let c = ScenarioConfig::small(1);
        let s0 = c.subscriptions_for(0);
        assert_eq!(s0, c.subscriptions_for(0));
        assert_eq!(s0.len(), c.subs_per_strategy);
        assert!(s0.iter().all(|&p| p < c.internal_partitions));
        assert_ne!(s0, c.subscriptions_for(1));
    }
}
