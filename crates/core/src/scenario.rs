//! The common firm + market scenario all designs run.

use tn_fault::FaultSpec;
use tn_sim::{ObsConfig, SchedulerKind, SimTime};

/// Why a [`ScenarioBuilder`] refused to produce a config.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A host tier (normalizers/strategies/gateways) has zero members.
    ZeroHosts(&'static str),
    /// A structural count (symbols, feed units, partitions, …) is zero.
    ZeroField(&'static str),
    /// Warm-up must end before the measured interval does.
    WarmupExceedsDuration {
        /// Configured warm-up.
        warmup: SimTime,
        /// Configured measured duration.
        duration: SimTime,
    },
    /// Background event rate must be positive and finite.
    NonPositiveRate(f64),
    /// Strategies cannot subscribe to more partitions than exist.
    SubsExceedPartitions {
        /// Requested subscriptions per strategy.
        subs: usize,
        /// Available internal partitions.
        partitions: u16,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroHosts(tier) => write!(f, "scenario needs at least one {tier}"),
            ConfigError::ZeroField(field) => write!(f, "{field} must be non-zero"),
            ConfigError::WarmupExceedsDuration { warmup, duration } => {
                write!(
                    f,
                    "warmup {warmup} must be shorter than duration {duration}"
                )
            }
            ConfigError::NonPositiveRate(r) => {
                write!(f, "background_rate {r} must be positive and finite")
            }
            ConfigError::SubsExceedPartitions { subs, partitions } => write!(
                f,
                "subs_per_strategy {subs} exceeds internal_partitions {partitions}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything about the workload and the firm that is *not* the network:
/// the same `ScenarioConfig` runs over every design, so differences in
/// the reports are attributable to the fabric alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master seed (drives workload and any model randomness).
    pub seed: u64,
    /// Listed instruments.
    pub symbols: usize,
    /// Normalizer hosts.
    pub normalizers: usize,
    /// Strategy hosts.
    pub strategies: usize,
    /// Gateway hosts.
    pub gateways: usize,
    /// Exchange feed units (native multicast partitions).
    pub feed_units: u16,
    /// Firm-internal partitions after normalization.
    pub internal_partitions: u16,
    /// Partitions each strategy subscribes to.
    pub subs_per_strategy: usize,
    /// Background market events per second.
    pub background_rate: f64,
    /// Measured interval (after warm-up).
    pub duration: SimTime,
    /// Warm-up before measurement starts (logins, joins, tree building).
    pub warmup: SimTime,
    /// Normalizer cost per native message (§3's per-event budget).
    pub normalizer_service: SimTime,
    /// Strategy decision cost per evaluated record (§4 assumes ≈2 µs per
    /// software function).
    pub decision_service: SimTime,
    /// Gateway translation cost per order.
    pub gateway_service: SimTime,
    /// Exchange matching cost per order-entry message.
    pub exchange_service: SimTime,
    /// Momentum threshold (1e-4 dollars) — lower fires more orders.
    pub momentum_threshold: i64,
    /// Exchange background-flow batch interval. Small intervals publish
    /// near-per-event (clean latency paths); larger ones coalesce events
    /// into multi-message packets (realistic bursts).
    pub tick_interval: SimTime,
    /// Fault model for the exchange's feed-publish links. `None` (the
    /// default) is bit-identical to the pre-fault-injection fabric; a
    /// spec degrades the A feed (and, where a design has only one feed
    /// path, the feed) while order entry stays clean.
    pub feed_fault: Option<FaultSpec>,
    /// Telemetry switches (provenance, metrics registry, trace export).
    /// Off by default; turning any of them on never changes a run's
    /// event schedule or trace digest (pinned by `tn-audit divergence`).
    pub obs: ObsConfig,
    /// Event scheduler the kernel runs on. The default stays the
    /// reference [`SchedulerKind::BinaryHeap`]; switching to
    /// [`SchedulerKind::CalendarQueue`] or
    /// [`SchedulerKind::TimingWheel`] changes wall-clock speed only —
    /// all three pop events in identical `(time, seq)` order, so trace
    /// digests are bit-for-bit unchanged (pinned by `tn-audit
    /// divergence` and the scheduler-equivalence proptest).
    pub scheduler: SchedulerKind,
    /// Recycle frame payload buffers through the kernel's
    /// [`tn_sim::FrameArena`] (the default). Turning pooling off makes
    /// every frame build a fresh allocation but never moves the run:
    /// buffers are handed out logically empty either way, so the event
    /// schedule and trace digest are bit-for-bit identical (pinned by
    /// `tn-audit divergence`).
    pub frame_pooling: bool,
}

impl ScenarioConfig {
    /// Start a validated builder seeded from the [`small`] preset (every
    /// field has a working default; override what the experiment varies,
    /// then [`build`](ScenarioBuilder::build)).
    ///
    /// [`small`]: ScenarioConfig::small
    pub fn builder(seed: u64) -> ScenarioBuilder {
        ScenarioBuilder {
            cfg: ScenarioConfig::small(seed),
        }
    }

    /// Re-open any config (e.g. the [`paper_scale`] preset) as a builder
    /// to adjust and re-validate.
    ///
    /// [`paper_scale`]: ScenarioConfig::paper_scale
    pub fn to_builder(self) -> ScenarioBuilder {
        ScenarioBuilder { cfg: self }
    }

    /// A laptop-fast scenario for tests and the quickstart example.
    pub fn small(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 40,
            normalizers: 2,
            strategies: 6,
            gateways: 2,
            feed_units: 4,
            internal_partitions: 8,
            subs_per_strategy: 4,
            background_rate: 50_000.0,
            duration: SimTime::from_ms(40),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
            feed_fault: None,
            obs: ObsConfig::off(),
            scheduler: SchedulerKind::BinaryHeap,
            frame_pooling: true,
        }
    }

    /// A scenario at the paper's §4 scale: ~1,000 servers ("a few dozen
    /// each for normalizers and gateways and the rest for strategies").
    pub fn paper_scale(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            symbols: 2_000,
            normalizers: 24,
            strategies: 930,
            gateways: 24,
            feed_units: 24,
            internal_partitions: 128,
            subs_per_strategy: 8,
            background_rate: 200_000.0,
            duration: SimTime::from_ms(50),
            warmup: SimTime::from_ms(2),
            normalizer_service: SimTime::from_ns(650),
            decision_service: SimTime::from_us(2),
            gateway_service: SimTime::from_us(2),
            exchange_service: SimTime::from_us(10),
            momentum_threshold: 100,
            tick_interval: SimTime::from_us(200),
            feed_fault: None,
            obs: ObsConfig::off(),
            scheduler: SchedulerKind::BinaryHeap,
            frame_pooling: true,
        }
    }

    /// Total software service on the event→order→exchange path: one
    /// normalizer + one strategy + one gateway hop (§4.1's "3 software
    /// hops"), plus the exchange's own matching time.
    pub fn software_path(&self) -> SimTime {
        self.normalizer_service + self.decision_service + self.gateway_service
    }

    /// The partitions strategy `s` subscribes to (deterministic
    /// round-robin, like the L1 fabric's circuit provisioning).
    pub fn subscriptions_for(&self, s: usize) -> Vec<u16> {
        (0..self
            .subs_per_strategy
            .min(self.internal_partitions as usize))
            .map(|k| ((s + k) % self.internal_partitions as usize) as u16)
            .collect()
    }
}

/// Validated construction of a [`ScenarioConfig`].
///
/// Starts from the [`ScenarioConfig::small`] defaults and overrides
/// field by field; [`build`](ScenarioBuilder::build) rejects structurally
/// broken configs (zero hosts, warm-up at least as long as the measured
/// window, …) instead of letting a design panic mid-run.
///
/// ```
/// use tn_core::ScenarioConfig;
/// use tn_sim::SimTime;
///
/// let sc = ScenarioConfig::builder(42)
///     .strategies(12)
///     .duration(SimTime::from_ms(10))
///     .build()
///     .expect("valid scenario");
/// assert_eq!(sc.strategies, 12);
///
/// let err = ScenarioConfig::builder(42).normalizers(0).build();
/// assert!(err.is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cfg: ScenarioConfig,
}

macro_rules! setter {
    ($(#[$doc:meta] $name:ident: $ty:ty),* $(,)?) => {
        $(
            #[$doc]
            pub fn $name(mut self, $name: $ty) -> ScenarioBuilder {
                self.cfg.$name = $name;
                self
            }
        )*
    };
}

impl ScenarioBuilder {
    setter! {
        /// Master seed.
        seed: u64,
        /// Listed instruments.
        symbols: usize,
        /// Normalizer hosts.
        normalizers: usize,
        /// Strategy hosts.
        strategies: usize,
        /// Gateway hosts.
        gateways: usize,
        /// Exchange feed units.
        feed_units: u16,
        /// Firm-internal partitions.
        internal_partitions: u16,
        /// Partitions each strategy subscribes to.
        subs_per_strategy: usize,
        /// Background market events per second.
        background_rate: f64,
        /// Measured interval (after warm-up).
        duration: SimTime,
        /// Warm-up before measurement starts.
        warmup: SimTime,
        /// Normalizer cost per native message.
        normalizer_service: SimTime,
        /// Strategy decision cost per evaluated record.
        decision_service: SimTime,
        /// Gateway translation cost per order.
        gateway_service: SimTime,
        /// Exchange matching cost per order-entry message.
        exchange_service: SimTime,
        /// Momentum threshold (lower fires more orders).
        momentum_threshold: i64,
        /// Exchange background-flow batch interval.
        tick_interval: SimTime,
    }

    /// Inject `spec`'s faults on the exchange's feed-publish links.
    pub fn feed_fault(mut self, spec: FaultSpec) -> ScenarioBuilder {
        self.cfg.feed_fault = Some(spec);
        self
    }

    /// Telemetry switches (provenance, metrics registry, trace export).
    pub fn obs(mut self, obs: ObsConfig) -> ScenarioBuilder {
        self.cfg.obs = obs;
        self
    }

    /// Event scheduler the kernel runs on (digest-neutral; see
    /// [`ScenarioConfig::scheduler`]).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> ScenarioBuilder {
        self.cfg.scheduler = scheduler;
        self
    }

    /// Frame-buffer pooling through the kernel arena (digest-neutral;
    /// see [`ScenarioConfig::frame_pooling`]).
    pub fn frame_pooling(mut self, on: bool) -> ScenarioBuilder {
        self.cfg.frame_pooling = on;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ScenarioConfig, ConfigError> {
        let c = self.cfg;
        for (n, tier) in [
            (c.normalizers, "normalizer"),
            (c.strategies, "strategy"),
            (c.gateways, "gateway"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroHosts(tier));
            }
        }
        for (n, field) in [
            (c.symbols, "symbols"),
            (c.feed_units as usize, "feed_units"),
            (c.internal_partitions as usize, "internal_partitions"),
            (c.subs_per_strategy, "subs_per_strategy"),
            (c.duration.as_ps() as usize, "duration"),
        ] {
            if n == 0 {
                return Err(ConfigError::ZeroField(field));
            }
        }
        if c.warmup >= c.duration {
            return Err(ConfigError::WarmupExceedsDuration {
                warmup: c.warmup,
                duration: c.duration,
            });
        }
        if !(c.background_rate.is_finite() && c.background_rate > 0.0) {
            return Err(ConfigError::NonPositiveRate(c.background_rate));
        }
        if c.subs_per_strategy > c.internal_partitions as usize {
            return Err(ConfigError::SubsExceedPartitions {
                subs: c.subs_per_strategy,
                partitions: c.internal_partitions,
            });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_small_preset() {
        let built = ScenarioConfig::builder(42).build().unwrap();
        let preset = ScenarioConfig::small(42);
        // The builder is the preset plus validation — field for field.
        assert_eq!(format!("{built:?}"), format!("{preset:?}"));
    }

    #[test]
    fn builder_rejects_broken_configs() {
        assert_eq!(
            ScenarioConfig::builder(1).strategies(0).build(),
            Err(ConfigError::ZeroHosts("strategy"))
        );
        assert_eq!(
            ScenarioConfig::builder(1).feed_units(0).build(),
            Err(ConfigError::ZeroField("feed_units"))
        );
        let err = ScenarioConfig::builder(1)
            .warmup(SimTime::from_ms(40))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::WarmupExceedsDuration { .. }));
        assert!(!err.to_string().is_empty());
        assert!(matches!(
            ScenarioConfig::builder(1).background_rate(f64::NAN).build(),
            Err(ConfigError::NonPositiveRate(_))
        ));
        assert!(matches!(
            ScenarioConfig::builder(1).subs_per_strategy(500).build(),
            Err(ConfigError::SubsExceedPartitions { .. })
        ));
    }

    #[test]
    fn builder_carries_fault_spec() {
        let sc = ScenarioConfig::builder(1)
            .feed_fault(FaultSpec::new(9).with_iid_loss(0.02))
            .build()
            .unwrap();
        assert!(sc.feed_fault.is_some());
        assert!(ScenarioConfig::small(1).feed_fault.is_none());
    }

    #[test]
    fn builder_carries_scheduler_kind() {
        let sc = ScenarioConfig::builder(1)
            .scheduler(SchedulerKind::CalendarQueue)
            .build()
            .unwrap();
        assert_eq!(sc.scheduler, SchedulerKind::CalendarQueue);
        // Presets stay on the reference heap so existing runs never move.
        assert_eq!(
            ScenarioConfig::small(1).scheduler,
            SchedulerKind::BinaryHeap
        );
        assert_eq!(
            ScenarioConfig::paper_scale(1).scheduler,
            SchedulerKind::BinaryHeap
        );
    }

    #[test]
    fn paper_scale_is_about_1000_servers() {
        let c = ScenarioConfig::paper_scale(1);
        let servers = c.normalizers + c.strategies + c.gateways;
        assert!((950..=1050).contains(&servers), "{servers}");
        // "a few dozen each for normalizers and gateways".
        assert!(c.normalizers >= 12 && c.normalizers <= 48);
        assert!(c.gateways >= 12 && c.gateways <= 48);
    }

    #[test]
    fn software_path_is_three_hops() {
        let c = ScenarioConfig::small(1);
        let expected = c.normalizer_service + c.decision_service + c.gateway_service;
        assert_eq!(c.software_path(), expected);
    }

    #[test]
    fn subscriptions_are_deterministic_and_bounded() {
        let c = ScenarioConfig::small(1);
        let s0 = c.subscriptions_for(0);
        assert_eq!(s0, c.subscriptions_for(0));
        assert_eq!(s0.len(), c.subs_per_strategy);
        assert!(s0.iter().all(|&p| p < c.internal_partitions));
        assert_ne!(s0, c.subscriptions_for(1));
    }
}
