//! The three §4 designs behind one trait.
//!
//! Each design builds the *same* market + firm (from a
//! [`ScenarioConfig`]) over its own fabric, runs it, and reports. The
//! firm tier is: normalizers owning disjoint feed units, strategies
//! subscribing to internal partitions and running momentum logic, and
//! gateways holding the exchange sessions.

use std::collections::HashSet;

use tn_market::{Exchange, ExchangeConfig, PartitionScheme, SymbolDirectory};
use tn_netdev::EtherLink;
use tn_sim::{NodeId, PortId, SimTime, Simulator};
use tn_switch::{FpgaConfig, FpgaL1Switch};
use tn_topo::{
    CloudConfig, CloudFabric, L1FabricConfig, L1TradingFabric, LeafSpine, LeafSpineConfig,
};
use tn_trading::{
    gateway, normalizer, strategy, Gateway, GatewayConfig, MomentumLogic, Normalizer,
    NormalizerConfig, OutputTransport, Strategy, StrategyConfig,
};
use tn_wire::{eth, igmp, ipv4, Symbol};

use tn_cloud::{equalizer, sequencer, DelayEqualizer};
use tn_fault::FaultLink;
use tn_sim::Link;
use tn_stats::FairnessWindow;

use tn_sim::{IdealLink, ShardedSimulator};

use crate::report::{DesignReport, FairnessStats, LatencyStats, RecoveryStats, ShardReport};
use crate::scenario::ScenarioConfig;

/// Multicast group index base of the exchange's native feed.
pub const FEED_MCAST_BASE: u32 = 0;
/// Multicast group index base of the firm's normalized feed.
pub const NORM_MCAST_BASE: u32 = 20_000;

/// A network design that can host the common scenario.
pub trait TradingNetworkDesign {
    /// Display name.
    fn name(&self) -> String;
    /// Build, run, and report.
    fn run(&self, scenario: &ScenarioConfig) -> DesignReport;
}

// ---------------------------------------------------------------------
// Shared firm construction
// ---------------------------------------------------------------------

struct Firm {
    normalizers: Vec<NodeId>,
    strategies: Vec<NodeId>,
    gateways: Vec<NodeId>,
    gateway_addrs: Vec<(eth::MacAddr, ipv4::Addr, ipv4::Addr)>, // (mac, exch_ip, internal_ip)
    strategy_addrs: Vec<(eth::MacAddr, ipv4::Addr)>,
    normalizer_addrs: Vec<(eth::MacAddr, ipv4::Addr)>,
}

fn build_firm(
    sim: &mut Simulator,
    sc: &ScenarioConfig,
    dir: &SymbolDirectory,
    exch_mac: eth::MacAddr,
    exch_ip: ipv4::Addr,
    send_igmp_joins: bool,
    accept_units: bool,
) -> Firm {
    build_firm_with_transport(
        sim,
        sc,
        dir,
        exch_mac,
        exch_ip,
        send_igmp_joins,
        accept_units,
        OutputTransport::UdpMulticast,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_firm_with_transport(
    sim: &mut Simulator,
    sc: &ScenarioConfig,
    dir: &SymbolDirectory,
    exch_mac: eth::MacAddr,
    exch_ip: ipv4::Addr,
    send_igmp_joins: bool,
    accept_units: bool,
    transport: OutputTransport,
) -> Firm {
    let symbols: Vec<Symbol> = dir.instruments().iter().map(|i| i.symbol).collect();

    let mut gateways = Vec::new();
    let mut gateway_addrs = Vec::new();
    for g in 0..sc.gateways {
        let mut cfg = GatewayConfig::new(g as u32, exch_mac, exch_ip);
        cfg.service = sc.gateway_service;
        gateway_addrs.push((cfg.src_mac, cfg.src_ip, cfg.internal_ip));
        gateways.push(sim.add_node(format!("gw{g}"), Gateway::new(cfg)));
    }

    let mut strategies = Vec::new();
    let mut strategy_addrs = Vec::new();
    for s in 0..sc.strategies {
        let mut cfg = StrategyConfig::new(s as u32, symbols.clone());
        cfg.mcast_base = NORM_MCAST_BASE;
        cfg.decision_service = sc.decision_service;
        cfg.send_igmp_joins = send_igmp_joins;
        let mut subs = tn_feed::SubscriptionSet::unbounded();
        for p in sc.subscriptions_for(s) {
            subs.subscribe(p);
        }
        cfg.subscriptions = subs;
        let (gmac, _gip, ginternal) = gateway_addrs[s % gateway_addrs.len()];
        cfg.gw_mac = gmac;
        cfg.gw_ip = ginternal;
        strategy_addrs.push((cfg.src_mac, cfg.src_ip));
        let logic = MomentumLogic::new(sc.momentum_threshold);
        strategies.push(sim.add_node(format!("strat{s}"), Strategy::new(cfg, logic)));
    }

    let mut normalizers = Vec::new();
    let mut normalizer_addrs = Vec::new();
    for n in 0..sc.normalizers {
        let mut cfg = NormalizerConfig::new(1, n as u32);
        cfg.out_partitions = sc.internal_partitions;
        cfg.out_mcast_base = NORM_MCAST_BASE;
        cfg.per_message_service = sc.normalizer_service;
        cfg.preload = symbols.clone();
        cfg.transport = transport;
        if accept_units {
            let mine: HashSet<u8> = (0..sc.feed_units)
                .filter(|u| (*u as usize) % sc.normalizers == n)
                .map(|u| u as u8)
                .collect();
            cfg.accept_units = Some(mine);
        }
        normalizer_addrs.push((cfg.src_mac, cfg.src_ip));
        normalizers.push(sim.add_node(format!("norm{n}"), Normalizer::new(cfg)));
    }

    Firm {
        normalizers,
        strategies,
        gateways,
        gateway_addrs,
        strategy_addrs,
        normalizer_addrs,
    }
}

fn exchange_config(sc: &ScenarioConfig, dir: &SymbolDirectory) -> ExchangeConfig {
    let mut cfg = ExchangeConfig::new(1, dir.clone());
    cfg.scheme = PartitionScheme::ByHash {
        units: sc.feed_units,
    };
    cfg.mcast_base = FEED_MCAST_BASE;
    cfg.order_service = sc.exchange_service;
    cfg.background_rate = sc.background_rate;
    cfg.tick_interval = sc.tick_interval;
    cfg.seed = sc.seed;
    cfg
}

/// The units normalizer `n` owns under round-robin unit assignment.
fn units_for(sc: &ScenarioConfig, n: usize) -> Vec<u32> {
    (0..u32::from(sc.feed_units))
        .filter(|u| (*u as usize) % sc.normalizers == n)
        .collect()
}

/// Bidirectional attach of an already-built link model. The designs wire
/// concrete hardware models (`EtherLink`, fabric host links) that the
/// `LinkSpec`-based `connect_spec` cannot express, so they go in through
/// the raw `install_link` primitive, one instance per direction.
fn attach(
    sim: &mut Simulator,
    a: NodeId,
    a_port: PortId,
    b: NodeId,
    b_port: PortId,
    link: impl Link + Clone + 'static,
) {
    sim.install_link(a, a_port, b, b_port, Box::new(link.clone()));
    sim.install_link(b, b_port, a, a_port, Box::new(link));
}

/// Attach the exchange's feed port to the fabric, injecting the
/// scenario's feed fault (if any) on the publish direction only — order
/// entry and acks ride the clean reverse path. With no fault configured
/// this is exactly a plain bidirectional attach, so pre-fault digests
/// reproduce bit-for-bit.
fn connect_exchange_feed(
    sim: &mut Simulator,
    sc: &ScenarioConfig,
    exchange: NodeId,
    exch_port: PortId,
    fabric: NodeId,
    fabric_port: PortId,
    link: impl Link + Clone + 'static,
) {
    match &sc.feed_fault {
        Some(spec) => {
            sim.install_link(
                exchange,
                exch_port,
                fabric,
                fabric_port,
                Box::new(FaultLink::wrap(link.clone(), spec.clone())),
            );
            sim.install_link(fabric, fabric_port, exchange, exch_port, Box::new(link));
        }
        None => attach(sim, exchange, exch_port, fabric, fabric_port, link),
    }
}

/// Build the kernel a design runs on: the scenario's event scheduler,
/// then the telemetry it asked for. Called before any node or link
/// exists: `add_node` / `install_link` hand the metrics handle to
/// everything added later, including the fault wrappers
/// `connect_exchange_feed` installs. None of the knobs move the run —
/// schedulers pop in identical `(time, seq)` order, telemetry is purely
/// side-state, and arena pooling hands out logically empty buffers
/// either way, so the event schedule and trace digest are identical for
/// any [`tn_sim::SchedulerKind`] / [`tn_sim::ObsConfig`] /
/// `frame_pooling` setting (pinned by `tn-audit divergence`).
fn build_sim(sc: &ScenarioConfig) -> Simulator {
    let mut sim = Simulator::with_scheduler(sc.seed, sc.scheduler);
    if !sc.frame_pooling {
        sim.set_arena_max_free(0);
    }
    if sc.obs.provenance {
        sim.set_provenance(true);
    }
    if sc.obs.registry {
        sim.set_metrics(tn_sim::Metrics::enabled());
    }
    if sc.obs.flight {
        sim.set_flight_capacity(sc.obs.flight_capacity as usize);
    }
    if sc.obs.profile {
        sim.set_profile(true);
    }
    sim
}

fn start_everything(sim: &mut Simulator, firm: &Firm, exchange: NodeId, warmup: SimTime) {
    for &g in &firm.gateways {
        sim.schedule_timer(SimTime::ZERO, g, gateway::START);
    }
    for &s in &firm.strategies {
        sim.schedule_timer(SimTime::from_us(10), s, strategy::START);
    }
    sim.schedule_timer(warmup, exchange, tn_market::TICK);
}

fn collect_report(
    sim: Simulator,
    name: String,
    sc: &ScenarioConfig,
    firm: &Firm,
    exchange: NodeId,
    deadline: SimTime,
) -> DesignReport {
    collect_report_with_fairness(sim, name, sc, firm, exchange, deadline, &[])
}

/// [`collect_report`] plus a fairness section folded from the given
/// equalizer gates (one per subscriber). An empty slice skips the
/// section entirely — every non-cloud design passes through here with
/// no fairness machinery.
fn collect_report_with_fairness(
    mut sim: Simulator,
    name: String,
    sc: &ScenarioConfig,
    firm: &Firm,
    exchange: NodeId,
    deadline: SimTime,
    gates: &[NodeId],
) -> DesignReport {
    // Serial or sharded execution per the scenario's `shards` spec. The
    // sharded path reassembles into the same dense kernel afterwards, so
    // everything below — downcasts, registry snapshot, profile, digest —
    // reads identically. Plans are resolved against the topology here
    // because only now does the graph exist; a rejected manual spec is a
    // configuration bug, surfaced with the validator's explanation.
    let shard = match sc.resolve_shard_plan(&sim) {
        Err(e) => panic!("{e}"),
        Ok(None) => {
            sim.run_until(deadline);
            None
        }
        Ok(Some(plan)) => {
            let mut sharded =
                ShardedSimulator::split(sim, &plan).expect("plan validated against this topology");
            sharded.run_until(deadline);
            let stats = sharded.run_stats();
            sim = sharded.finish();
            Some(ShardReport {
                shards: stats.shards,
                windows: stats.windows,
                cross_shard_frames: stats.cross_shard_frames,
                events_per_shard: stats.events_per_shard,
                nodes_per_shard: stats.nodes_per_shard,
            })
        }
    };
    let mut feed_samples = Vec::new();
    let mut orders = 0;
    let mut acks = 0;
    let mut fills = 0;
    let mut evaluated = 0;
    let mut discarded = 0;
    for &s in &firm.strategies {
        let node = sim.node::<Strategy<MomentumLogic>>(s).expect("strategy");
        feed_samples.extend_from_slice(&node.decision_latency_ps);
        let st = node.stats();
        orders += st.orders_sent;
        acks += st.acks;
        fills += st.fills;
        evaluated += st.records_evaluated;
        discarded += st.records_discarded;
    }
    // Degraded-mode accounting from the normalizers' arbiters: gaps the
    // skip-forward policy declared, sequence numbers lost, duplicate
    // copies absorbed. (Retransmission fills come from the dedicated
    // recovery experiments, not the design topologies.)
    let mut recovery = RecoveryStats::none();
    for &n in &firm.normalizers {
        let node = sim.node::<Normalizer>(n).expect("normalizer");
        let arb = node.core().arbiter().stats();
        recovery.gaps_seen += arb.gap_events;
        recovery.records_lost += arb.gap_messages;
        recovery.duplicates_absorbed += arb.duplicates;
    }
    // Snapshot the registry (if the scenario enabled one) at the deadline
    // the run was driven to — reading it is pure observation.
    let telemetry = sim
        .metrics()
        .snapshot(deadline.as_ps())
        .map(|snap| crate::report::Telemetry::from_snapshot(&snap));
    // Same discipline for the kernel self-profile and the flight ring:
    // both are pure observation, read after the run has been driven.
    let profile = sim.profile();
    let flight_dump = if sim.flight().is_enabled() {
        Some(sim.dump_flight())
    } else {
        None
    };
    // Fairness accounting from the per-subscriber equalizer gates:
    // frame ids group the relay copies of one published event, so the
    // window measures last-minus-first delivery across subscribers.
    let fairness = if gates.is_empty() {
        None
    } else {
        let mut window = FairnessWindow::new(gates.len());
        let mut late = 0;
        let mut pads = Vec::new();
        for &g in gates {
            let eq = sim.node::<DelayEqualizer>(g).expect("equalizer gate");
            for &(id, at_ps) in eq.releases() {
                window.observe(id, at_ps);
            }
            late += eq.stats().late;
            pads.extend_from_slice(eq.pad_ps());
        }
        Some(FairnessStats::from_window(&window, late, &pads))
    };
    let exch = sim.node::<Exchange>(exchange).expect("exchange");
    let reaction_samples = exch.response_latency_ps().to_vec();
    let reaction = LatencyStats::from_samples(&reaction_samples);
    let feed_messages = exch.stats().feed_messages;
    let software = sc.software_path();
    let network_share = if reaction.count > 0 && reaction.median > SimTime::ZERO {
        1.0 - software.as_ps() as f64 / reaction.median.as_ps() as f64
    } else {
        0.0
    }
    .max(0.0);
    DesignReport {
        design: name,
        feed_latency: LatencyStats::from_samples(&feed_samples),
        reaction,
        feed_messages,
        records_evaluated: evaluated,
        records_discarded: discarded,
        orders_sent: orders,
        acks,
        fills,
        frames_dropped: sim.stats().frames_dropped,
        software_path: software,
        network_share,
        trace_digest: sim.trace.digest(),
        events_recorded: sim.trace.recorded(),
        recovery,
        telemetry,
        profile,
        flight_dump,
        reaction_samples,
        shard,
        fairness,
    }
}

fn igmp_join_frame(mac: eth::MacAddr, ip: ipv4::Addr, group_idx: u32) -> Vec<u8> {
    tn_switch::commodity::igmp_frame(
        igmp::MessageType::Report,
        mac,
        ip,
        ipv4::Addr::multicast_group(group_idx),
    )
}

// ---------------------------------------------------------------------
// Design 1: traditional switches
// ---------------------------------------------------------------------

/// §4.1: commodity leaf-and-spine with functions grouped by rack.
#[derive(Debug, Clone, Default)]
pub struct TraditionalSwitches {
    /// Base fabric parameters; rack count is auto-sized to the scenario.
    pub fabric: LeafSpineConfig,
}

impl TradingNetworkDesign for TraditionalSwitches {
    fn name(&self) -> String {
        "design-1-traditional-switches".into()
    }

    fn run(&self, sc: &ScenarioConfig) -> DesignReport {
        let mut sim = build_sim(sc);
        let dir = SymbolDirectory::synthetic(sc.symbols);
        // Auto-size racks: every host consumes two ports (Fig 1(d):
        // separate NICs for market data and orders), grouped by function.
        let hpr = self.fabric.hosts_per_rack;
        let racks_for = |hosts: usize| (2 * hosts).div_ceil(hpr);
        let norm_racks = racks_for(sc.normalizers);
        let strat_racks = racks_for(sc.strategies);
        let gw_racks = racks_for(sc.gateways);
        let mut fabric_cfg = self.fabric.clone();
        fabric_cfg.racks = norm_racks + strat_racks + gw_racks;
        let mut fabric = LeafSpine::build(&mut sim, fabric_cfg);

        let firm = build_firm(
            &mut sim,
            sc,
            &dir,
            eth::MacAddr::host(0xEE01),
            ipv4::Addr::new(10, 200, 1, 1),
            true,
            false,
        );

        // Exchange on the dedicated ToR.
        let exch_cfg = exchange_config(sc, &dir);
        let (exch_mac, exch_ip) = (exch_cfg.src_mac, exch_cfg.src_ip);
        let exchange = sim.add_node("exchange", Exchange::new(exch_cfg));
        let (tor, tor_port) = fabric.exchange_attach[0];
        connect_exchange_feed(
            &mut sim,
            sc,
            exchange,
            PortId(0),
            tor,
            tor_port,
            fabric.host_link(),
        );
        fabric.install_host_routes(&mut sim, tor, tor_port, exch_ip);
        debug_assert_eq!(exch_mac, eth::MacAddr::host(0xEE01));

        // Normalizers in the first racks: FEED_A + OUT ports.
        for (n, &node) in firm.normalizers.iter().enumerate() {
            let rack = (2 * n) / hpr;
            let (leaf_f, port_f) = fabric.take_host_port_in_rack(rack);
            let (leaf_o, port_o) = fabric.take_host_port_in_rack(rack);
            attach(
                &mut sim,
                node,
                normalizer::FEED_A,
                leaf_f,
                port_f,
                fabric.host_link(),
            );
            attach(
                &mut sim,
                node,
                normalizer::OUT,
                leaf_o,
                port_o,
                fabric.host_link(),
            );
            // Join this normalizer's feed units.
            let (mac, ip) = firm.normalizer_addrs[n];
            for u in units_for(sc, n) {
                let join = igmp_join_frame(mac, ip, FEED_MCAST_BASE + u);
                let f = sim.frame().copy_from(&join).build();
                sim.inject_frame(SimTime::ZERO, leaf_f, port_f, f);
            }
        }

        // Strategies in the middle racks.
        for (s, &node) in firm.strategies.iter().enumerate() {
            let rack = norm_racks + (2 * s) / hpr;
            let (leaf_f, port_f) = fabric.take_host_port_in_rack(rack);
            let (leaf_o, port_o) = fabric.take_host_port_in_rack(rack);
            attach(
                &mut sim,
                node,
                strategy::FEED,
                leaf_f,
                port_f,
                fabric.host_link(),
            );
            attach(
                &mut sim,
                node,
                strategy::ORDERS,
                leaf_o,
                port_o,
                fabric.host_link(),
            );
            let (_mac, ip) = firm.strategy_addrs[s];
            fabric.install_host_routes(&mut sim, leaf_o, port_o, ip);
        }

        // Gateways in the last racks.
        for (g, &node) in firm.gateways.iter().enumerate() {
            let rack = norm_racks + strat_racks + (2 * g) / hpr;
            let (leaf_i, port_i) = fabric.take_host_port_in_rack(rack);
            let (leaf_x, port_x) = fabric.take_host_port_in_rack(rack);
            attach(
                &mut sim,
                node,
                gateway::INTERNAL,
                leaf_i,
                port_i,
                fabric.host_link(),
            );
            attach(
                &mut sim,
                node,
                gateway::EXCHANGE,
                leaf_x,
                port_x,
                fabric.host_link(),
            );
            let (_mac, exch_side_ip, internal_ip) = firm.gateway_addrs[g];
            fabric.install_host_routes(&mut sim, leaf_i, port_i, internal_ip);
            fabric.install_host_routes(&mut sim, leaf_x, port_x, exch_side_ip);
        }

        start_everything(&mut sim, &firm, exchange, sc.warmup);
        collect_report(
            sim,
            self.name(),
            sc,
            &firm,
            exchange,
            sc.warmup + sc.duration,
        )
    }
}

// ---------------------------------------------------------------------
// Design 2: the cloud
// ---------------------------------------------------------------------

/// §4.2: a latency-equalized provider fabric, exchange on-prem behind a
/// WAN circuit.
#[derive(Debug, Clone, Default)]
pub struct CloudDesign {
    /// Provider fabric parameters.
    pub cloud: CloudConfig,
}

impl TradingNetworkDesign for CloudDesign {
    fn name(&self) -> String {
        "design-2-cloud".into()
    }

    fn run(&self, sc: &ScenarioConfig) -> DesignReport {
        let mut sim = build_sim(sc);
        let dir = SymbolDirectory::synthetic(sc.symbols);
        let mut cloud_cfg = self.cloud.clone();
        cloud_cfg.tenant_ports = 2 * (sc.normalizers + sc.strategies + sc.gateways) + 4;
        let mut cloud = CloudFabric::build(&mut sim, cloud_cfg);
        let fair = cloud.fairness().enabled();

        // With the fairness machinery on, the firm's internal feed rides
        // the software overlay instead of provider multicast, so
        // strategies must not send IGMP joins into a path that cannot
        // parse them.
        let firm = build_firm(
            &mut sim,
            sc,
            &dir,
            eth::MacAddr::host(0xEE01),
            ipv4::Addr::new(10, 200, 1, 1),
            !fair,
            false,
        );
        let overlay = if fair {
            Some(cloud.build_overlay_feed(&mut sim, sc.strategies))
        } else {
            None
        };

        let exch_cfg = exchange_config(sc, &dir);
        let exch_ip = exch_cfg.src_ip;
        let exchange = sim.add_node("exchange", Exchange::new(exch_cfg));
        if fair {
            // Splice the hold-and-release sequencer into the order
            // direction only: fabric → sequencer → exchange. The publish
            // direction keeps the scenario's feed-fault discipline of
            // `connect_exchange_feed` exactly.
            let seqr = cloud.build_sequencer(&mut sim);
            let wan = cloud.external_link();
            let publish: Box<dyn Link> = match &sc.feed_fault {
                Some(spec) => Box::new(FaultLink::wrap(wan.clone(), spec.clone())),
                None => Box::new(wan.clone()),
            };
            sim.install_link(
                exchange,
                PortId(0),
                cloud.fabric,
                cloud.external_port,
                publish,
            );
            sim.install_link(
                cloud.fabric,
                cloud.external_port,
                seqr,
                sequencer::IN,
                Box::new(wan),
            );
            sim.install_link(
                seqr,
                sequencer::OUT,
                exchange,
                PortId(0),
                Box::new(IdealLink::new(SimTime::ZERO)),
            );
        } else {
            connect_exchange_feed(
                &mut sim,
                sc,
                exchange,
                PortId(0),
                cloud.fabric,
                cloud.external_port,
                cloud.external_link(),
            );
        }
        cloud.install_route(&mut sim, exch_ip, cloud.external_port);

        for (n, &node) in firm.normalizers.iter().enumerate() {
            let pf = cloud.take_tenant_port();
            let po = cloud.take_tenant_port();
            attach(
                &mut sim,
                node,
                normalizer::FEED_A,
                cloud.fabric,
                pf,
                cloud.tenant_link(),
            );
            match &overlay {
                // Publisher hop: one jittery VM link into the overlay
                // root. Edge indices above 2^41 stay disjoint from both
                // tree edges and the gate leaf hops.
                Some(ov) => {
                    let link = cloud.overlay_link((1u64 << 41) | n as u64);
                    sim.install_link(node, normalizer::OUT, ov.root, cloud.overlay_in(), link);
                }
                None => attach(
                    &mut sim,
                    node,
                    normalizer::OUT,
                    cloud.fabric,
                    po,
                    cloud.tenant_link(),
                ),
            }
            let (mac, ip) = firm.normalizer_addrs[n];
            for u in units_for(sc, n) {
                let join = igmp_join_frame(mac, ip, FEED_MCAST_BASE + u);
                let f = sim.frame().copy_from(&join).build();
                sim.inject_frame(SimTime::ZERO, cloud.fabric, pf, f);
            }
        }
        for (s, &node) in firm.strategies.iter().enumerate() {
            let pf = cloud.take_tenant_port();
            let po = cloud.take_tenant_port();
            match &overlay {
                // Subscriber side: the equalizer gate releases straight
                // into the strategy's feed NIC.
                Some(ov) => sim.install_link(
                    ov.gates[s],
                    equalizer::OUT,
                    node,
                    strategy::FEED,
                    Box::new(IdealLink::new(SimTime::ZERO)),
                ),
                None => attach(
                    &mut sim,
                    node,
                    strategy::FEED,
                    cloud.fabric,
                    pf,
                    cloud.tenant_link(),
                ),
            }
            attach(
                &mut sim,
                node,
                strategy::ORDERS,
                cloud.fabric,
                po,
                cloud.tenant_link(),
            );
            cloud.install_route(&mut sim, firm.strategy_addrs[s].1, po);
        }
        for (g, &node) in firm.gateways.iter().enumerate() {
            let pi = cloud.take_tenant_port();
            let px = cloud.take_tenant_port();
            attach(
                &mut sim,
                node,
                gateway::INTERNAL,
                cloud.fabric,
                pi,
                cloud.tenant_link(),
            );
            attach(
                &mut sim,
                node,
                gateway::EXCHANGE,
                cloud.fabric,
                px,
                cloud.tenant_link(),
            );
            let (_mac, exch_side_ip, internal_ip) = firm.gateway_addrs[g];
            cloud.install_route(&mut sim, internal_ip, pi);
            cloud.install_route(&mut sim, exch_side_ip, px);
        }

        start_everything(&mut sim, &firm, exchange, sc.warmup);
        let gates = overlay.map(|ov| ov.gates).unwrap_or_default();
        collect_report_with_fairness(
            sim,
            self.name(),
            sc,
            &firm,
            exchange,
            sc.warmup + sc.duration,
            &gates,
        )
    }
}

// ---------------------------------------------------------------------
// Design 3: Layer-1 switches
// ---------------------------------------------------------------------

/// §4.3: four circuit networks on L1 switches.
#[derive(Debug, Clone, Default)]
pub struct LayerOneSwitches {
    /// How many normalizer feeds each strategy's NIC can take (merged).
    /// `None` subscribes every strategy to every normalizer.
    pub subscription_cap: Option<usize>,
    /// Frame the internal feed with the §5 custom transport instead of
    /// Eth+IP+UDP — only circuit fabrics permit this.
    pub custom_transport: bool,
}

impl TradingNetworkDesign for LayerOneSwitches {
    fn name(&self) -> String {
        "design-3-layer-one".into()
    }

    fn run(&self, sc: &ScenarioConfig) -> DesignReport {
        let mut sim = build_sim(sc);
        let dir = SymbolDirectory::synthetic(sc.symbols);
        let l1_cfg = L1FabricConfig {
            normalizers: sc.normalizers,
            strategies: sc.strategies,
            gateways: sc.gateways,
            subscription_cap: self.subscription_cap.unwrap_or(sc.normalizers),
            ..L1FabricConfig::default()
        };
        let fabric = L1TradingFabric::build(&mut sim, &l1_cfg);

        let transport = if self.custom_transport {
            OutputTransport::L1Transport
        } else {
            OutputTransport::UdpMulticast
        };
        let firm = build_firm_with_transport(
            &mut sim,
            sc,
            &dir,
            eth::MacAddr::host(0xEE01),
            ipv4::Addr::new(10, 200, 1, 1),
            false, // no IGMP on circuits
            true,  // normalizers host-filter their units
            transport,
        );

        let link = || EtherLink::ten_gig(SimTime::from_ns(25));

        let exch_cfg = exchange_config(sc, &dir);
        let exchange = sim.add_node("exchange", Exchange::new(exch_cfg));
        // Feed out on port 0 into network 1; orders in/out on port 1 via
        // network 4.
        connect_exchange_feed(
            &mut sim,
            sc,
            exchange,
            PortId(0),
            fabric.feed_net.switch,
            fabric.feed_net.inputs[0],
            link(),
        );
        attach(
            &mut sim,
            exchange,
            PortId(1),
            fabric.entry_net.switch,
            fabric.entry_net.outputs[0],
            link(),
        );

        for (n, &node) in firm.normalizers.iter().enumerate() {
            attach(
                &mut sim,
                node,
                normalizer::FEED_A,
                fabric.feed_net.switch,
                fabric.feed_net.outputs[n],
                link(),
            );
            attach(
                &mut sim,
                node,
                normalizer::OUT,
                fabric.dist_net.switch,
                fabric.dist_net.inputs[n],
                link(),
            );
        }
        for (s, &node) in firm.strategies.iter().enumerate() {
            attach(
                &mut sim,
                node,
                strategy::FEED,
                fabric.dist_merge_node(),
                fabric.dist_net.outputs[s],
                link(),
            );
            attach(
                &mut sim,
                node,
                strategy::ORDERS,
                fabric.order_net.switch,
                fabric.order_net.inputs[s],
                link(),
            );
        }
        for (g, &node) in firm.gateways.iter().enumerate() {
            attach(
                &mut sim,
                node,
                gateway::INTERNAL,
                fabric.order_net.switch,
                fabric.order_net.outputs[g],
                link(),
            );
            attach(
                &mut sim,
                node,
                gateway::EXCHANGE,
                fabric.entry_net.switch,
                fabric.entry_net.inputs[g],
                link(),
            );
        }

        start_everything(&mut sim, &firm, exchange, sc.warmup);
        collect_report(
            sim,
            self.name(),
            sc,
            &firm,
            exchange,
            sc.warmup + sc.duration,
        )
    }
}

// ---------------------------------------------------------------------
// §5 "Hardware": FPGA-augmented Layer-1 hybrid
// ---------------------------------------------------------------------

/// The §5 future-work design point: a single FPGA-augmented L1 switch
/// fabric — "100-nanosecond latency and standard IP forwarding and
/// multicast" — with IGMP-learned groups bounded by a small table.
/// Merging is safe because the fabric filters: strategies receive only
/// their subscribed partitions, at circuit-class latency.
#[derive(Debug, Clone)]
pub struct FpgaHybrid {
    /// Device parameters (latency, table size).
    pub fpga: FpgaConfig,
}

impl Default for FpgaHybrid {
    fn default() -> FpgaHybrid {
        FpgaHybrid {
            fpga: FpgaConfig {
                mcast_table_size: 1024,
                ..FpgaConfig::default()
            },
        }
    }
}

impl TradingNetworkDesign for FpgaHybrid {
    fn name(&self) -> String {
        "design-3b-fpga-hybrid".into()
    }

    fn run(&self, sc: &ScenarioConfig) -> DesignReport {
        let mut sim = build_sim(sc);
        let dir = SymbolDirectory::synthetic(sc.symbols);
        let fabric = sim.add_node("fpga-fabric", FpgaL1Switch::new(self.fpga.clone()));
        let firm = build_firm(
            &mut sim,
            sc,
            &dir,
            eth::MacAddr::host(0xEE01),
            ipv4::Addr::new(10, 200, 1, 1),
            true,  // the FPGA learns groups from IGMP
            false, // normalizers get only their joined units
        );
        let link = || EtherLink::ten_gig(SimTime::from_ns(25));
        let mut next_port = 0u16;
        let mut take = || {
            let p = PortId(next_port);
            next_port += 1;
            p
        };

        let exch_cfg = exchange_config(sc, &dir);
        let exch_ip = exch_cfg.src_ip;
        let exchange = sim.add_node("exchange", Exchange::new(exch_cfg));
        let xp = take();
        connect_exchange_feed(&mut sim, sc, exchange, PortId(0), fabric, xp, link());
        sim.node_mut::<FpgaL1Switch>(fabric)
            .unwrap()
            .add_route(exch_ip, xp);

        for (n, &node) in firm.normalizers.iter().enumerate() {
            let pf = take();
            let po = take();
            attach(&mut sim, node, normalizer::FEED_A, fabric, pf, link());
            attach(&mut sim, node, normalizer::OUT, fabric, po, link());
            let (mac, ip) = firm.normalizer_addrs[n];
            for u in units_for(sc, n) {
                let join = igmp_join_frame(mac, ip, FEED_MCAST_BASE + u);
                let f = sim.frame().copy_from(&join).build();
                sim.inject_frame(SimTime::ZERO, fabric, pf, f);
            }
        }
        for (s, &node) in firm.strategies.iter().enumerate() {
            let pf = take();
            let po = take();
            attach(&mut sim, node, strategy::FEED, fabric, pf, link());
            attach(&mut sim, node, strategy::ORDERS, fabric, po, link());
            let ip = firm.strategy_addrs[s].1;
            sim.node_mut::<FpgaL1Switch>(fabric)
                .unwrap()
                .add_route(ip, po);
        }
        for (g, &node) in firm.gateways.iter().enumerate() {
            let pi = take();
            let px = take();
            attach(&mut sim, node, gateway::INTERNAL, fabric, pi, link());
            attach(&mut sim, node, gateway::EXCHANGE, fabric, px, link());
            let (_mac, exch_side_ip, internal_ip) = firm.gateway_addrs[g];
            let f = sim.node_mut::<FpgaL1Switch>(fabric).unwrap();
            f.add_route(internal_ip, pi);
            f.add_route(exch_side_ip, px);
        }

        start_everything(&mut sim, &firm, exchange, sc.warmup);
        collect_report(
            sim,
            self.name(),
            sc,
            &firm,
            exchange,
            sc.warmup + sc.duration,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_topo::CloudFairnessSpec;

    #[test]
    fn fpga_hybrid_beats_design1_with_multicast_semantics() {
        let sc = ScenarioConfig::small(7);
        let d1 = TraditionalSwitches::default().run(&sc);
        let d3b = FpgaHybrid::default().run(&sc);
        assert!(d3b.orders_sent > 0, "{}", d3b.summary());
        // 100 ns hops instead of 500 ns, with the same group filtering:
        // nothing discarded at hosts, and lower reaction latency.
        assert_eq!(d3b.records_discarded, 0, "{}", d3b.summary());
        assert!(
            d3b.reaction.min < d1.reaction.min,
            "d3b {} !< d1 {}",
            d3b.reaction.min,
            d1.reaction.min
        );
    }

    #[test]
    fn alternative_schedulers_leave_digest_untouched() {
        let heap = ScenarioConfig::small(7);
        let r_heap = TraditionalSwitches::default().run(&heap);
        for kind in tn_sim::SchedulerKind::ALL {
            let mut other = ScenarioConfig::small(7);
            other.scheduler = kind;
            let r_other = TraditionalSwitches::default().run(&other);
            // Scheduler choice is wall-clock-only: same pops, same digest.
            assert_eq!(r_heap.trace_digest, r_other.trace_digest, "{}", kind.name());
            assert_eq!(r_heap.events_recorded, r_other.events_recorded);
            assert_eq!(r_heap.orders_sent, r_other.orders_sent);
        }
    }

    #[test]
    fn full_telemetry_leaves_digest_untouched_and_reconciles() {
        let off = ScenarioConfig::small(7);
        let mut on = ScenarioConfig::small(7);
        on.obs = tn_sim::ObsConfig::full();
        let r_off = TraditionalSwitches::default().run(&off);
        let r_on = TraditionalSwitches::default().run(&on);
        // The tentpole invariant: telemetry is pure observation.
        assert_eq!(r_off.trace_digest, r_on.trace_digest);
        assert_eq!(r_off.events_recorded, r_on.events_recorded);
        assert!(r_off.telemetry.is_none());
        let t = r_on.telemetry.clone().expect("registry enabled");
        // Every delivered frame passed the kernel's deliver counter, and
        // the hop decomposition saw real link time.
        assert!(t.counter_total("kernel", "deliver") > 0, "{t:?}");
        assert!(t.counter_total("switch", "frames") > 0, "{t:?}");
        assert!(!t.hops.is_empty() && !t.hottest_nodes.is_empty());
        let share_sum: f64 = t.hops.iter().map(|h| h.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        // And the JSON report carries the section.
        assert!(r_on.to_json().contains("\"telemetry\":{"));
    }

    #[test]
    fn flight_and_profile_leave_digest_untouched_and_report() {
        let off = ScenarioConfig::small(7);
        let mut on = ScenarioConfig::small(7);
        on.obs.flight = true;
        on.obs.flight_capacity = 512;
        on.obs.profile = true;
        let r_off = TraditionalSwitches::default().run(&off);
        let r_on = TraditionalSwitches::default().run(&on);
        // Recorder + profiler are pure observation: same digest, same run.
        assert_eq!(r_off.trace_digest, r_on.trace_digest);
        assert_eq!(r_off.events_recorded, r_on.events_recorded);
        assert!(r_off.profile.is_none() && r_off.flight_dump.is_none());
        let p = r_on.profile.as_ref().expect("profiler enabled");
        // The profile reconciles with the run's own counters.
        assert!(p.frames > 0 && p.schedules >= p.frames, "{p:?}");
        assert!(!p.per_node.is_empty() && p.max_queue_depth > 0);
        assert!(p.arena_reuse_ratio().is_some());
        let dump = r_on.flight_dump.as_ref().expect("flight enabled");
        assert!(dump.starts_with("tn-flight dump @ "), "{dump}");
        assert!(dump.contains("dispatch"), "{dump}");
        // And both land in the human summary + JSON.
        assert!(r_on.summary().contains("kernel profile @ "));
        assert!(r_on.to_json().contains("\"kernel_profile\":{"));
    }

    #[test]
    fn profile_reports_on_faulted_runs_too() {
        let mut sc = ScenarioConfig::small(11);
        sc.feed_fault = Some(tn_fault::FaultSpec::new(9).with_iid_loss(0.05));
        sc.obs.flight = true;
        sc.obs.flight_capacity = 256;
        sc.obs.profile = true;
        let r = TraditionalSwitches::default().run(&sc);
        let p = r.profile.as_ref().expect("profiler enabled");
        assert!(p.dispatches() > 0, "{}", r.summary());
        assert!(r.summary().contains("kernel profile @ "), "{}", r.summary());
        // A lossy feed gives the recovery machinery work; the faulted run
        // still produces a full dump for post-mortems.
        assert!(r.flight_dump.is_some());
    }

    #[test]
    fn design1_runs_and_reacts() {
        let sc = ScenarioConfig::small(7);
        let report = TraditionalSwitches::default().run(&sc);
        assert!(report.feed_messages > 100, "{}", report.summary());
        assert!(report.records_evaluated > 0, "{}", report.summary());
        assert!(report.orders_sent > 0, "{}", report.summary());
        assert!(report.acks > 0, "{}", report.summary());
        assert!(report.reaction.count > 0, "{}", report.summary());
        // Reaction includes 12 switch hops + 3 software hops; must exceed
        // the raw software budget.
        assert!(report.reaction.median > sc.software_path());
    }

    #[test]
    fn design3_custom_transport_works_and_saves_bytes() {
        let sc = ScenarioConfig::small(7);
        let udp = LayerOneSwitches::default().run(&sc);
        let l1t = LayerOneSwitches {
            custom_transport: true,
            ..Default::default()
        }
        .run(&sc);
        // Identical event flow; the transport never changes what trades.
        assert_eq!(udp.feed_messages, l1t.feed_messages);
        assert!(l1t.orders_sent > 0, "{}", l1t.summary());
        assert_eq!(udp.orders_sent, l1t.orders_sent);
        // 34 fewer header bytes per internal-feed packet = ~27 ns less
        // serialization per hop; the uncongested path must not get slower.
        assert!(
            l1t.reaction.min <= udp.reaction.min,
            "l1t {} !<= udp {}",
            l1t.reaction.min,
            udp.reaction.min
        );
    }

    #[test]
    fn design3_is_faster_than_design1() {
        let sc = ScenarioConfig::small(7);
        let d1 = TraditionalSwitches::default().run(&sc);
        let d3 = LayerOneSwitches::default().run(&sc);
        assert!(d3.reaction.count > 0 && d1.reaction.count > 0);
        assert!(
            d3.reaction.median < d1.reaction.median,
            "d1 {} vs d3 {}",
            d1.reaction.median,
            d3.reaction.median
        );
        // The *network* component should differ by far more than the
        // totals (software dominates both).
        assert!(d3.network_time() < d1.network_time());
    }

    #[test]
    fn design2_pays_the_equalization_constant() {
        let mut sc = ScenarioConfig::small(7);
        sc.duration = SimTime::from_ms(30);
        let d2 = CloudDesign::default().run(&sc);
        assert!(d2.reaction.count > 0, "{}", d2.summary());
        // Several equalized hops plus the WAN dwarf everything.
        assert!(d2.reaction.median > SimTime::from_ms(1), "{}", d2.summary());
        // The constant-based baseline has no fairness machinery to report.
        assert!(d2.fairness.is_none());
    }

    #[test]
    fn design2_fairness_mechanisms_equalize_and_report() {
        let mut sc = ScenarioConfig::small(7);
        sc.duration = SimTime::from_ms(30);
        let fair = CloudDesign {
            cloud: CloudConfig {
                fairness: CloudFairnessSpec::demo(),
                ..CloudConfig::default()
            },
        };
        let r = fair.run(&sc);
        assert!(r.orders_sent > 0, "{}", r.summary());
        assert!(r.reaction.count > 0, "{}", r.summary());
        let fa = r.fairness.clone().expect("fairness section when enabled");
        assert_eq!(fa.subscribers, sc.strategies as u64);
        assert!(fa.events_measured > 100, "{}", r.summary());
        // The demo ceiling (120 µs) covers the worst 3-hop overlay path
        // plus jitter, so no delivery is late and the spread across all
        // subscribers collapses to the residual pacing error.
        assert_eq!(fa.late_deliveries, 0, "{}", r.summary());
        assert!(fa.spread_max <= SimTime::from_ns(100), "{}", r.summary());
        // …and the fairness is paid for in padding: deliveries idle in
        // the equalizer for tens of microseconds.
        assert!(fa.pad_median > SimTime::from_us(20), "{}", r.summary());
        // Deterministic: same scenario, same digest.
        let r2 = fair.run(&sc);
        assert_eq!(r.trace_digest, r2.trace_digest);
        assert_eq!(r.fairness, r2.fairness);
    }
}
