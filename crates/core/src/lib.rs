//! # tn-core — the trading-network design space
//!
//! The paper's contribution, as an executable API: a common scenario (an
//! exchange, a firm's normalizer/strategy/gateway tier, a workload) that
//! runs unchanged over each of the three §4 network designs, producing
//! comparable latency/loss/capacity reports.
//!
//! ```no_run
//! use tn_core::{ScenarioConfig, TradingNetworkDesign};
//! use tn_core::design::{LayerOneSwitches, TraditionalSwitches};
//!
//! let scenario = ScenarioConfig::small(42);
//! let d1 = TraditionalSwitches::default().run(&scenario);
//! let d3 = LayerOneSwitches::default().run(&scenario);
//! println!("{}", d1.summary());
//! println!("{}", d3.summary());
//! assert!(d3.reaction.median < d1.reaction.median);
//! ```

pub mod design;
pub mod report;
pub mod scenario;

pub use design::{
    CloudDesign, FpgaHybrid, LayerOneSwitches, TradingNetworkDesign, TraditionalSwitches,
};
pub use report::{
    DesignReport, HopKindStat, LatencyStats, NodeHopStat, RecoveryStats, ShardReport, Telemetry,
    SCHEMA_V1,
};
pub use scenario::{ConfigError, ScenarioBuilder, ScenarioConfig, ShardSpec};
