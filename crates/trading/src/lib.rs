//! # tn-trading — the trading-firm application tier
//!
//! The three functions a firm decomposes into (§2), each as a simulation
//! node, plus the supporting analyses:
//!
//! * [`normalizer`] — consumes an exchange's native feed (A/B arbitrated),
//!   produces the firm's normalized internal feed, re-partitioned.
//! * [`strategy`] — subscribes to normalized partitions, runs pluggable
//!   decision logic, and emits orders toward a gateway.
//! * [`gateway`] — translates internal orders into the exchange's
//!   order-entry protocol over the firm's sessions, and relays replies.
//! * [`filter`] — the §3 filtering-placement analysis: in-process versus
//!   dedicated-core versus middlebox, as a core-count model.
//! * [`risk`] — firm-wide position tracking and the §4.2 regulatory
//!   checks (locked/crossed market detection across exchanges).

pub mod filter;
pub mod gateway;
pub mod normalizer;
pub mod risk;
pub mod strategy;

pub use filter::{FilterPlacement, PlacementCost};
pub use gateway::{Gateway, GatewayConfig, GatewayStats};
pub use normalizer::{Normalizer, NormalizerConfig, NormalizerNodeStats, OutputTransport};
pub use risk::{ComplianceMonitor, MarketSide, PositionTracker};
pub use strategy::{
    CrossMarketArb, MarketMakerLogic, MomentumLogic, OrderIntent, Strategy, StrategyConfig,
    StrategyLogic, StrategyStats,
};
