//! Strategy hosts.
//!
//! A strategy server (§2) subscribes to normalized-feed partitions,
//! reacts to records with custom decision logic, and sends orders to a
//! gateway over a long-lived internal session. Ports:
//!
//! * [`FEED`] — normalized multicast in; IGMP joins go out this port.
//! * [`ORDERS`] — internal order session toward the gateway (replies
//!   arrive here too).
//!
//! Service-time model: every record that reaches the host costs CPU —
//! `discard_service` for records in unsubscribed partitions (the host-side
//! filtering §3 analyses) and `decision_service` for records the strategy
//! actually evaluates (the paper's §4 analysis assumes ~2 µs per
//! function).

use std::collections::HashMap;

use tn_feed::SubscriptionSet;
use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};
use tn_wire::pitch::Side;
use tn_wire::{boe, eth, ipv4, l1t, norm, stack, tcp, Symbol};

use crate::gateway;

/// Normalized feed port.
pub const FEED: PortId = PortId(0);
/// Order session port.
pub const ORDERS: PortId = PortId(1);

/// Timer token that kicks off subscriptions/login; schedule it once from
/// the scenario.
pub const START: TimerToken = TimerToken(50);

const SVC_TOKEN: u64 = 1;

/// What a strategy wants to do in response to a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderIntent {
    /// Interned symbol id (firm dictionary).
    pub symbol_id: u32,
    /// Side to send.
    pub side: Side,
    /// Quantity.
    pub qty: u32,
    /// Limit price (1e-4 dollars).
    pub price: u64,
}

/// Pluggable decision logic. `Send` is a supertrait because strategies
/// are simulator nodes, and sharded runs move nodes onto per-shard
/// threads (see [`tn_sim::Node`]).
pub trait StrategyLogic: Send {
    /// Evaluate one normalized record; optionally produce an order.
    fn on_record(&mut self, record: &norm::Record) -> Option<OrderIntent>;
}

/// Reacts to upward BBO momentum on a symbol by lifting the offer (and
/// vice versa). Deliberately simple: it exists to generate plausible,
/// deterministic order flow whose *latency* is the object of study.
#[derive(Debug, Default)]
pub struct MomentumLogic {
    last_bid: HashMap<u32, i64>,
    /// Minimum favorable move before firing (1e-4 dollars).
    pub threshold: i64,
}

impl MomentumLogic {
    /// Momentum logic with a price-move threshold.
    pub fn new(threshold: i64) -> MomentumLogic {
        MomentumLogic {
            last_bid: HashMap::new(),
            threshold,
        }
    }
}

impl StrategyLogic for MomentumLogic {
    fn on_record(&mut self, record: &norm::Record) -> Option<OrderIntent> {
        if record.kind != norm::Kind::Bbo || record.side != b'B' || record.price == 0 {
            return None;
        }
        let prev = self.last_bid.insert(record.symbol_id, record.price);
        match prev {
            Some(p) if record.price >= p + self.threshold => Some(OrderIntent {
                symbol_id: record.symbol_id,
                side: Side::Buy,
                qty: 100,
                price: record.price as u64 + 10_000, // cross to take liquidity
            }),
            _ => None,
        }
    }
}

/// Cross-market arbitrage: tracks BBO per (exchange, symbol) and fires
/// when one exchange's bid crosses another's ask — the aggregation across
/// remote exchanges that §4.2 argues cloud designs struggle with.
#[derive(Debug, Default)]
pub struct CrossMarketArb {
    best_bid: HashMap<u32, (u8, i64)>,
    best_ask: HashMap<u32, (u8, i64)>,
    /// Arbitrage opportunities detected (crossed books observed).
    pub opportunities: u64,
}

impl StrategyLogic for CrossMarketArb {
    fn on_record(&mut self, record: &norm::Record) -> Option<OrderIntent> {
        if record.kind != norm::Kind::Bbo || record.price == 0 {
            return None;
        }
        match record.side {
            b'B' => {
                let e = self
                    .best_bid
                    .entry(record.symbol_id)
                    .or_insert((record.exchange, 0));
                if record.price >= e.1 || e.0 == record.exchange {
                    *e = (record.exchange, record.price);
                }
            }
            b'S' => {
                let e = self
                    .best_ask
                    .entry(record.symbol_id)
                    .or_insert((record.exchange, i64::MAX));
                if record.price <= e.1 || e.0 == record.exchange {
                    *e = (record.exchange, record.price);
                }
            }
            _ => return None,
        }
        let (bid_ex, bid) = *self.best_bid.get(&record.symbol_id)?;
        let (ask_ex, ask) = *self.best_ask.get(&record.symbol_id)?;
        if bid_ex != ask_ex && bid > ask && ask > 0 {
            self.opportunities += 1;
            // Buy the cheap side.
            return Some(OrderIntent {
                symbol_id: record.symbol_id,
                side: Side::Buy,
                qty: 100,
                price: ask as u64,
            });
        }
        None
    }
}

/// Market making: quote both sides around each symbol's BBO, one tick
/// inside the spread when it is wide enough, running the §4.2 pre-trade
/// compliance check so a quote never locks or crosses another exchange's
/// advertised price.
#[derive(Debug, Default)]
pub struct MarketMakerLogic {
    compliance: crate::risk::ComplianceMonitor,
    /// Last side quoted per symbol (alternate bid/ask).
    last_quoted: HashMap<u32, Side>,
    /// Quotes suppressed by the lock/cross check.
    pub suppressed: u64,
    /// Minimum spread (1e-4 dollars) before quoting inside.
    pub min_spread: i64,
}

impl MarketMakerLogic {
    /// Market maker quoting inside spreads wider than `min_spread`.
    pub fn new(min_spread: i64) -> MarketMakerLogic {
        MarketMakerLogic {
            min_spread,
            ..MarketMakerLogic::default()
        }
    }
}

impl StrategyLogic for MarketMakerLogic {
    fn on_record(&mut self, record: &norm::Record) -> Option<OrderIntent> {
        self.compliance.on_record(record);
        if record.kind != norm::Kind::Bbo {
            return None;
        }
        use crate::risk::MarketSide;
        let bid = self
            .compliance
            .nbbo_side(record.symbol_id, MarketSide::Bid)?
            .1;
        let ask = self
            .compliance
            .nbbo_side(record.symbol_id, MarketSide::Ask)?
            .1;
        if ask - bid < self.min_spread {
            return None;
        }
        // Alternate sides so inventory stays near flat.
        let side = match self.last_quoted.get(&record.symbol_id) {
            Some(Side::Buy) => Side::Sell,
            _ => Side::Buy,
        };
        // Improve aggressively (two ticks) to win queue position; the
        // compliance check below is what keeps aggression legal.
        let (market_side, price) = match side {
            Side::Buy => (MarketSide::Bid, bid + 200),
            Side::Sell => (MarketSide::Ask, ask - 200),
        };
        // §4.2: never advertise a locking/crossing price.
        if self
            .compliance
            .would_lock_or_cross(record.symbol_id, market_side, price)
        {
            self.suppressed += 1;
            return None;
        }
        self.last_quoted.insert(record.symbol_id, side);
        Some(OrderIntent {
            symbol_id: record.symbol_id,
            side,
            qty: 50,
            price: price as u64,
        })
    }
}

/// Strategy host configuration.
pub struct StrategyConfig {
    /// Internal session id (unique per strategy).
    pub session: u32,
    /// Subscribed partitions.
    pub subscriptions: SubscriptionSet,
    /// Multicast group index base of the internal feed.
    pub mcast_base: u32,
    /// CPU cost of evaluating a subscribed record.
    pub decision_service: SimTime,
    /// CPU cost of discarding an unsubscribed record.
    pub discard_service: SimTime,
    /// Host addressing.
    pub src_mac: eth::MacAddr,
    /// Host IP.
    pub src_ip: ipv4::Addr,
    /// Gateway addressing.
    pub gw_mac: eth::MacAddr,
    /// Gateway IP.
    pub gw_ip: ipv4::Addr,
    /// Firm-wide dictionary in id order (for symbol lookup on order send).
    pub symbols: Vec<Symbol>,
    /// Send IGMP joins at START (multicast fabrics). Circuit fabrics
    /// (L1S) have no group management — subscription is provisioning.
    pub send_igmp_joins: bool,
}

impl StrategyConfig {
    /// Defaults for strategy `i`, subscribing to nothing yet.
    pub fn new(i: u32, symbols: Vec<Symbol>) -> StrategyConfig {
        StrategyConfig {
            session: 100 + i,
            subscriptions: SubscriptionSet::unbounded(),
            mcast_base: 10_000,
            decision_service: SimTime::from_us(2),
            discard_service: SimTime::from_ns(50),
            src_mac: eth::MacAddr::host(0x5000 + i),
            src_ip: ipv4::Addr::new(10, 60, (i / 250) as u8, (i % 250) as u8 + 1),
            gw_mac: eth::MacAddr::host(0x6000),
            gw_ip: ipv4::Addr::new(10, 71, 0, 1),
            symbols,
            send_igmp_joins: true,
        }
    }
}

/// Strategy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrategyStats {
    /// Records in subscribed partitions evaluated.
    pub records_evaluated: u64,
    /// Records discarded by the host-side partition filter.
    pub records_discarded: u64,
    /// Orders sent.
    pub orders_sent: u64,
    /// Acks received.
    pub acks: u64,
    /// Fills received.
    pub fills: u64,
    /// Rejects received.
    pub rejects: u64,
}

/// The strategy node.
pub struct Strategy<L: StrategyLogic> {
    cfg: StrategyConfig,
    logic: L,
    svc: TxQueue,
    decoder: boe::Decoder,
    next_cl_ord: u64,
    tx_seq: u32,
    stats: StrategyStats,
    /// Decision latencies: market event time → order emission, ps.
    pub decision_latency_ps: Vec<u64>,
    /// Reusable BOE payload buffer.
    payload_scratch: Vec<u8>,
    /// Reusable per-packet intent batch.
    intent_scratch: Vec<OrderIntent>,
}

impl<L: StrategyLogic> Strategy<L> {
    /// Build a strategy host.
    pub fn new(cfg: StrategyConfig, logic: L) -> Strategy<L> {
        Strategy {
            cfg,
            logic,
            svc: TxQueue::new(SVC_TOKEN),
            decoder: boe::Decoder::new(),
            next_cl_ord: 1,
            tx_seq: 1,
            stats: StrategyStats::default(),
            decision_latency_ps: Vec::new(),
            payload_scratch: Vec::new(),
            intent_scratch: Vec::new(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> StrategyStats {
        self.stats
    }

    /// The decision logic (for reading accumulated state).
    pub fn logic(&self) -> &L {
        &self.logic
    }

    fn send_boe(&mut self, ctx: &mut Context<'_>, msg: &boe::Message, meta: tn_sim::FrameMeta) {
        self.payload_scratch.clear();
        msg.emit(self.tx_seq, &mut self.payload_scratch);
        let tx_seq = self.tx_seq;
        self.tx_seq = self.tx_seq.wrapping_add(self.payload_scratch.len() as u32);
        let cfg = &self.cfg;
        let payload = &self.payload_scratch;
        let frame = ctx
            .frame()
            .fill(|b| {
                stack::emit_tcp_into(
                    cfg.src_mac,
                    cfg.gw_mac,
                    cfg.src_ip,
                    cfg.gw_ip,
                    40_000 + cfg.session as u16,
                    gateway::INTERNAL_PORT,
                    tx_seq,
                    0,
                    tcp::Flags::ACK | tcp::Flags::PSH,
                    payload,
                    b,
                )
            })
            .meta(meta)
            .build();
        self.svc.send_after(ctx, SimTime::ZERO, ORDERS, frame);
    }

    fn on_feed(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        // The normalized feed arrives either as UDP multicast or as the
        // §5 custom transport; the payload format is identical.
        let payload: &[u8] = if let Ok(view) = stack::parse_udp(&frame.bytes) {
            view.payload
        } else if let Ok(f) = l1t::Frame::new_checked(frame.bytes.as_slice()) {
            &frame.bytes[l1t::HEADER_LEN..f.len_field() as usize]
        } else {
            return;
        };
        let Ok(pkt) = norm::Packet::new_checked(payload) else {
            return;
        };
        let partition = pkt.partition();
        if !self.cfg.subscriptions.wants(partition) {
            // The whole packet is for a partition we don't want: pay the
            // per-record discard cost (header inspection + drop).
            let n = u64::from(pkt.count());
            self.stats.records_discarded += n;
            self.svc.charge(ctx.now(), self.cfg.discard_service * n);
            return;
        }
        let mut intents = std::mem::take(&mut self.intent_scratch);
        let mut n = 0u64;
        for rec in pkt.records() {
            let Ok(rec) = rec else { break };
            n += 1;
            if let Some(intent) = self.logic.on_record(&rec) {
                intents.push(intent);
            }
        }
        self.stats.records_evaluated += n;
        self.svc.charge(ctx.now(), self.cfg.decision_service * n);
        for intent in intents.drain(..) {
            let Some(&symbol) = self.cfg.symbols.get(intent.symbol_id as usize) else {
                continue;
            };
            let cl_ord_id = self.next_cl_ord;
            self.next_cl_ord += 1;
            let msg = boe::Message::NewOrder {
                cl_ord_id,
                side: intent.side,
                qty: intent.qty,
                symbol,
                price: intent.price,
            };
            self.stats.orders_sent += 1;
            if frame.meta.event_time != SimTime::ZERO {
                self.decision_latency_ps
                    .push(ctx.now().saturating_sub(frame.meta.event_time).as_ps());
            }
            self.send_boe(ctx, &msg, frame.meta.clone());
        }
        self.intent_scratch = intents;
    }

    fn on_reply(&mut self, frame: &Frame) {
        let Ok(view) = stack::parse_tcp(&frame.bytes) else {
            return;
        };
        // On circuit fabrics (L1S) every strategy on a gateway's reply
        // fan-out sees every reply; hosts filter by address.
        if view.dst_ip != self.cfg.src_ip {
            return;
        }
        self.decoder.push(view.payload);
        while let Ok(Some((msg, _))) = self.decoder.next_message() {
            match msg {
                boe::Message::OrderAck { .. } => self.stats.acks += 1,
                boe::Message::Fill { .. } => self.stats.fills += 1,
                boe::Message::OrderReject { .. } => self.stats.rejects += 1,
                _ => {}
            }
        }
    }
}

impl<L: StrategyLogic + 'static> Node for Strategy<L> {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        match port {
            FEED => self.on_feed(ctx, &frame),
            ORDERS => self.on_reply(&frame),
            // Wiring invariant: ports are fixed at topology build time, so
            // failing fast beats silently eating frames.
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("strategy has 2 ports, got {other:?}"),
        }
        // Terminal consumer: feed records and replies are fully decoded
        // above, so the buffer goes back to the arena.
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.svc.on_timer(ctx, timer) {
            return;
        }
        if timer == START {
            // Join subscribed groups and log in to the gateway.
            let groups: Vec<u32> = if self.cfg.send_igmp_joins {
                self.cfg
                    .subscriptions
                    .partitions()
                    .map(|p| self.cfg.mcast_base + u32::from(p))
                    .collect()
            } else {
                // One-time START handling, not steady state.
                // audit:allow(hotpath-alloc): capacity-0 Vec never touches the heap
                Vec::new()
            };
            let (src_mac, src_ip) = (self.cfg.src_mac, self.cfg.src_ip);
            for g in groups {
                let group = ipv4::Addr::multicast_group(g);
                let frame = ctx
                    .frame()
                    .fill(|b| {
                        tn_switch::commodity::igmp_frame_into(
                            tn_wire::igmp::MessageType::Report,
                            src_mac,
                            src_ip,
                            group,
                            b,
                        )
                    })
                    .build();
                ctx.send(FEED, frame);
            }
            let session = self.cfg.session;
            let login = boe::Message::Login {
                session,
                token: u64::from(session),
            };
            self.send_boe(ctx, &login, tn_sim::FrameMeta::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(symbol_id: u32, side: u8, price: i64) -> norm::Record {
        norm::Record {
            kind: norm::Kind::Bbo,
            exchange: 1,
            side,
            flags: 0,
            symbol_id,
            price,
            size: 100,
            aux: 0,
            src_time_ns: 0,
        }
    }

    #[test]
    fn momentum_fires_on_upward_move() {
        let mut m = MomentumLogic::new(500);
        assert!(m.on_record(&rec(1, b'B', 100_0000)).is_none()); // baseline
        assert!(m.on_record(&rec(1, b'B', 100_0400)).is_none()); // below threshold
        let intent = m.on_record(&rec(1, b'B', 100_0900)).unwrap();
        assert_eq!(intent.side, Side::Buy);
        assert_eq!(intent.symbol_id, 1);
        // Ask-side records don't trigger.
        assert!(m.on_record(&rec(1, b'S', 200_0000)).is_none());
        // Independent per symbol.
        assert!(m.on_record(&rec(2, b'B', 50_0000)).is_none());
    }

    #[test]
    fn cross_market_arb_detects_crossed_books() {
        let mut a = CrossMarketArb::default();
        // Exchange 1 asks 100.00.
        let mut ask = rec(7, b'S', 100_0000);
        ask.exchange = 1;
        assert!(a.on_record(&ask).is_none());
        // Exchange 2 bids 100.05: crossed across exchanges.
        let mut bid = rec(7, b'B', 100_0500);
        bid.exchange = 2;
        let intent = a.on_record(&bid).unwrap();
        assert_eq!(intent.price, 100_0000); // buy at the cheap ask
        assert_eq!(a.opportunities, 1);
        // Same-exchange cross does not fire (that's the exchange's job).
        let mut a2 = CrossMarketArb::default();
        let mut ask = rec(7, b'S', 100_0000);
        ask.exchange = 1;
        let mut bid = rec(7, b'B', 100_0500);
        bid.exchange = 1;
        a2.on_record(&ask);
        assert!(a2.on_record(&bid).is_none());
    }

    #[test]
    fn market_maker_quotes_inside_wide_spreads() {
        let mut mm = MarketMakerLogic::new(500);
        // Establish a wide market: 100.00 / 100.20.
        assert!(mm.on_record(&rec(1, b'B', 100_0000)).is_none()); // no ask yet
        let intent = mm.on_record(&rec(1, b'S', 100_2000)).unwrap();
        // First quote bids two ticks above the best bid.
        assert_eq!(intent.side, Side::Buy);
        assert_eq!(intent.price, 100_0200);
        // Next quote takes the other side, two ticks under the ask.
        let intent = mm.on_record(&rec(1, b'S', 100_2000)).unwrap();
        assert_eq!(intent.side, Side::Sell);
        assert_eq!(intent.price, 100_1800);
        assert_eq!(mm.suppressed, 0);
    }

    #[test]
    fn market_maker_respects_min_spread() {
        let mut mm = MarketMakerLogic::new(500);
        mm.on_record(&rec(1, b'B', 100_0000));
        // Tight market (4 ticks): stay out.
        assert!(mm.on_record(&rec(1, b'S', 100_0400)).is_none());
    }

    #[test]
    fn market_maker_never_locks_another_exchange() {
        let mut mm = MarketMakerLogic::new(200);
        // Market exactly at the minimum spread: 100.00 / 100.02. An
        // aggressive two-tick improvement would land exactly on the ask —
        // a locked market. The §4.2 pre-trade check must suppress it.
        mm.on_record(&rec(1, b'B', 100_0000));
        let out = mm.on_record(&rec(1, b'S', 100_0200));
        assert!(out.is_none());
        assert_eq!(mm.suppressed, 1);
        // A slightly wider market is quotable again.
        let out = mm.on_record(&rec(1, b'S', 100_0300));
        assert!(out.is_some());
    }

    #[test]
    fn non_bbo_records_ignored() {
        let mut m = MomentumLogic::new(1);
        let mut r = rec(1, b'B', 100_0000);
        r.kind = norm::Kind::Trade;
        assert!(m.on_record(&r).is_none());
        let mut a = CrossMarketArb::default();
        assert!(a.on_record(&r).is_none());
    }
}
