//! The normalizer as a simulation node.
//!
//! Wraps [`tn_feed::NormalizerCore`] with service-time modeling and
//! multicast output. Ports:
//!
//! * [`FEED_A`] / [`FEED_B`] — the exchange's A/B feed (B optional).
//! * [`OUT`] — the internal normalized feed, published as UDP multicast
//!   with one group per internal partition.
//!
//! Each native message costs `per_message_service` on the normalizer's
//! core — §3's per-event budget arithmetic (650 ns/event at the busiest
//! second, 100 ns at the 100 µs peak) runs against exactly this knob.

use tn_feed::normalize::{HashRepartition, NormalizerCore, NormalizerOutput};
use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};
use tn_wire::{eth, ipv4, l1t, norm, stack};

/// How the normalized feed is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputTransport {
    /// Standard Ethernet/IPv4/UDP multicast (42 bytes of headers) —
    /// required on switched fabrics that route by group address.
    UdpMulticast,
    /// The §5 custom transport: an 8-byte [`tn_wire::l1t`] header carrying
    /// the partition as its stream id. Only usable on circuit fabrics
    /// (L1S), which never look at the bytes.
    L1Transport,
}

/// A-side feed input port.
pub const FEED_A: PortId = PortId(0);
/// B-side feed input port.
pub const FEED_B: PortId = PortId(1);
/// Normalized multicast output port.
pub const OUT: PortId = PortId(2);

const SVC_TOKEN: u64 = 1;

/// Normalizer configuration.
#[derive(Debug, Clone)]
pub struct NormalizerConfig {
    /// Which exchange's feed this normalizer owns.
    pub exchange_id: u8,
    /// Internal partitions to spread output over.
    pub out_partitions: u16,
    /// Multicast group index base for internal partitions: partition `p`
    /// publishes to group `out_mcast_base + p`.
    pub out_mcast_base: u32,
    /// Per-native-message processing cost.
    pub per_message_service: SimTime,
    /// Source addressing for emitted frames.
    pub src_mac: eth::MacAddr,
    /// Source IP.
    pub src_ip: ipv4::Addr,
    /// UDP port for the internal feed.
    pub udp_port: u16,
    /// Emit depth deltas too (bigger internal feed, fuller books).
    pub emit_depth: bool,
    /// Symbols to pre-intern so ids match the firm dictionary.
    pub preload: Vec<tn_wire::Symbol>,
    /// Output framing (see [`OutputTransport`]).
    pub transport: OutputTransport,
    /// Feed units this normalizer owns. `None` accepts everything
    /// (multicast fabrics deliver only the joined units); `Some` models
    /// circuit fabrics where the host sees the whole feed and must
    /// discard other units in software.
    pub accept_units: Option<std::collections::HashSet<u8>>,
    /// Cost of inspecting-and-discarding a packet from a foreign unit.
    pub unit_discard_service: SimTime,
}

impl NormalizerConfig {
    /// Sensible defaults for exchange `exchange_id`, normalizer index `i`.
    pub fn new(exchange_id: u8, i: u32) -> NormalizerConfig {
        NormalizerConfig {
            exchange_id,
            out_partitions: 16,
            out_mcast_base: 10_000 + u32::from(exchange_id) * 1_000,
            per_message_service: SimTime::from_ns(650),
            src_mac: eth::MacAddr::host(0x4E00 + i),
            src_ip: ipv4::Addr::new(10, 50, exchange_id, (i % 250) as u8 + 1),
            udp_port: 31_000,
            emit_depth: false,
            preload: Vec::new(),
            transport: OutputTransport::UdpMulticast,
            accept_units: None,
            unit_discard_service: SimTime::from_ns(100),
        }
    }
}

/// Node-level counters (the core's own stats are nested).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizerNodeStats {
    /// Feed frames received (both sides).
    pub frames_in: u64,
    /// Normalized packets emitted.
    pub packets_out: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Frames that failed to parse.
    pub parse_errors: u64,
    /// Packets discarded because they belong to another normalizer's
    /// units (circuit fabrics only).
    pub packets_discarded: u64,
}

/// The normalizer node.
pub struct Normalizer {
    cfg: NormalizerConfig,
    core: NormalizerCore<HashRepartition>,
    /// Per-partition packet sequence numbers.
    next_seq: Vec<u32>,
    svc: TxQueue,
    stats: NormalizerNodeStats,
    /// Reusable sealed-packet byte buffer (packets are concatenated, with
    /// boundaries in `bounds_scratch`).
    wire_scratch: Vec<u8>,
    /// `(start, end)` offsets of each sealed packet in `wire_scratch`.
    bounds_scratch: Vec<(usize, usize)>,
}

impl Normalizer {
    /// Build from config.
    pub fn new(cfg: NormalizerConfig) -> Normalizer {
        let mut core = NormalizerCore::new(
            cfg.exchange_id,
            HashRepartition {
                partitions: cfg.out_partitions,
            },
        );
        core.emit_depth = cfg.emit_depth;
        core.preload_symbols(cfg.preload.iter().copied());
        Normalizer {
            next_seq: vec![1; cfg.out_partitions as usize],
            core,
            svc: TxQueue::new(SVC_TOKEN),
            cfg,
            stats: NormalizerNodeStats::default(),
            wire_scratch: Vec::new(),
            bounds_scratch: Vec::new(),
        }
    }

    /// Node counters.
    pub fn stats(&self) -> NormalizerNodeStats {
        self.stats
    }

    /// Core (arbitration/gap) statistics.
    pub fn core(&self) -> &NormalizerCore<HashRepartition> {
        &self.core
    }

    fn emit(&mut self, ctx: &mut Context<'_>, outputs: &[NormalizerOutput], src: &Frame) {
        if outputs.is_empty() {
            return;
        }
        // Group contiguous same-partition records into packets; feeds are
        // bursty per symbol so runs are common.
        let mut i = 0;
        while i < outputs.len() {
            let partition = outputs[i].partition;
            let mut pb =
                norm::PacketBuilder::new(partition, self.next_seq[partition as usize], 1_400);
            // Seal packets into the reusable scratch buffer, recording
            // boundaries, then frame each slice once the run is closed.
            self.wire_scratch.clear();
            self.bounds_scratch.clear();
            while i < outputs.len() && outputs[i].partition == partition {
                let before = self.wire_scratch.len();
                if pb.push_into(&outputs[i].record, &mut self.wire_scratch) {
                    self.bounds_scratch.push((before, self.wire_scratch.len()));
                }
                i += 1;
            }
            let before = self.wire_scratch.len();
            if pb.flush_into(&mut self.wire_scratch) {
                self.bounds_scratch.push((before, self.wire_scratch.len()));
            }
            self.next_seq[partition as usize] = pb.next_seq();
            let transport = self.cfg.transport;
            let (src_mac, src_ip, udp_port, mcast_base) = (
                self.cfg.src_mac,
                self.cfg.src_ip,
                self.cfg.udp_port,
                self.cfg.out_mcast_base,
            );
            let l1t_seq = self.next_seq[partition as usize];
            for &(s, e) in &self.bounds_scratch {
                let payload = &self.wire_scratch[s..e];
                let builder = match transport {
                    OutputTransport::UdpMulticast => {
                        let group = ipv4::Addr::multicast_group(mcast_base + u32::from(partition));
                        ctx.frame().fill(|b| {
                            stack::emit_udp_into(
                                src_mac, None, src_ip, group, udp_port, udp_port, payload, b,
                            )
                        })
                    }
                    OutputTransport::L1Transport => ctx
                        .frame()
                        .fill(|b| l1t::emit_into(partition, l1t_seq, payload, b)),
                };
                // Propagate the market event's identity/time so downstream
                // latency is measured against the original event.
                let frame = builder.meta(src.meta.clone()).build();
                self.stats.packets_out += 1;
                self.svc.send_after(ctx, SimTime::ZERO, OUT, frame);
            }
        }
    }

    fn on_feed(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        self.stats.frames_in += 1;
        let Ok(view) = stack::parse_udp(&frame.bytes) else {
            self.stats.parse_errors += 1;
            return;
        };
        if let Some(accept) = &self.cfg.accept_units {
            // Peek the unit byte; foreign units cost a discard.
            if let Ok(pkt) = tn_wire::pitch::Packet::new_checked(view.payload) {
                if !accept.contains(&pkt.unit()) {
                    self.stats.packets_discarded += 1;
                    self.svc.charge(ctx.now(), self.cfg.unit_discard_service);
                    return;
                }
            }
        }
        let time_ns = ctx.now().as_ps() / 1_000;
        let msgs_before = self.core.stats().messages_in;
        match self.core.on_packet(view.payload, time_ns) {
            Ok(outputs) => {
                // Every native message costs core time whether or
                // not it survives normalization — the basis of the
                // §3 filtering analysis.
                let consumed = self.core.stats().messages_in - msgs_before;
                self.svc
                    .charge(ctx.now(), self.cfg.per_message_service * consumed);
                self.stats.records_out += outputs.len() as u64;
                self.emit(ctx, &outputs, frame);
            }
            Err(_) => self.stats.parse_errors += 1,
        }
    }
}

impl Node for Normalizer {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        match port {
            FEED_A | FEED_B => {
                self.on_feed(ctx, &frame);
                // Terminal consumer: normalized output rides fresh frames,
                // so the native frame's buffer goes back to the arena.
                ctx.recycle(frame);
            }
            OUT => ctx.recycle(frame), // nothing arrives on the output port
            // Wiring invariant: ports are fixed at topology build time, so
            // failing fast beats silently eating frames.
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("normalizer has 3 ports, got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        let consumed = self.svc.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer {timer:?}");
    }

    fn on_attach_metrics(&mut self, metrics: &tn_sim::Metrics) {
        self.core.set_metrics(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::pitch::{self, Side};
    use tn_wire::Symbol;

    struct Sink {
        frames: Vec<(SimTime, Vec<u8>)>,
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.frames.push((ctx.now(), f.bytes));
        }
    }

    fn feed_frame(first_seq: u32, adds: u32) -> Vec<u8> {
        let mut pb = pitch::PacketBuilder::new(0, first_seq, 1400);
        for i in 0..adds {
            pb.push(&pitch::Message::AddOrder {
                offset_ns: i,
                order_id: u64::from(first_seq + i),
                side: Side::Buy,
                qty: 100,
                symbol: Symbol::new("SPY").unwrap(),
                price: 450_0000 + u64::from(i) * 100, // each improves the bid
            });
        }
        let payload = pb.flush().unwrap();
        stack::build_udp(
            eth::MacAddr::host(1),
            None,
            ipv4::Addr::new(10, 200, 1, 1),
            ipv4::Addr::multicast_group(0),
            30_001,
            30_001,
            &payload,
        )
    }

    fn rig(cfg: NormalizerConfig) -> (Simulator, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(4);
        let n = sim.add_node("norm", Normalizer::new(cfg));
        let sink = sim.add_node("sink", Sink { frames: vec![] });
        sim.connect_spec(n, OUT, sink, PortId(0), &LinkSpec::ideal(SimTime::ZERO));
        (sim, n, sink)
    }

    #[test]
    fn native_feed_becomes_normalized_multicast() {
        let cfg = NormalizerConfig::new(1, 0);
        let base = cfg.out_mcast_base;
        let (mut sim, n, sink) = rig(cfg);
        let f = sim.frame().copy_from(&feed_frame(1, 3)).build();
        sim.inject_frame(SimTime::from_us(1), n, FEED_A, f);
        sim.run();
        let frames = &sim.node::<Sink>(sink).unwrap().frames;
        assert_eq!(frames.len(), 1);
        let v = stack::parse_udp(&frames[0].1).unwrap();
        assert!(v.dst_ip.multicast_index().unwrap() >= base);
        let pkt = norm::Packet::new_checked(v.payload).unwrap();
        assert_eq!(pkt.count(), 3); // three BBO improvements
        for r in pkt.records() {
            let r = r.unwrap();
            assert_eq!(r.kind, norm::Kind::Bbo);
            assert_eq!(r.exchange, 1);
        }
        // Service time: 3 messages x 650 ns after arrival at 1 us.
        assert_eq!(frames[0].0, SimTime::from_us(1) + SimTime::from_ns(3 * 650));
        let stats = sim.node::<Normalizer>(n).unwrap().stats();
        assert_eq!(stats.frames_in, 1);
        assert_eq!(stats.packets_out, 1);
        assert_eq!(stats.records_out, 3);
    }

    #[test]
    fn b_side_duplicates_are_absorbed() {
        let (mut sim, n, sink) = rig(NormalizerConfig::new(1, 0));
        let bytes = feed_frame(1, 2);
        let fa = sim.frame().copy_from(&bytes).build();
        let fb = sim.frame().copy_from(&bytes).build();
        sim.inject_frame(SimTime::from_us(1), n, FEED_A, fa);
        sim.inject_frame(SimTime::from_us(2), n, FEED_B, fb);
        sim.run();
        assert_eq!(sim.node::<Sink>(sink).unwrap().frames.len(), 1);
        let norm_node = sim.node::<Normalizer>(n).unwrap();
        assert_eq!(norm_node.core().arbiter().stats().duplicates, 1);
    }

    #[test]
    fn service_time_queues_under_bursts() {
        let mut cfg = NormalizerConfig::new(1, 0);
        cfg.per_message_service = SimTime::from_us(1);
        let (mut sim, n, sink) = rig(cfg);
        // Two packets arrive back to back; the second's output waits for
        // the first's service.
        let f1 = sim.frame().copy_from(&feed_frame(1, 2)).build();
        let f2 = sim.frame().copy_from(&feed_frame(3, 2)).build();
        sim.inject_frame(SimTime::ZERO, n, FEED_A, f1);
        sim.inject_frame(SimTime::ZERO, n, FEED_A, f2);
        sim.run();
        let frames = &sim.node::<Sink>(sink).unwrap().frames;
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, SimTime::from_us(2));
        assert_eq!(frames[1].0, SimTime::from_us(4));
    }

    #[test]
    fn garbage_counts_parse_errors() {
        let (mut sim, n, _sink) = rig(NormalizerConfig::new(1, 0));
        let f = sim.frame().fill(|b| b.resize(40, 0xFF)).build();
        sim.inject_frame(SimTime::ZERO, n, FEED_A, f);
        sim.run();
        assert_eq!(sim.node::<Normalizer>(n).unwrap().stats().parse_errors, 1);
    }
}
