//! Order-entry gateways.
//!
//! §2: "The purpose of the gateway is to translate from internal order
//! entry formats back to the protocols that the exchanges use." The
//! gateway terminates internal strategy sessions on one side and holds
//! the firm's exchange session on the other, remapping client order ids
//! in both directions. Ports:
//!
//! * [`INTERNAL`] — strategies' order sessions.
//! * [`EXCHANGE`] — the firm's cross-connect session to one exchange.

use std::collections::HashMap;

use tn_netdev::TxQueue;
use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};
use tn_wire::{boe, eth, ipv4, stack, tcp};

/// Strategy-facing port.
pub const INTERNAL: PortId = PortId(0);
/// Exchange-facing port.
pub const EXCHANGE: PortId = PortId(1);

/// TCP port gateways listen on for internal sessions.
pub const INTERNAL_PORT: u16 = 6_001;

/// Timer token that triggers the exchange login; schedule once.
pub const START: TimerToken = TimerToken(60);

const SVC_TOKEN: u64 = 1;

/// Gateway configuration.
pub struct GatewayConfig {
    /// The firm's session id on the exchange.
    pub exchange_session: u32,
    /// Translation service time per message (§4's software-hop budget).
    pub service: SimTime,
    /// Gateway addressing.
    pub src_mac: eth::MacAddr,
    /// Exchange-facing IP (exchange replies route here).
    pub src_ip: ipv4::Addr,
    /// Strategy-facing IP (internal orders route here). Fig 1(d): hosts
    /// use separate NICs for market data, orders and management, so the
    /// two sides of a gateway have distinct addresses.
    pub internal_ip: ipv4::Addr,
    /// Exchange addressing.
    pub exch_mac: eth::MacAddr,
    /// Exchange IP.
    pub exch_ip: ipv4::Addr,
    /// Exchange order-entry TCP port.
    pub exch_port: u16,
}

impl GatewayConfig {
    /// Defaults for gateway `i` toward the given exchange addressing.
    pub fn new(i: u32, exch_mac: eth::MacAddr, exch_ip: ipv4::Addr) -> GatewayConfig {
        GatewayConfig {
            exchange_session: 9_000 + i,
            service: SimTime::from_us(2),
            src_mac: eth::MacAddr::host(0x6000 + i),
            src_ip: ipv4::Addr::new(10, 70, (i / 250) as u8, (i % 250) as u8 + 1),
            internal_ip: ipv4::Addr::new(10, 71, (i / 250) as u8, (i % 250) as u8 + 1),
            exch_mac,
            exch_ip,
            exch_port: 7_001,
        }
    }
}

/// Gateway counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Orders translated firm → exchange.
    pub orders_out: u64,
    /// Replies relayed exchange → firm.
    pub replies_back: u64,
    /// Messages dropped (unknown mappings, protocol errors).
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct StrategyAddr {
    mac: eth::MacAddr,
    ip: ipv4::Addr,
    tcp_port: u16,
}

/// The gateway node.
pub struct Gateway {
    cfg: GatewayConfig,
    /// Reassembly per internal peer.
    internal_decoders: HashMap<(ipv4::Addr, u16), boe::Decoder>,
    exchange_decoder: boe::Decoder,
    /// Internal session → addressing (learned at login).
    strategies: HashMap<u32, StrategyAddr>,
    /// Peer → internal session.
    peer_session: HashMap<(ipv4::Addr, u16), u32>,
    /// Exchange cl_ord_id → (internal session, internal cl_ord_id).
    order_map: HashMap<u64, (u32, u64)>,
    next_cl_ord: u64,
    exch_tx_seq: u32,
    internal_tx_seq: u32,
    svc: TxQueue,
    stats: GatewayStats,
    /// Reusable BOE payload buffer.
    payload_scratch: Vec<u8>,
    /// Reusable per-dispatch message batch.
    msg_scratch: Vec<boe::Message>,
}

impl Gateway {
    /// Build the node.
    pub fn new(cfg: GatewayConfig) -> Gateway {
        Gateway {
            cfg,
            internal_decoders: HashMap::new(),
            exchange_decoder: boe::Decoder::new(),
            strategies: HashMap::new(),
            peer_session: HashMap::new(),
            order_map: HashMap::new(),
            next_cl_ord: 1,
            exch_tx_seq: 1,
            internal_tx_seq: 1,
            svc: TxQueue::new(SVC_TOKEN),
            stats: GatewayStats::default(),
            payload_scratch: Vec::new(),
            msg_scratch: Vec::new(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    fn send_to_exchange(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &boe::Message,
        meta: tn_sim::FrameMeta,
        service: SimTime,
    ) {
        self.payload_scratch.clear();
        msg.emit(self.exch_tx_seq, &mut self.payload_scratch);
        let tx_seq = self.exch_tx_seq;
        self.exch_tx_seq = self
            .exch_tx_seq
            .wrapping_add(self.payload_scratch.len() as u32);
        let cfg = &self.cfg;
        let payload = &self.payload_scratch;
        let frame = ctx
            .frame()
            .fill(|b| {
                stack::emit_tcp_into(
                    cfg.src_mac,
                    cfg.exch_mac,
                    cfg.src_ip,
                    cfg.exch_ip,
                    45_000,
                    cfg.exch_port,
                    tx_seq,
                    0,
                    tcp::Flags::ACK | tcp::Flags::PSH,
                    payload,
                    b,
                )
            })
            .meta(meta)
            .build();
        self.svc.send_after(ctx, service, EXCHANGE, frame);
    }

    fn send_to_strategy(
        &mut self,
        ctx: &mut Context<'_>,
        session: u32,
        msg: &boe::Message,
        service: SimTime,
    ) {
        let Some(addr) = self.strategies.get(&session).copied() else {
            self.stats.dropped += 1;
            return;
        };
        self.payload_scratch.clear();
        msg.emit(self.internal_tx_seq, &mut self.payload_scratch);
        let tx_seq = self.internal_tx_seq;
        self.internal_tx_seq = self
            .internal_tx_seq
            .wrapping_add(self.payload_scratch.len() as u32);
        let cfg = &self.cfg;
        let payload = &self.payload_scratch;
        let frame = ctx
            .frame()
            .fill(|b| {
                stack::emit_tcp_into(
                    cfg.src_mac,
                    addr.mac,
                    cfg.internal_ip,
                    addr.ip,
                    INTERNAL_PORT,
                    addr.tcp_port,
                    tx_seq,
                    0,
                    tcp::Flags::ACK | tcp::Flags::PSH,
                    payload,
                    b,
                )
            })
            .build();
        self.stats.replies_back += 1;
        self.svc.send_after(ctx, service, INTERNAL, frame);
    }

    fn on_internal(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        let Ok(view) = stack::parse_tcp(&frame.bytes) else {
            self.stats.dropped += 1;
            return;
        };
        let peer = (view.src_ip, view.src_port);
        let decoder = self.internal_decoders.entry(peer).or_default();
        decoder.push(view.payload);
        let mut msgs = std::mem::take(&mut self.msg_scratch);
        while let Ok(Some((msg, _))) = decoder.next_message() {
            msgs.push(msg);
        }
        let (mac, ip, port) = (view.src_mac, view.src_ip, view.src_port);
        for msg in msgs.drain(..) {
            match msg {
                boe::Message::Login { session, .. } => {
                    self.strategies.insert(
                        session,
                        StrategyAddr {
                            mac,
                            ip,
                            tcp_port: port,
                        },
                    );
                    self.peer_session.insert(peer, session);
                }
                boe::Message::NewOrder {
                    cl_ord_id,
                    side,
                    qty,
                    symbol,
                    price,
                } => {
                    let Some(&session) = self.peer_session.get(&peer) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    let gw_cl_ord = self.next_cl_ord;
                    self.next_cl_ord += 1;
                    self.order_map.insert(gw_cl_ord, (session, cl_ord_id));
                    self.stats.orders_out += 1;
                    let service = self.cfg.service;
                    self.send_to_exchange(
                        ctx,
                        &boe::Message::NewOrder {
                            cl_ord_id: gw_cl_ord,
                            side,
                            qty,
                            symbol,
                            price,
                        },
                        frame.meta.clone(),
                        service,
                    );
                }
                boe::Message::CancelOrder { cl_ord_id } => {
                    let Some(&session) = self.peer_session.get(&peer) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    // Find the gateway id for this strategy order.
                    let found = self
                        .order_map
                        .iter()
                        .find(|(_, &(s, c))| s == session && c == cl_ord_id)
                        .map(|(&g, _)| g);
                    match found {
                        Some(gw_cl_ord) => {
                            let service = self.cfg.service;
                            self.send_to_exchange(
                                ctx,
                                &boe::Message::CancelOrder {
                                    cl_ord_id: gw_cl_ord,
                                },
                                frame.meta.clone(),
                                service,
                            );
                        }
                        None => self.stats.dropped += 1,
                    }
                }
                _ => self.stats.dropped += 1,
            }
        }
        self.msg_scratch = msgs;
    }

    fn on_exchange(&mut self, ctx: &mut Context<'_>, frame: &Frame) {
        let Ok(view) = stack::parse_tcp(&frame.bytes) else {
            self.stats.dropped += 1;
            return;
        };
        // Circuit fabrics fan exchange replies out to all gateways;
        // filter by address before decoding.
        if view.dst_ip != self.cfg.src_ip && view.dst_ip != self.cfg.internal_ip {
            return;
        }
        self.exchange_decoder.push(view.payload);
        let mut msgs = std::mem::take(&mut self.msg_scratch);
        while let Ok(Some((msg, _))) = self.exchange_decoder.next_message() {
            msgs.push(msg);
        }
        for msg in msgs.drain(..) {
            let service = self.cfg.service;
            let (gw_cl_ord, rewrite): (u64, fn(u64, &boe::Message) -> boe::Message) = match msg {
                boe::Message::OrderAck {
                    cl_ord_id,
                    exch_ord_id,
                } => (
                    cl_ord_id,
                    // Rewrap with the strategy's own cl_ord_id.
                    {
                        let _ = exch_ord_id;
                        |c, m| match *m {
                            boe::Message::OrderAck { exch_ord_id, .. } => boe::Message::OrderAck {
                                cl_ord_id: c,
                                exch_ord_id,
                            },
                            _ => unreachable!(),
                        }
                    },
                ),
                boe::Message::OrderReject { cl_ord_id, .. } => (cl_ord_id, |c, m| match *m {
                    boe::Message::OrderReject { reason, .. } => boe::Message::OrderReject {
                        cl_ord_id: c,
                        reason,
                    },
                    _ => unreachable!(),
                }),
                boe::Message::Fill { cl_ord_id, .. } => (cl_ord_id, |c, m| match *m {
                    boe::Message::Fill {
                        exec_id,
                        qty,
                        price,
                        leaves,
                        ..
                    } => boe::Message::Fill {
                        cl_ord_id: c,
                        exec_id,
                        qty,
                        price,
                        leaves,
                    },
                    _ => unreachable!(),
                }),
                boe::Message::CancelAck { cl_ord_id } => {
                    (cl_ord_id, |c, _| boe::Message::CancelAck { cl_ord_id: c })
                }
                _ => continue,
            };
            let Some(&(session, strat_cl_ord)) = self.order_map.get(&gw_cl_ord) else {
                self.stats.dropped += 1;
                continue;
            };
            let translated = rewrite(strat_cl_ord, &msg);
            self.send_to_strategy(ctx, session, &translated, service);
        }
        self.msg_scratch = msgs;
    }
}

impl Node for Gateway {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        match port {
            INTERNAL => self.on_internal(ctx, &frame),
            EXCHANGE => self.on_exchange(ctx, &frame),
            // Wiring invariant: ports are fixed at topology build time, so
            // failing fast beats silently eating frames.
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("gateway has 2 ports, got {other:?}"),
        }
        // Terminal consumer: both sides fully decode (translated traffic
        // rides fresh frames), so the buffer goes back to the arena.
        ctx.recycle(frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.svc.on_timer(ctx, timer) {
            return;
        }
        if timer == START {
            let session = self.cfg.exchange_session;
            let login = boe::Message::Login {
                session,
                token: u64::from(session),
            };
            self.send_to_exchange(ctx, &login, tn_sim::FrameMeta::default(), SimTime::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_fault::{FaultConnect, LinkSpec};
    use tn_sim::Simulator;
    use tn_wire::pitch::Side;
    use tn_wire::Symbol;

    struct Collector {
        frames: Vec<(SimTime, Vec<u8>)>,
    }
    impl Node for Collector {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
            self.frames.push((ctx.now(), f.bytes));
        }
    }

    fn boe_in_tcp(msgs: &[boe::Message], src_ip: ipv4::Addr, src_port: u16) -> Vec<u8> {
        let mut payload = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            m.emit(i as u32, &mut payload);
        }
        stack::build_tcp(
            eth::MacAddr::host(1),
            eth::MacAddr::host(0x6000),
            src_ip,
            ipv4::Addr::new(10, 70, 0, 1),
            src_port,
            INTERNAL_PORT,
            1,
            0,
            tcp::Flags::ACK,
            &payload,
        )
    }

    fn rig() -> (Simulator, tn_sim::NodeId, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(8);
        let cfg = GatewayConfig::new(
            0,
            eth::MacAddr::host(0xEE01),
            ipv4::Addr::new(10, 200, 1, 1),
        );
        let gw = sim.add_node("gw", Gateway::new(cfg));
        let strat = sim.add_node("strat", Collector { frames: vec![] });
        let exch = sim.add_node("exch", Collector { frames: vec![] });
        sim.connect_spec(
            gw,
            INTERNAL,
            strat,
            PortId(0),
            &LinkSpec::ideal(SimTime::ZERO),
        );
        sim.connect_spec(
            gw,
            EXCHANGE,
            exch,
            PortId(0),
            &LinkSpec::ideal(SimTime::ZERO),
        );
        (sim, gw, strat, exch)
    }

    #[test]
    fn login_then_order_translates_with_fresh_id() {
        let (mut sim, gw, _strat, exch) = rig();
        let strat_ip = ipv4::Addr::new(10, 60, 0, 1);
        let order = boe::Message::NewOrder {
            cl_ord_id: 777,
            side: Side::Buy,
            qty: 10,
            symbol: Symbol::new("SPY").unwrap(),
            price: 450_0000,
        };
        let frame_bytes = boe_in_tcp(
            &[
                boe::Message::Login {
                    session: 100,
                    token: 1,
                },
                order,
            ],
            strat_ip,
            40_100,
        );
        let f = sim.frame().copy_from(&frame_bytes).build();
        sim.inject_frame(SimTime::ZERO, gw, INTERNAL, f);
        sim.run();
        let exch_frames = &sim.node::<Collector>(exch).unwrap().frames;
        assert_eq!(exch_frames.len(), 1);
        // Service delay applied (2 us default).
        assert_eq!(exch_frames[0].0, SimTime::from_us(2));
        let v = stack::parse_tcp(&exch_frames[0].1).unwrap();
        let (msg, _, _) = boe::Message::parse(v.payload).unwrap();
        match msg {
            boe::Message::NewOrder {
                cl_ord_id, qty: 10, ..
            } => {
                assert_ne!(cl_ord_id, 777, "gateway must remap ids");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sim.node::<Gateway>(gw).unwrap().stats().orders_out, 1);
    }

    #[test]
    fn replies_route_back_to_owning_strategy() {
        let (mut sim, gw, strat, _exch) = rig();
        let strat_ip = ipv4::Addr::new(10, 60, 0, 1);
        let order = boe::Message::NewOrder {
            cl_ord_id: 5,
            side: Side::Sell,
            qty: 1,
            symbol: Symbol::new("QQQ").unwrap(),
            price: 380_0000,
        };
        let bytes = boe_in_tcp(
            &[
                boe::Message::Login {
                    session: 100,
                    token: 1,
                },
                order,
            ],
            strat_ip,
            40_100,
        );
        let f = sim.frame().copy_from(&bytes).build();
        sim.inject_frame(SimTime::ZERO, gw, INTERNAL, f);
        sim.run();
        // Exchange acks gateway order id 1.
        let mut payload = Vec::new();
        boe::Message::OrderAck {
            cl_ord_id: 1,
            exch_ord_id: 42,
        }
        .emit(1, &mut payload);
        let ack = stack::build_tcp(
            eth::MacAddr::host(0xEE01),
            eth::MacAddr::host(0x6000),
            ipv4::Addr::new(10, 200, 1, 1),
            ipv4::Addr::new(10, 70, 0, 1),
            7_001,
            45_000,
            1,
            0,
            tcp::Flags::ACK,
            &payload,
        );
        let f = sim.frame().copy_from(&ack).build();
        let t = sim.now();
        sim.inject_frame(t, gw, EXCHANGE, f);
        sim.run();
        let strat_frames = &sim.node::<Collector>(strat).unwrap().frames;
        assert_eq!(strat_frames.len(), 1);
        let v = stack::parse_tcp(&strat_frames[0].1).unwrap();
        let (msg, _, _) = boe::Message::parse(v.payload).unwrap();
        // The strategy sees its own id again.
        assert!(matches!(
            msg,
            boe::Message::OrderAck {
                cl_ord_id: 5,
                exch_ord_id: 42
            }
        ));
        assert_eq!(sim.node::<Gateway>(gw).unwrap().stats().replies_back, 1);
    }

    #[test]
    fn unknown_replies_are_dropped() {
        let (mut sim, gw, strat, _exch) = rig();
        let mut payload = Vec::new();
        boe::Message::OrderAck {
            cl_ord_id: 99,
            exch_ord_id: 1,
        }
        .emit(1, &mut payload);
        let ack = stack::build_tcp(
            eth::MacAddr::host(0xEE01),
            eth::MacAddr::host(0x6000),
            ipv4::Addr::new(10, 200, 1, 1),
            ipv4::Addr::new(10, 70, 0, 1),
            7_001,
            45_000,
            1,
            0,
            tcp::Flags::ACK,
            &payload,
        );
        let f = sim.frame().copy_from(&ack).build();
        sim.inject_frame(SimTime::ZERO, gw, EXCHANGE, f);
        sim.run();
        assert!(sim.node::<Collector>(strat).unwrap().frames.is_empty());
        assert_eq!(sim.node::<Gateway>(gw).unwrap().stats().dropped, 1);
    }

    #[test]
    fn start_timer_logs_in_to_exchange() {
        let (mut sim, gw, _strat, exch) = rig();
        sim.schedule_timer(SimTime::from_us(1), gw, START);
        sim.run();
        let frames = &sim.node::<Collector>(exch).unwrap().frames;
        assert_eq!(frames.len(), 1);
        let v = stack::parse_tcp(&frames[0].1).unwrap();
        let (msg, _, _) = boe::Message::parse(v.payload).unwrap();
        assert!(matches!(msg, boe::Message::Login { session: 9000, .. }));
    }
}
