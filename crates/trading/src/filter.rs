//! Filtering-placement analysis (§3 "Implications for trading systems").
//!
//! "A key design choice is where to filter out the market data that will
//! not be used by a partition... if the combined time spent discarding
//! data and the time spent processing data is larger than the arrival
//! rate, then filtering should happen outside the trading system — either
//! on another core on the same server or on a middlebox. When several
//! systems employ the same partitioning scheme, middleboxes can be more
//! efficient in terms of the number of cores used."
//!
//! This module is that arithmetic as code: given an aggregate event rate,
//! the fraction each consumer wants, per-event discard/process costs, and
//! a consumer count, it reports the core budget of each placement and
//! which placements are even feasible (a single core must keep up with
//! whatever stream reaches it).

use tn_sim::SimTime;

/// Where the partition filter runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterPlacement {
    /// The strategy process inspects and discards unwanted events itself.
    InProcess,
    /// A dedicated core on the same server filters; the strategy core
    /// sees only wanted events.
    DedicatedCore,
    /// A shared middlebox filters once for all consumers with the same
    /// scheme and multicasts the filtered partitions.
    Middlebox,
}

/// The cost of a placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementCost {
    /// Total cores consumed across the system (fractional: utilization).
    pub cores: f64,
    /// Whether every single core stays under 100% utilization — if not,
    /// the placement cannot keep up regardless of core count (a single
    /// consumer core cannot be split).
    pub feasible: bool,
    /// Utilization of the busiest single core.
    pub peak_core_utilization: f64,
}

/// Workload and cost parameters for the placement analysis.
#[derive(Debug, Clone, Copy)]
pub struct FilterWorkload {
    /// Aggregate event arrival rate (events/second) on the full feed.
    pub event_rate: f64,
    /// Fraction of events each consumer actually wants.
    pub wanted_fraction: f64,
    /// Cost to inspect-and-discard one event.
    pub discard_cost: SimTime,
    /// Cost to fully process one wanted event.
    pub process_cost: SimTime,
    /// Number of consumers sharing the partitioning scheme.
    pub consumers: u32,
}

impl FilterWorkload {
    /// Evaluate one placement.
    pub fn cost(&self, placement: FilterPlacement) -> PlacementCost {
        let rate = self.event_rate;
        let w = self.wanted_fraction.clamp(0.0, 1.0);
        let n = f64::from(self.consumers);
        let t_d = self.discard_cost.as_secs_f64();
        let t_p = self.process_cost.as_secs_f64();
        // Utilization of one consumer core that both filters and processes.
        let u_inproc = rate * ((1.0 - w) * t_d + w * t_p);
        // Utilization of a pure filter core seeing the full feed.
        let u_filter = rate * t_d;
        // Utilization of a strategy core seeing only wanted events.
        let u_strategy = rate * w * t_p;
        match placement {
            FilterPlacement::InProcess => PlacementCost {
                cores: n * u_inproc,
                feasible: u_inproc < 1.0,
                peak_core_utilization: u_inproc,
            },
            FilterPlacement::DedicatedCore => PlacementCost {
                cores: n * (u_filter + u_strategy),
                feasible: u_filter < 1.0 && u_strategy < 1.0,
                peak_core_utilization: u_filter.max(u_strategy),
            },
            FilterPlacement::Middlebox => PlacementCost {
                // One filter pass for everyone, then n strategy cores.
                cores: u_filter + n * u_strategy,
                feasible: u_filter < 1.0 && u_strategy < 1.0,
                peak_core_utilization: u_filter.max(u_strategy),
            },
        }
    }

    /// The cheapest *feasible* placement.
    pub fn best(&self) -> (FilterPlacement, PlacementCost) {
        [
            FilterPlacement::InProcess,
            FilterPlacement::DedicatedCore,
            FilterPlacement::Middlebox,
        ]
        .into_iter()
        .map(|p| (p, self.cost(p)))
        .filter(|(_, c)| c.feasible)
        // audit:allow(hotpath-unwrap): core counts come from config constants; partial_cmp on finite floats cannot fail
        .min_by(|a, b| a.1.cores.partial_cmp(&b.1.cores).expect("finite"))
        .unwrap_or((
            FilterPlacement::Middlebox,
            self.cost(FilterPlacement::Middlebox),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> FilterWorkload {
        FilterWorkload {
            event_rate: 1_000_000.0, // 1M events/sec aggregate
            wanted_fraction: 0.05,
            discard_cost: SimTime::from_ns(100),
            process_cost: SimTime::from_us(2),
            consumers: 20,
        }
    }

    #[test]
    fn middlebox_amortizes_filtering_across_consumers() {
        let w = base();
        let inproc = w.cost(FilterPlacement::InProcess);
        let mid = w.cost(FilterPlacement::Middlebox);
        // In-process: every consumer burns discard time on 95% of 1M eps.
        // Middlebox: one filter core total.
        assert!(mid.cores < inproc.cores);
        let (best, _) = w.best();
        assert_eq!(best, FilterPlacement::Middlebox);
    }

    #[test]
    fn single_consumer_prefers_in_process() {
        // With one consumer there is nothing to amortize, and the
        // standalone filter is strictly worse: it pays the discard-scan
        // cost on *wanted* events too before handing them over.
        let w = FilterWorkload {
            consumers: 1,
            ..base()
        };
        let inproc = w.cost(FilterPlacement::InProcess).cores;
        let mid = w.cost(FilterPlacement::Middlebox).cores;
        assert!(inproc < mid, "inproc {inproc} vs middlebox {mid}");
        assert_eq!(w.best().0, FilterPlacement::InProcess);
    }

    #[test]
    fn overload_makes_in_process_infeasible() {
        // §3's 100 ns/event peak budget: at 10M events/sec even pure
        // discarding at 100 ns/event saturates a core (utilization 1.0),
        // and any processing pushes it over.
        let w = FilterWorkload {
            event_rate: 10_000_000.0,
            wanted_fraction: 0.01,
            discard_cost: SimTime::from_ns(100),
            process_cost: SimTime::from_us(2),
            consumers: 10,
        };
        let inproc = w.cost(FilterPlacement::InProcess);
        assert!(
            !inproc.feasible,
            "utilization {}",
            inproc.peak_core_utilization
        );
        // A faster (hardware-ish) filter restores feasibility.
        let w2 = FilterWorkload {
            discard_cost: SimTime::from_ns(40),
            ..w
        };
        let ded = w2.cost(FilterPlacement::DedicatedCore);
        assert!(ded.feasible);
    }

    #[test]
    fn crossover_with_consumer_count() {
        // The middlebox advantage grows linearly with consumers.
        let few = FilterWorkload {
            consumers: 2,
            ..base()
        };
        let many = FilterWorkload {
            consumers: 200,
            ..base()
        };
        let gain_few =
            few.cost(FilterPlacement::InProcess).cores - few.cost(FilterPlacement::Middlebox).cores;
        let gain_many = many.cost(FilterPlacement::InProcess).cores
            - many.cost(FilterPlacement::Middlebox).cores;
        assert!(gain_many > gain_few * 50.0);
    }

    #[test]
    fn wanted_fraction_one_makes_filtering_pointless() {
        // Everything is wanted: any filtering stage is pure overhead.
        let w = FilterWorkload {
            wanted_fraction: 1.0,
            process_cost: SimTime::from_ns(500),
            ..base()
        };
        let inproc = w.cost(FilterPlacement::InProcess);
        let mid = w.cost(FilterPlacement::Middlebox);
        assert!(inproc.feasible);
        assert!(mid.cores > inproc.cores);
        assert_eq!(w.best().0, FilterPlacement::InProcess);
    }
}
