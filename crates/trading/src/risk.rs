//! Firm-wide position tracking and regulatory market checks.
//!
//! §4.2: firms "track metrics akin to a firm-wide net position, for
//! regulatory reasons and to assess risk", and the SEC prohibits
//! advertising prices that *lock* (bid on one exchange equals another's
//! ask) or *cross* (bid exceeds another's ask), or *trading through*
//! better advertised prices. These checks need an aggregated view of all
//! exchanges — the "broad internal communication" requirement that shapes
//! the firm's network.

use std::collections::BTreeMap;

use tn_wire::{boe, norm};

/// Net-position tracker keyed by interned symbol id.
#[derive(Debug, Default)]
pub struct PositionTracker {
    positions: BTreeMap<u32, i64>,
    /// Signed notional traded (1e-4 dollars), for gross-exposure checks.
    notional: i128,
    fills: u64,
}

impl PositionTracker {
    /// Fresh tracker.
    pub fn new() -> PositionTracker {
        PositionTracker::default()
    }

    /// Apply a fill: positive `qty` for buys, negative for sells.
    pub fn on_fill(&mut self, symbol_id: u32, signed_qty: i64, price: u64) {
        *self.positions.entry(symbol_id).or_insert(0) += signed_qty;
        self.notional += i128::from(signed_qty) * i128::from(price);
        self.fills += 1;
    }

    /// Convenience: apply a BOE fill report for a known side.
    pub fn on_boe_fill(&mut self, symbol_id: u32, side: tn_wire::pitch::Side, fill: &boe::Message) {
        if let boe::Message::Fill { qty, price, .. } = *fill {
            let signed = match side {
                tn_wire::pitch::Side::Buy => i64::from(qty),
                tn_wire::pitch::Side::Sell => -i64::from(qty),
            };
            self.on_fill(symbol_id, signed, price);
        }
    }

    /// Net position in a symbol.
    pub fn position(&self, symbol_id: u32) -> i64 {
        self.positions.get(&symbol_id).copied().unwrap_or(0)
    }

    /// Firm-wide absolute position across symbols.
    pub fn gross_position(&self) -> u64 {
        self.positions.values().map(|p| p.unsigned_abs()).sum()
    }

    /// Signed notional (1e-4 dollars).
    pub fn notional(&self) -> i128 {
        self.notional
    }

    /// Fills applied.
    pub fn fills(&self) -> u64 {
        self.fills
    }
}

/// Side of the aggregated market used in compliance queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketSide {
    /// Best bid across exchanges.
    Bid,
    /// Best ask across exchanges.
    Ask,
}

/// Condition of the national market for a symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketCondition {
    /// Bid < ask everywhere: healthy.
    Normal,
    /// Some bid equals another exchange's ask.
    Locked,
    /// Some bid exceeds another exchange's ask.
    Crossed,
    /// Not enough quotes to judge.
    Unknown,
}

/// Aggregates per-exchange BBOs and answers the §4.2 regulatory queries.
#[derive(Debug, Default)]
pub struct ComplianceMonitor {
    /// (symbol, exchange) → (bid, ask); zero means absent.
    quotes: BTreeMap<(u32, u8), (i64, i64)>,
}

impl ComplianceMonitor {
    /// Fresh monitor.
    pub fn new() -> ComplianceMonitor {
        ComplianceMonitor::default()
    }

    /// Ingest a normalized BBO record.
    pub fn on_record(&mut self, r: &norm::Record) {
        if r.kind != norm::Kind::Bbo {
            return;
        }
        let entry = self
            .quotes
            .entry((r.symbol_id, r.exchange))
            .or_insert((0, 0));
        match r.side {
            b'B' => entry.0 = r.price,
            b'S' => entry.1 = r.price,
            _ => {}
        }
    }

    /// Best price across exchanges on one side, with its exchange.
    pub fn nbbo_side(&self, symbol_id: u32, side: MarketSide) -> Option<(u8, i64)> {
        let mut best: Option<(u8, i64)> = None;
        for (&(s, ex), &(bid, ask)) in &self.quotes {
            if s != symbol_id {
                continue;
            }
            let px = match side {
                MarketSide::Bid => bid,
                MarketSide::Ask => ask,
            };
            if px <= 0 {
                continue;
            }
            best = match (best, side) {
                (None, _) => Some((ex, px)),
                (Some((_, b)), MarketSide::Bid) if px > b => Some((ex, px)),
                (Some((_, b)), MarketSide::Ask) if px < b => Some((ex, px)),
                (b, _) => b,
            };
        }
        best
    }

    /// Classify the aggregated market for a symbol.
    pub fn condition(&self, symbol_id: u32) -> MarketCondition {
        let (Some((bid_ex, bid)), Some((ask_ex, ask))) = (
            self.nbbo_side(symbol_id, MarketSide::Bid),
            self.nbbo_side(symbol_id, MarketSide::Ask),
        ) else {
            return MarketCondition::Unknown;
        };
        if bid_ex == ask_ex {
            // A single exchange cannot lock itself (its engine matches).
            return MarketCondition::Normal;
        }
        if bid > ask {
            MarketCondition::Crossed
        } else if bid == ask {
            MarketCondition::Locked
        } else {
            MarketCondition::Normal
        }
    }

    /// Would posting `price` on `side` lock or cross the market?
    /// (The pre-trade check firms run before advertising a quote.)
    pub fn would_lock_or_cross(&self, symbol_id: u32, side: MarketSide, price: i64) -> bool {
        match side {
            MarketSide::Bid => match self.nbbo_side(symbol_id, MarketSide::Ask) {
                Some((_, ask)) => price >= ask,
                None => false,
            },
            MarketSide::Ask => match self.nbbo_side(symbol_id, MarketSide::Bid) {
                Some((_, bid)) => price <= bid,
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_wire::pitch::Side;

    fn bbo(symbol_id: u32, exchange: u8, side: u8, price: i64) -> norm::Record {
        norm::Record {
            kind: norm::Kind::Bbo,
            exchange,
            side,
            flags: 0,
            symbol_id,
            price,
            size: 100,
            aux: 0,
            src_time_ns: 0,
        }
    }

    #[test]
    fn position_tracking() {
        let mut p = PositionTracker::new();
        p.on_fill(1, 100, 450_0000);
        p.on_fill(1, -30, 451_0000);
        p.on_fill(2, -50, 100_0000);
        assert_eq!(p.position(1), 70);
        assert_eq!(p.position(2), -50);
        assert_eq!(p.position(3), 0);
        assert_eq!(p.gross_position(), 120);
        assert_eq!(p.fills(), 3);
        let expected = 100i128 * 450_0000 - 30 * 451_0000 - 50 * 100_0000;
        assert_eq!(p.notional(), expected);
    }

    #[test]
    fn boe_fill_signs_by_side() {
        let mut p = PositionTracker::new();
        let fill = boe::Message::Fill {
            cl_ord_id: 1,
            exec_id: 1,
            qty: 10,
            price: 5_0000,
            leaves: 0,
        };
        p.on_boe_fill(7, Side::Buy, &fill);
        p.on_boe_fill(7, Side::Sell, &fill);
        assert_eq!(p.position(7), 0);
        assert_eq!(p.fills(), 2);
    }

    #[test]
    fn normal_locked_crossed() {
        let mut m = ComplianceMonitor::new();
        m.on_record(&bbo(1, 1, b'B', 100_0000));
        m.on_record(&bbo(1, 1, b'S', 100_1000));
        assert_eq!(m.condition(1), MarketCondition::Normal);
        // Exchange 2 bids exactly exchange 1's ask: locked.
        m.on_record(&bbo(1, 2, b'B', 100_1000));
        assert_eq!(m.condition(1), MarketCondition::Locked);
        // Exchange 2 bids through it: crossed.
        m.on_record(&bbo(1, 2, b'B', 100_2000));
        assert_eq!(m.condition(1), MarketCondition::Crossed);
        assert_eq!(m.condition(42), MarketCondition::Unknown);
    }

    #[test]
    fn nbbo_aggregation_picks_best_sides() {
        let mut m = ComplianceMonitor::new();
        m.on_record(&bbo(1, 1, b'B', 99_0000));
        m.on_record(&bbo(1, 2, b'B', 100_0000));
        m.on_record(&bbo(1, 1, b'S', 101_0000));
        m.on_record(&bbo(1, 2, b'S', 100_5000));
        assert_eq!(m.nbbo_side(1, MarketSide::Bid), Some((2, 100_0000)));
        assert_eq!(m.nbbo_side(1, MarketSide::Ask), Some((2, 100_5000)));
    }

    #[test]
    fn pre_trade_check_prevents_locking() {
        let mut m = ComplianceMonitor::new();
        m.on_record(&bbo(1, 1, b'S', 100_0000));
        assert!(m.would_lock_or_cross(1, MarketSide::Bid, 100_0000)); // lock
        assert!(m.would_lock_or_cross(1, MarketSide::Bid, 100_5000)); // cross
        assert!(!m.would_lock_or_cross(1, MarketSide::Bid, 99_9000)); // fine
        m.on_record(&bbo(1, 2, b'B', 99_0000));
        assert!(m.would_lock_or_cross(1, MarketSide::Ask, 99_0000));
        assert!(!m.would_lock_or_cross(1, MarketSide::Ask, 99_1000));
        // No quotes on the far side: nothing to lock against.
        assert!(!m.would_lock_or_cross(2, MarketSide::Bid, 10_000_000));
    }
}
