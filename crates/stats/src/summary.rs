//! Exact sample summaries.

/// Collects `u64` samples and reports exact order statistics — the
/// min/avg/median/max columns of Table 1 and every latency table in the
/// experiment harness.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<u64>,
    sorted: bool,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Record many samples.
    pub fn extend(&mut self, vs: impl IntoIterator<Item = u64>) {
        self.samples.extend(vs);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&mut self) -> u64 {
        self.sort();
        self.samples.first().copied().unwrap_or(0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&mut self) -> u64 {
        self.sort();
        self.samples.last().copied().unwrap_or(0)
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u128 = self.samples.iter().map(|&v| u128::from(v)).sum();
        total as f64 / self.samples.len() as f64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.samples.iter().map(|&v| u128::from(v)).sum()
    }

    /// Median, i.e. `percentile(50.0)`.
    pub fn median(&mut self) -> u64 {
        self.percentile(50.0)
    }

    /// Exact percentile by the nearest-rank method (0 when empty).
    /// `p` is in percent: `percentile(99.9)` is the 99.9th percentile.
    pub fn percentile(&mut self, p: f64) -> u64 {
        self.sort();
        if self.samples.is_empty() {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// The median, i.e. `percentile(50.0)`.
    pub fn p50(&mut self) -> u64 {
        self.percentile(50.0)
    }

    /// The 99th percentile.
    pub fn p99(&mut self) -> u64 {
        self.percentile(99.0)
    }

    /// The 99.9th percentile, or `None` with fewer than 1,000 samples.
    ///
    /// Below 1,000 samples the nearest-rank 99.9th percentile collapses
    /// onto the maximum — a tail estimate with no tail behind it. Earlier
    /// versions returned that maximum silently; callers that want the
    /// clamped value can still say `percentile(99.9)` explicitly.
    pub fn p999(&mut self) -> Option<u64> {
        if self.samples.len() < 1000 {
            return None;
        }
        Some(self.percentile(99.9))
    }

    /// Max minus min (0 when empty): the cross-sample spread, used by the
    /// experiment lab to report cross-seed variation within a sweep cell.
    pub fn spread(&mut self) -> u64 {
        self.max() - self.min()
    }

    /// Borrow the raw samples (unsorted order not guaranteed after
    /// percentile queries).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroes() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0);
    }

    #[test]
    fn order_statistics() {
        let mut s = Summary::new();
        s.extend([5, 1, 9, 3, 7]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert_eq!(s.median(), 5);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sum(), 25);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::new();
        s.extend(1..=100);
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(99.0), 99);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(0.5), 1);
        assert_eq!(s.percentile(99.5), 100);
    }

    #[test]
    fn named_percentile_helpers() {
        let mut s = Summary::new();
        s.extend(1..=1000);
        assert_eq!(s.p50(), 500);
        assert_eq!(s.p99(), 990);
        assert_eq!(s.p999(), Some(s.percentile(99.9)));
        assert_eq!(s.p50(), s.percentile(50.0));
    }

    #[test]
    fn p999_needs_a_real_tail() {
        // Regression: with n < 1000 the nearest-rank 99.9th percentile is
        // just the max; p999 must refuse rather than clamp silently.
        let mut s = Summary::new();
        s.extend(1..=999);
        assert_eq!(s.p999(), None);
        assert_eq!(s.percentile(99.9), 999, "explicit clamp still available");
        s.record(1000);
        assert_eq!(s.p999(), Some(1000));
    }

    #[test]
    fn spread_is_max_minus_min() {
        let mut s = Summary::new();
        assert_eq!(s.spread(), 0);
        s.extend([40, 10, 25]);
        assert_eq!(s.spread(), 30);
        s.record(100);
        assert_eq!(s.spread(), 90);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut s = Summary::new();
        s.record(10);
        assert_eq!(s.max(), 10);
        s.record(20);
        assert_eq!(s.max(), 20); // re-sorts after mutation
        s.record(5);
        assert_eq!(s.min(), 5);
    }

    #[test]
    fn huge_values_do_not_overflow_mean() {
        let mut s = Summary::new();
        s.extend([u64::MAX, u64::MAX]);
        assert!(s.mean() > 1e19);
        assert_eq!(s.sum(), 2 * u128::from(u64::MAX));
    }
}
