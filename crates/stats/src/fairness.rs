//! Delivery-fairness accounting: group per-subscriber delivery times by
//! event and summarize the spread.
//!
//! A fairness measurement asks: when one published event reaches `S`
//! subscribers, how far apart are the delivery instants? The window
//! collects `(event key, delivery time)` observations — the key is
//! whatever survives replication unchanged (tn-sim frame ids do) — and
//! reduces each *complete* group (exactly `S` deliveries) to its spread
//! `max − min`. Incomplete groups (events still in flight at the
//! deadline, or thinned by loss) are excluded from the spread summary
//! but remain countable, so completeness is itself reportable.

use std::collections::BTreeMap;

use crate::Summary;

/// Groups per-subscriber delivery times by event key. See module docs.
#[derive(Debug, Clone)]
pub struct FairnessWindow {
    expected: usize,
    groups: BTreeMap<u64, Vec<u64>>,
}

impl FairnessWindow {
    /// A window expecting `expected` deliveries (one per subscriber)
    /// per event.
    pub fn new(expected: usize) -> FairnessWindow {
        assert!(
            expected >= 1,
            "a fairness window needs at least one subscriber"
        );
        FairnessWindow {
            expected,
            groups: BTreeMap::new(),
        }
    }

    /// Record one delivery of event `key` at time `at_ps`.
    pub fn observe(&mut self, key: u64, at_ps: u64) {
        self.groups.entry(key).or_default().push(at_ps);
    }

    /// Deliveries expected per event.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Distinct events observed so far.
    pub fn events(&self) -> usize {
        self.groups.len()
    }

    /// Events with exactly the expected number of deliveries.
    pub fn complete(&self) -> usize {
        self.groups.len() - self.incomplete()
    }

    /// Events missing (or exceeding) deliveries.
    pub fn incomplete(&self) -> usize {
        self.groups
            .values()
            .filter(|g| g.len() != self.expected)
            .count()
    }

    /// Per-event delivery spread (`max − min`, ps) over complete groups,
    /// in event-key order.
    pub fn spreads(&self) -> Summary {
        let mut s = Summary::new();
        for g in self.groups.values() {
            if g.len() != self.expected {
                continue;
            }
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for &t in g {
                lo = lo.min(t);
                hi = hi.max(t);
            }
            s.record(hi - lo);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_cover_only_complete_groups() {
        let mut w = FairnessWindow::new(3);
        // Event 1: complete, spread 40.
        w.observe(1, 100);
        w.observe(1, 140);
        w.observe(1, 120);
        // Event 2: incomplete (2 of 3).
        w.observe(2, 500);
        w.observe(2, 700);
        // Event 3: complete, spread 0.
        w.observe(3, 900);
        w.observe(3, 900);
        w.observe(3, 900);
        assert_eq!(w.events(), 3);
        assert_eq!(w.complete(), 2);
        assert_eq!(w.incomplete(), 1);
        let mut s = w.spreads();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 40);
        assert_eq!(s.min(), 0);
        assert_eq!(s.spread(), 40);
    }

    #[test]
    fn single_subscriber_spread_is_always_zero() {
        let mut w = FairnessWindow::new(1);
        w.observe(10, 123);
        w.observe(11, 456);
        let mut s = w.spreads();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn empty_window_yields_empty_summary() {
        let w = FairnessWindow::new(4);
        assert_eq!(w.events(), 0);
        assert_eq!(w.complete(), 0);
        assert!(w.spreads().is_empty());
    }

    #[test]
    fn overfilled_groups_count_as_incomplete() {
        let mut w = FairnessWindow::new(2);
        w.observe(1, 10);
        w.observe(1, 20);
        w.observe(1, 30); // duplicate delivery — not a clean group
        assert_eq!(w.complete(), 0);
        assert_eq!(w.incomplete(), 1);
        assert!(w.spreads().is_empty());
    }
}
