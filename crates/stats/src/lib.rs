//! # tn-stats — measurement utilities
//!
//! Statistics primitives shared by the simulator and the experiment
//! harness: exact sample summaries (min/avg/median/percentiles, the
//! columns of Table 1), fixed-width window counters (the 1-second and
//! 100-microsecond windows of Figures 2b/2c), streaming histograms, and
//! latency decomposition (the network-vs-host split of §4.1).
//!
//! Everything here operates on plain `u64`/`f64` values so the crate has
//! no dependencies; callers pick the unit (picoseconds, events, bytes).

mod decompose;
mod fairness;
mod hist;
mod summary;
mod windows;

pub use decompose::{Decomposition, Segment};
pub use fairness::FairnessWindow;
pub use hist::{Histogram, Percentile};
pub use summary::Summary;
pub use windows::WindowCounter;
