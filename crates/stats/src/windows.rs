//! Fixed-width window counting.

use crate::summary::Summary;

/// Counts events into fixed-width windows along a timeline — the
/// mechanism behind Figure 2(b) (1-second windows across a trading day)
/// and Figure 2(c) (100-microsecond windows across the busiest second).
///
/// Windows are `[origin + i*width, origin + (i+1)*width)`. Events before
/// `origin` are ignored; the counter grows to cover the latest event seen.
#[derive(Debug, Clone)]
pub struct WindowCounter {
    origin: u64,
    width: u64,
    counts: Vec<u64>,
}

impl WindowCounter {
    /// Counter starting at `origin` with windows of `width` (any unit).
    pub fn new(origin: u64, width: u64) -> WindowCounter {
        assert!(width > 0, "window width must be positive");
        WindowCounter {
            origin,
            width,
            counts: Vec::new(),
        }
    }

    /// Record `n` events at time `t`.
    pub fn add(&mut self, t: u64, n: u64) {
        if t < self.origin {
            return;
        }
        let idx = ((t - self.origin) / self.width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Record one event at time `t`.
    pub fn record(&mut self, t: u64) {
        self.add(t, 1);
    }

    /// Per-window counts, index 0 = first window.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Window width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Start time of window `idx`.
    pub fn window_start(&self, idx: usize) -> u64 {
        self.origin + idx as u64 * self.width
    }

    /// Index and count of the busiest window (`None` when empty).
    pub fn busiest(&self) -> Option<(usize, u64)> {
        self.counts
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Summary over window counts, optionally ignoring empty windows —
    /// Figure 2(b)'s "median second" statistic counts only in-session
    /// (non-empty) windows.
    pub fn summary(&self, skip_empty: bool) -> Summary {
        let mut s = Summary::new();
        s.extend(
            self.counts
                .iter()
                .copied()
                .filter(|&c| !skip_empty || c > 0),
        );
        s
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_correct_windows() {
        let mut w = WindowCounter::new(100, 10);
        w.record(100); // window 0
        w.record(109); // window 0
        w.record(110); // window 1
        w.record(135); // window 3
        w.record(50); // before origin: ignored
        assert_eq!(w.counts(), &[2, 1, 0, 1]);
        assert_eq!(w.total(), 4);
        assert_eq!(w.window_start(3), 130);
        assert_eq!(w.width(), 10);
    }

    #[test]
    fn busiest_window() {
        let mut w = WindowCounter::new(0, 1);
        assert_eq!(w.busiest(), None);
        w.add(0, 5);
        w.add(3, 9);
        w.add(7, 9); // tie: earliest wins
        assert_eq!(w.busiest(), Some((3, 9)));
    }

    #[test]
    fn summary_skip_empty() {
        let mut w = WindowCounter::new(0, 1);
        w.add(0, 4);
        w.add(5, 8); // windows 1..=4 are empty
        let mut all = w.summary(false);
        assert_eq!(all.count(), 6);
        assert_eq!(all.median(), 0);
        let mut nonempty = w.summary(true);
        assert_eq!(nonempty.count(), 2);
        assert_eq!(nonempty.min(), 4);
    }

    #[test]
    fn bulk_add() {
        let mut w = WindowCounter::new(0, 100);
        w.add(50, 1000);
        w.add(150, 2000);
        assert_eq!(w.counts(), &[1000, 2000]);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        WindowCounter::new(0, 0);
    }
}
