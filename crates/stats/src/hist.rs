//! Streaming histogram with fixed-width bins.

/// A bounded, fixed-width-bin histogram for cheap distribution capture on
/// hot paths (frame lengths, queue depths). Values beyond the last bin
/// accumulate in an overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: u64,
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram covering `[lo, lo + bins*bin_width)`.
    pub fn new(lo: u64, bin_width: u64, bins: usize) -> Histogram {
        assert!(bin_width > 0 && bins > 0);
        Histogram {
            lo,
            bin_width,
            // audit:allow(hotpath-alloc): backing store allocated once per metric on first observation; steady-state observe is alloc-free
            bins: vec![0; bins],
            overflow: 0,
            underflow: 0,
            count: 0,
        }
    }

    /// Record a value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((v - self.lo) / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Inclusive lower edge of bin `idx`.
    pub fn bin_lo(&self, idx: usize) -> u64 {
        self.lo + idx as u64 * self.bin_width
    }

    /// Nearest-rank percentile over *all* recorded values, including
    /// under/overflow. `q` is in percent. Because a fixed-bin histogram
    /// cannot name a value outside its range, ranks that land in the
    /// underflow or overflow buckets are reported as such rather than
    /// guessed; in-range ranks report the inclusive upper edge of the
    /// containing bin (a conservative estimate, exact for bin width 1).
    pub fn percentile(&self, q: f64) -> Percentile {
        if self.count == 0 {
            return Percentile::Empty;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = (((q / 100.0) * self.count as f64).ceil() as u64).max(1);
        if rank <= self.underflow {
            return Percentile::Underflow;
        }
        let mut cum = self.underflow;
        for (idx, &c) in self.bins.iter().enumerate() {
            cum += c;
            if rank <= cum {
                return Percentile::Value(self.bin_lo(idx) + self.bin_width - 1);
            }
        }
        Percentile::Overflow
    }

    /// Fraction of in-range samples at or below the top of bin `idx`.
    pub fn cdf_at(&self, idx: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=idx].iter().sum();
        cum as f64 / in_range as f64
    }
}

/// Result of [`Histogram::percentile`]: a histogram only knows values
/// inside its range, so out-of-range ranks are reported explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Percentile {
    /// No samples recorded.
    Empty,
    /// The rank falls among samples below the histogram range.
    Underflow,
    /// Inclusive upper edge of the bin containing the rank.
    Value(u64),
    /// The rank falls among samples at or above the top of the range.
    Overflow,
}

impl Percentile {
    /// The in-range value, if any.
    pub fn value(self) -> Option<u64> {
        match self {
            Percentile::Value(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_fall_into_bins() {
        let mut h = Histogram::new(0, 10, 5); // [0,50)
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn underflow_counted() {
        let mut h = Histogram::new(100, 10, 2);
        h.record(99);
        h.record(100);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.bins(), &[1, 0]);
        assert_eq!(h.bin_lo(1), 110);
    }

    #[test]
    fn cdf() {
        let mut h = Histogram::new(0, 1, 4);
        for v in [0, 1, 1, 2] {
            h.record(v);
        }
        assert!((h.cdf_at(0) - 0.25).abs() < 1e-9);
        assert!((h.cdf_at(1) - 0.75).abs() < 1e-9);
        assert!((h.cdf_at(3) - 1.0).abs() < 1e-9);
        let empty = Histogram::new(0, 1, 1);
        assert_eq!(empty.cdf_at(0), 0.0);
    }

    #[test]
    fn percentile_in_range() {
        let mut h = Histogram::new(0, 1, 100); // width-1 bins: exact
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Percentile::Value(49));
        assert_eq!(h.percentile(99.0), Percentile::Value(98));
        assert_eq!(h.percentile(100.0), Percentile::Value(99));
        assert_eq!(h.percentile(0.0), Percentile::Value(0));
        assert_eq!(h.percentile(50.0).value(), Some(49));
    }

    #[test]
    fn percentile_handles_under_and_overflow() {
        let mut h = Histogram::new(100, 10, 2); // [100, 120)
        h.record(5); // underflow
        h.record(105);
        h.record(115);
        h.record(500); // overflow
        assert_eq!(h.percentile(10.0), Percentile::Underflow);
        assert_eq!(h.percentile(50.0), Percentile::Value(109));
        assert_eq!(h.percentile(75.0), Percentile::Value(119));
        assert_eq!(h.percentile(99.0), Percentile::Overflow);
        assert_eq!(h.percentile(99.0).value(), None);
        assert_eq!(Histogram::new(0, 1, 1).percentile(50.0), Percentile::Empty);
    }
}
