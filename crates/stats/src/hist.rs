//! Streaming histogram with fixed-width bins.

/// A bounded, fixed-width-bin histogram for cheap distribution capture on
/// hot paths (frame lengths, queue depths). Values beyond the last bin
/// accumulate in an overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: u64,
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
    underflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram covering `[lo, lo + bins*bin_width)`.
    pub fn new(lo: u64, bin_width: u64, bins: usize) -> Histogram {
        assert!(bin_width > 0 && bins > 0);
        Histogram {
            lo,
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            underflow: 0,
            count: 0,
        }
    }

    /// Record a value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((v - self.lo) / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Inclusive lower edge of bin `idx`.
    pub fn bin_lo(&self, idx: usize) -> u64 {
        self.lo + idx as u64 * self.bin_width
    }

    /// Fraction of in-range samples at or below the top of bin `idx`.
    pub fn cdf_at(&self, idx: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=idx].iter().sum();
        cum as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_fall_into_bins() {
        let mut h = Histogram::new(0, 10, 5); // [0,50)
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn underflow_counted() {
        let mut h = Histogram::new(100, 10, 2);
        h.record(99);
        h.record(100);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.bins(), &[1, 0]);
        assert_eq!(h.bin_lo(1), 110);
    }

    #[test]
    fn cdf() {
        let mut h = Histogram::new(0, 1, 4);
        for v in [0, 1, 1, 2] {
            h.record(v);
        }
        assert!((h.cdf_at(0) - 0.25).abs() < 1e-9);
        assert!((h.cdf_at(1) - 0.75).abs() < 1e-9);
        assert!((h.cdf_at(3) - 1.0).abs() < 1e-9);
        let empty = Histogram::new(0, 1, 1);
        assert_eq!(empty.cdf_at(0), 0.0);
    }
}
