//! Latency decomposition: where did the time go?
//!
//! §4.1's headline observation — "half of the overall time through the
//! system is spent in the network" — is a decomposition claim. This module
//! aggregates labeled duration segments (switch hops, wire propagation,
//! software hops) and reports each category's share.

use std::collections::BTreeMap;

/// One labeled duration contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Category label, e.g. `"switch"`, `"wire"`, `"software"`.
    pub category: &'static str,
    /// Duration (caller-chosen unit; picoseconds throughout the workspace).
    pub duration: u64,
}

/// Accumulates segments and reports totals and shares per category.
#[derive(Debug, Clone, Default)]
pub struct Decomposition {
    totals: BTreeMap<&'static str, u64>,
}

impl Decomposition {
    /// Empty decomposition.
    pub fn new() -> Decomposition {
        Decomposition::default()
    }

    /// Add a duration to a category.
    pub fn add(&mut self, category: &'static str, duration: u64) {
        *self.totals.entry(category).or_insert(0) += duration;
    }

    /// Add a pre-built segment.
    pub fn add_segment(&mut self, seg: &Segment) {
        self.add(seg.category, seg.duration);
    }

    /// Total across all categories.
    pub fn total(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Total for one category (0 if never seen).
    pub fn category_total(&self, category: &str) -> u64 {
        self.totals.get(category).copied().unwrap_or(0)
    }

    /// Fraction of the total attributable to `category` (0.0 when empty).
    pub fn share(&self, category: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.category_total(category) as f64 / total as f64
    }

    /// All categories with totals, sorted by label.
    pub fn breakdown(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.totals.iter().map(|(&k, &v)| (k, v))
    }

    /// Merge another decomposition into this one.
    pub fn merge(&mut self, other: &Decomposition) {
        for (k, v) in other.breakdown() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut d = Decomposition::new();
        // §4.1's arithmetic: 12 switch hops x 500 ns vs 3 software hops x 2 us.
        d.add("switch", 12 * 500);
        d.add("software", 3 * 2000);
        assert_eq!(d.total(), 12_000);
        assert!((d.share("switch") - 0.5).abs() < 1e-9);
        assert!((d.share("software") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_category_is_zero() {
        let d = Decomposition::new();
        assert_eq!(d.category_total("wire"), 0);
        assert_eq!(d.share("wire"), 0.0);
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn segments_and_merge() {
        let mut a = Decomposition::new();
        a.add_segment(&Segment {
            category: "wire",
            duration: 100,
        });
        let mut b = Decomposition::new();
        b.add("wire", 50);
        b.add("switch", 25);
        a.merge(&b);
        assert_eq!(a.category_total("wire"), 150);
        assert_eq!(a.category_total("switch"), 25);
        let cats: Vec<_> = a.breakdown().collect();
        assert_eq!(cats, vec![("switch", 25), ("wire", 150)]);
    }
}
