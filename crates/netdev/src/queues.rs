//! Queueing building blocks: token bucket and byte-bounded FIFO.

use std::collections::VecDeque;

use tn_sim::SimTime;

/// A token-bucket rate limiter (tokens are bytes).
///
/// Used to shape retransmission servers and to model policers on shared
/// infrastructure. Deterministic: refill is computed lazily from elapsed
/// time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_sec: u64,
    capacity: u64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Bucket refilling at `rate_bytes_per_sec` with burst `capacity`
    /// bytes; starts full.
    pub fn new(rate_bytes_per_sec: u64, capacity: u64) -> TokenBucket {
        assert!(rate_bytes_per_sec > 0 && capacity > 0);
        TokenBucket {
            rate_bytes_per_sec,
            capacity,
            tokens: capacity as f64,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_sub(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens =
            (self.tokens + elapsed * self.rate_bytes_per_sec as f64).min(self.capacity as f64);
    }

    /// Try to consume `bytes` at time `now`; `true` on success.
    pub fn try_consume(&mut self, now: SimTime, bytes: usize) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens as u64
    }
}

/// A byte-bounded FIFO of `(len, item)` entries. Tracks high-water marks
/// and drop counts for queueing analysis.
#[derive(Debug)]
pub struct ByteFifo<T> {
    items: VecDeque<(usize, T)>,
    bytes: usize,
    capacity_bytes: usize,
    dropped: u64,
    high_water: usize,
}

impl<T> ByteFifo<T> {
    /// FIFO holding at most `capacity_bytes` of queued payload.
    pub fn new(capacity_bytes: usize) -> ByteFifo<T> {
        ByteFifo {
            items: VecDeque::new(),
            bytes: 0,
            capacity_bytes,
            dropped: 0,
            high_water: 0,
        }
    }

    /// Enqueue; `false` (and a drop count) if the item did not fit.
    pub fn push(&mut self, len: usize, item: T) -> bool {
        if self.bytes + len > self.capacity_bytes {
            self.dropped += 1;
            return false;
        }
        self.bytes += len;
        self.high_water = self.high_water.max(self.bytes);
        self.items.push_back((len, item));
        true
    }

    /// Dequeue the oldest item.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        let (len, item) = self.items.pop_front()?;
        self.bytes -= len;
        Some((len, item))
    }

    /// Queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queued bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Items rejected for lack of space.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum bytes ever queued.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_limits_rate() {
        let mut tb = TokenBucket::new(1000, 500); // 1 kB/s, 500 B burst
        assert!(tb.try_consume(SimTime::ZERO, 500)); // burst drains the bucket
        assert!(!tb.try_consume(SimTime::ZERO, 1));
        // After 100 ms, 100 bytes refilled.
        let t = SimTime::from_ms(100);
        assert!(tb.try_consume(t, 100));
        assert!(!tb.try_consume(t, 1));
        // Never exceeds capacity.
        let much_later = SimTime::from_secs(100);
        assert_eq!(tb.available(much_later), 500);
    }

    #[test]
    fn token_bucket_ignores_time_regression() {
        let mut tb = TokenBucket::new(1000, 100);
        assert!(tb.try_consume(SimTime::from_secs(1), 100));
        // An earlier timestamp must not mint tokens.
        assert!(!tb.try_consume(SimTime::ZERO, 50));
    }

    #[test]
    fn byte_fifo_bounds_and_accounting() {
        let mut q: ByteFifo<u32> = ByteFifo::new(250);
        assert!(q.push(100, 1));
        assert!(q.push(100, 2));
        assert!(!q.push(100, 3)); // would exceed 250
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 200);
        assert_eq!(q.high_water(), 200);
        assert_eq!(q.pop(), Some((100, 1)));
        assert!(q.push(150, 4)); // space freed
        assert_eq!(q.high_water(), 250);
        assert_eq!(q.pop(), Some((100, 2)));
        assert_eq!(q.pop(), Some((150, 4)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
