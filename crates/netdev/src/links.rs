//! Link models with serialization, propagation, queueing and loss.

use tn_sim::{DropReason, Link, LinkOutcome, SimTime};

/// Light propagation delay through optical fiber (refractive index ≈ 1.468,
/// so ~204,000 km/s): about 4.9 µs per kilometre.
pub fn fiber_propagation(km: f64) -> SimTime {
    SimTime::from_secs_f64(km / 204_000.0)
}

/// Light propagation delay through air for microwave/millimetre links
/// (~299,700 km/s) — the speed advantage that makes lossy microwave links
/// worth operating between colos (§2).
pub fn microwave_propagation(km: f64) -> SimTime {
    SimTime::from_secs_f64(km / 299_700.0)
}

/// A directional Ethernet-style link.
///
/// Models:
/// * serialization at the line rate,
/// * a byte-bounded egress FIFO (frames that would start transmitting
///   after more than `queue_bytes` of backlog are dropped),
/// * fixed one-way propagation delay,
/// * independent random loss (microwave fade / injected faults),
/// * an MTU (oversized frames are dropped, never fragmented — feeds do
///   not fragment).
#[derive(Debug, Clone)]
pub struct EtherLink {
    rate_bps: u64,
    propagation: SimTime,
    queue_bytes: usize,
    mtu: usize,
    loss: f64,
    /// Absolute time the transmitter becomes idle.
    busy_until: SimTime,
}

impl EtherLink {
    /// A lossless link with effectively unbounded queueing.
    pub fn new(rate_bps: u64, propagation: SimTime) -> EtherLink {
        assert!(rate_bps > 0);
        EtherLink {
            rate_bps,
            propagation,
            queue_bytes: usize::MAX,
            mtu: 9216,
            loss: 0.0,
            busy_until: SimTime::ZERO,
        }
    }

    /// The standard 10 GbE cross-connect/colo link (§2: "usually via
    /// 10 Gbps Ethernet").
    pub fn ten_gig(propagation: SimTime) -> EtherLink {
        EtherLink::new(10_000_000_000, propagation)
    }

    /// 25 GbE, for fabric uplinks.
    pub fn twenty_five_gig(propagation: SimTime) -> EtherLink {
        EtherLink::new(25_000_000_000, propagation)
    }

    /// 100 GbE spine links.
    pub fn hundred_gig(propagation: SimTime) -> EtherLink {
        EtherLink::new(100_000_000_000, propagation)
    }

    /// A metro microwave link: lower bandwidth, lower latency, lossy.
    /// Typical deployed systems run hundreds of Mbps with ~0.01–1% frame
    /// loss in clear air, worse in rain.
    pub fn microwave(rate_bps: u64, km: f64, loss: f64) -> EtherLink {
        EtherLink::new(rate_bps, microwave_propagation(km)).with_loss(loss)
    }

    /// Bound the egress queue (in bytes of backlog beyond the frame in
    /// flight). Overflow drops the offered frame.
    pub fn with_queue_bytes(mut self, bytes: usize) -> EtherLink {
        self.queue_bytes = bytes;
        self
    }

    /// Set an MTU (whole-frame bytes).
    pub fn with_mtu(mut self, mtu: usize) -> EtherLink {
        self.mtu = mtu;
        self
    }

    /// Add independent per-frame loss probability.
    pub fn with_loss(mut self, loss: f64) -> EtherLink {
        assert!((0.0..=1.0).contains(&loss));
        self.loss = loss;
        self
    }

    /// Nominal line rate.
    pub fn rate(&self) -> u64 {
        self.rate_bps
    }

    /// Current queue backlog (in time) if a frame were offered at `now`.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }
}

impl Link for EtherLink {
    fn transmit(&mut self, now: SimTime, len: usize, coin: f64) -> LinkOutcome {
        if len > self.mtu {
            return LinkOutcome::Drop(DropReason::Mtu);
        }
        if self.loss > 0.0 && coin < self.loss {
            return LinkOutcome::Drop(DropReason::RandomLoss);
        }
        // Backlog check: convert the queue bound to time at line rate.
        let backlog = self.busy_until.saturating_sub(now);
        if self.queue_bytes != usize::MAX {
            let max_backlog = SimTime::serialization(self.queue_bytes, self.rate_bps);
            if backlog > max_backlog {
                return LinkOutcome::Drop(DropReason::QueueOverflow);
            }
        }
        let start = now.max(self.busy_until);
        let done = start + SimTime::serialization(len, self.rate_bps);
        self.busy_until = done;
        LinkOutcome::Deliver(done + self.propagation)
    }

    fn propagation(&self) -> SimTime {
        self.propagation
    }

    fn uses_kernel_coin(&self) -> bool {
        // The loss check compares the kernel-drawn coin; a lossless link
        // ignores it entirely, so only lossy links pin a run to the
        // serial PRNG stream (and thus refuse to be cut across shards).
        self.loss > 0.0
    }

    fn rate_bps(&self) -> Option<u64> {
        Some(self.rate_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_plus_propagation() {
        let mut l = EtherLink::ten_gig(SimTime::from_ns(100));
        // 1250 bytes at 10 Gbps = 1 us serialization.
        match l.transmit(SimTime::ZERO, 1250, 0.9) {
            LinkOutcome::Deliver(t) => assert_eq!(t, SimTime::from_us(1) + SimTime::from_ns(100)),
            other => panic!("{other:?}"),
        }
        assert_eq!(l.rate_bps(), Some(10_000_000_000));
        assert_eq!(l.propagation(), SimTime::from_ns(100));
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut l = EtherLink::ten_gig(SimTime::ZERO);
        let first = l.transmit(SimTime::ZERO, 1250, 0.9);
        let second = l.transmit(SimTime::ZERO, 1250, 0.9);
        assert_eq!(first, LinkOutcome::Deliver(SimTime::from_us(1)));
        // Second frame waits for the first to serialize.
        assert_eq!(second, LinkOutcome::Deliver(SimTime::from_us(2)));
        assert_eq!(l.backlog(SimTime::ZERO), SimTime::from_us(2));
        // After the wire drains, no queueing remains.
        let third = l.transmit(SimTime::from_us(10), 1250, 0.9);
        assert_eq!(third, LinkOutcome::Deliver(SimTime::from_us(11)));
    }

    #[test]
    fn bounded_queue_drops_on_overflow() {
        // Queue bound of 2500 bytes = 2 us of backlog at 10G.
        let mut l = EtherLink::ten_gig(SimTime::ZERO).with_queue_bytes(2500);
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match l.transmit(SimTime::ZERO, 1250, 0.9) {
                LinkOutcome::Deliver(_) => delivered += 1,
                LinkOutcome::Drop(DropReason::QueueOverflow) => dropped += 1,
                other => panic!("{other:?}"),
            }
        }
        // 1 in flight + ~2 queued fit; the rest drop.
        assert!((2..=4).contains(&delivered), "delivered={delivered}");
        assert_eq!(delivered + dropped, 10);
    }

    #[test]
    fn mtu_enforced() {
        let mut l = EtherLink::ten_gig(SimTime::ZERO).with_mtu(1514);
        assert_eq!(
            l.transmit(SimTime::ZERO, 1515, 0.9),
            LinkOutcome::Drop(DropReason::Mtu)
        );
        assert!(matches!(
            l.transmit(SimTime::ZERO, 1514, 0.9),
            LinkOutcome::Deliver(_)
        ));
    }

    #[test]
    fn loss_uses_the_coin() {
        let mut l = EtherLink::ten_gig(SimTime::ZERO).with_loss(0.25);
        assert_eq!(
            l.transmit(SimTime::ZERO, 100, 0.1),
            LinkOutcome::Drop(DropReason::RandomLoss)
        );
        assert!(matches!(
            l.transmit(SimTime::ZERO, 100, 0.3),
            LinkOutcome::Deliver(_)
        ));
    }

    #[test]
    fn propagation_profiles_order_correctly() {
        // Microwave beats fiber over the same distance (the reason firms
        // deploy it, §2), by roughly a third.
        let f = fiber_propagation(60.0);
        let m = microwave_propagation(60.0);
        assert!(m < f);
        let ratio = f.as_ps() as f64 / m.as_ps() as f64;
        assert!(ratio > 1.4 && ratio < 1.5, "ratio={ratio}");
        // ~60 km of fiber is ~294 us.
        assert!(f > SimTime::from_us(290) && f < SimTime::from_us(300));
    }

    #[test]
    fn microwave_constructor() {
        let mut l = EtherLink::microwave(1_000_000_000, 50.0, 0.001);
        assert_eq!(l.rate(), 1_000_000_000);
        assert!(matches!(
            l.transmit(SimTime::ZERO, 100, 0.5),
            LinkOutcome::Deliver(_)
        ));
    }
}
