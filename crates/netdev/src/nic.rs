//! NIC / host-interface model.
//!
//! A [`Nic`] sits between the wire and a host application node:
//!
//! ```text
//!   wire  <->  port WIRE (0)  [Nic]  port HOST (1)  <->  application
//! ```
//!
//! Receive path: frames from the wire pay a fixed receive latency (PCIe +
//! driver/stack) and drain through a bounded ring at a maximum packet
//! rate. When merged bursty feeds exceed the drain rate the ring fills
//! and frames drop — the §4.3 merge-bottleneck failure mode.
//! Transmit path: frames from the host pay a fixed transmit latency.
//!
//! Two profiles match §3's numbers: a kernel-bypass path at ~800 ns
//! (sub-microsecond "hop through a software host") and a kernel path at
//! several microseconds.

use tn_sim::{Context, Frame, Node, PortId, SimTime, TimerToken};

use crate::service::TxQueue;

/// Wire-facing port of a [`Nic`].
pub const WIRE: PortId = PortId(0);
/// Host-facing port of a [`Nic`].
pub const HOST: PortId = PortId(1);

/// Latency/capacity parameters for a NIC.
#[derive(Debug, Clone, Copy)]
pub struct NicProfile {
    /// Wire→host latency per frame (DMA, interrupt/poll, stack).
    pub rx_latency: SimTime,
    /// Host→wire latency per frame.
    pub tx_latency: SimTime,
    /// Per-frame service time of the receive path (drain rate ceiling);
    /// this is what saturates under merged bursts.
    pub rx_service: SimTime,
    /// Receive ring capacity in frames.
    pub rx_ring: usize,
}

impl NicProfile {
    /// Kernel-bypass (Onload/ef_vi-style) profile: ~800 ns hop, ~15 Mpps.
    pub fn kernel_bypass() -> NicProfile {
        NicProfile {
            rx_latency: SimTime::from_ns(800),
            tx_latency: SimTime::from_ns(800),
            rx_service: SimTime::from_ns(65),
            rx_ring: 1024,
        }
    }

    /// Kernel network stack profile: several microseconds per hop and a
    /// lower packet-rate ceiling.
    pub fn kernel_stack() -> NicProfile {
        NicProfile {
            rx_latency: SimTime::from_us(4),
            tx_latency: SimTime::from_us(4),
            rx_service: SimTime::from_ns(600),
            rx_ring: 4096,
        }
    }

    /// Override the receive-ring size.
    pub fn with_rx_ring(mut self, frames: usize) -> NicProfile {
        self.rx_ring = frames;
        self
    }
}

/// Receive/transmit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames delivered wire→host.
    pub rx_delivered: u64,
    /// Frames dropped at the receive ring.
    pub rx_dropped: u64,
    /// Frames sent host→wire.
    pub tx_sent: u64,
}

/// The NIC node. See module docs for the port convention.
pub struct Nic {
    profile: NicProfile,
    rx: TxQueue,
    tx: TxQueue,
    stats: NicStats,
}

const RX_TOKEN: u64 = 1;
const TX_TOKEN: u64 = 2;

impl Nic {
    /// Build a NIC with the given profile.
    pub fn new(profile: NicProfile) -> Nic {
        Nic {
            profile,
            rx: TxQueue::new(RX_TOKEN)
                .with_capacity(profile.rx_ring)
                .with_pipeline(profile.rx_latency),
            tx: TxQueue::new(TX_TOKEN).with_pipeline(profile.tx_latency),
            stats: NicStats::default(),
        }
    }

    /// Counters so far. Ring drops are visible here, mirroring the
    /// `rx_nodesc_drop` counters operators watch on real NICs.
    pub fn stats(&self) -> NicStats {
        NicStats {
            rx_dropped: self.rx.dropped(),
            ..self.stats
        }
    }
}

impl Node for Nic {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        match port {
            WIRE => {
                // The frame occupies the drain engine for `rx_service`
                // (the packet-rate ceiling) and then traverses a fixed
                // `rx_latency` pipeline before reaching the host.
                if self
                    .rx
                    .send_after(ctx, self.profile.rx_service, HOST, frame)
                {
                    self.stats.rx_delivered += 1;
                }
            }
            HOST => {
                self.stats.tx_sent += 1;
                self.tx.send_after(ctx, SimTime::ZERO, WIRE, frame);
            }
            // Wiring invariant: ports are fixed at topology build time, so
            // failing fast beats silently eating frames.
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("NIC has two ports, got {other:?}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if self.rx.on_timer(ctx, timer) {
            return;
        }
        let consumed = self.tx.on_timer(ctx, timer);
        debug_assert!(consumed, "unexpected timer token {timer:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{IdealLink, Simulator};

    struct Sink {
        arrivals: Vec<SimTime>,
    }

    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
            self.arrivals.push(ctx.now());
        }
    }

    fn rig(profile: NicProfile) -> (Simulator, tn_sim::NodeId, tn_sim::NodeId) {
        let mut sim = Simulator::new(7);
        let nic = sim.add_node("nic", Nic::new(profile));
        let host = sim.add_node("host", Sink { arrivals: vec![] });
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(nic, HOST, host, PortId(0), Box::new(link.clone()));
        sim.install_link(host, PortId(0), nic, HOST, Box::new(link));
        (sim, nic, host)
    }

    #[test]
    fn rx_path_applies_service_latency() {
        let profile = NicProfile::kernel_bypass();
        let (mut sim, nic, host) = rig(profile);
        let f = sim.frame().zeroed(100).build();
        sim.inject_frame(SimTime::from_us(1), nic, WIRE, f);
        sim.run();
        let arrivals = &sim.node::<Sink>(host).unwrap().arrivals;
        assert_eq!(arrivals.len(), 1);
        assert_eq!(
            arrivals[0],
            SimTime::from_us(1) + profile.rx_service + profile.rx_latency
        );
        assert_eq!(sim.node::<Nic>(nic).unwrap().stats().rx_delivered, 1);
    }

    #[test]
    fn ring_overflow_drops_under_burst() {
        let profile = NicProfile::kernel_bypass().with_rx_ring(8);
        let (mut sim, nic, host) = rig(profile);
        // A 100-frame burst lands instantaneously: only the ring fits.
        for _ in 0..100 {
            let f = sim.frame().zeroed(100).build();
            sim.inject_frame(SimTime::ZERO, nic, WIRE, f);
        }
        sim.run();
        let stats = sim.node::<Nic>(nic).unwrap().stats();
        assert_eq!(stats.rx_delivered, 8);
        assert_eq!(stats.rx_dropped, 92);
        assert_eq!(sim.node::<Sink>(host).unwrap().arrivals.len(), 8);
    }

    #[test]
    fn kernel_stack_is_slower_than_bypass() {
        // §3: host hops have fallen below 1 us — with kernel bypass. The
        // kernel path stays several microseconds.
        let bypass = NicProfile::kernel_bypass();
        let kernel = NicProfile::kernel_stack();
        assert!(bypass.rx_latency < SimTime::from_us(1));
        assert!(kernel.rx_latency >= SimTime::from_us(2));
        assert!(kernel.rx_service > bypass.rx_service);
    }

    #[test]
    fn tx_path_counts_and_delays() {
        let profile = NicProfile::kernel_bypass();
        let mut sim = Simulator::new(7);
        let nic = sim.add_node("nic", Nic::new(profile));
        let wire_sink = sim.add_node("wire", Sink { arrivals: vec![] });
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(nic, WIRE, wire_sink, PortId(0), Box::new(link.clone()));
        sim.install_link(wire_sink, PortId(0), nic, WIRE, Box::new(link));
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, nic, HOST, f);
        sim.run();
        assert_eq!(sim.node::<Nic>(nic).unwrap().stats().tx_sent, 1);
        let arrivals = &sim.node::<Sink>(wire_sink).unwrap().arrivals;
        assert_eq!(arrivals, &vec![profile.tx_latency]);
    }
}
