//! Host clock models.
//!
//! Capture appliances and strategy hosts timestamp events with their own
//! oscillators, which drift until a sync protocol (PTP, or the datacenter
//! schemes the paper cites) pulls them back. [`DriftClock`] models a
//! clock as `reading = true_time + offset + drift_rate * (t - last_sync)`
//! with bounded sync error, letting experiments quantify how timestamp
//! quality degrades between syncs — the context for §2's sub-100 ps
//! precision requirement.

use tn_sim::SimTime;

/// A drifting clock with periodic resynchronization.
#[derive(Debug, Clone)]
pub struct DriftClock {
    /// Parts-per-billion frequency error (positive = runs fast).
    drift_ppb: i64,
    /// Offset at the last sync, picoseconds (positive = reads ahead).
    offset_ps: i64,
    /// When the clock was last disciplined.
    last_sync: SimTime,
}

impl DriftClock {
    /// A clock with the given frequency error and initial offset.
    pub fn new(drift_ppb: i64, offset_ps: i64) -> DriftClock {
        DriftClock {
            drift_ppb,
            offset_ps,
            last_sync: SimTime::ZERO,
        }
    }

    /// A perfect clock.
    pub fn perfect() -> DriftClock {
        DriftClock::new(0, 0)
    }

    /// Read the clock at true time `now`, in picoseconds.
    pub fn read(&self, now: SimTime) -> i64 {
        let elapsed = now.saturating_sub(self.last_sync).as_ps() as i128;
        let drift = elapsed * self.drift_ppb as i128 / 1_000_000_000;
        now.as_ps() as i128 as i64 + self.offset_ps + drift as i64
    }

    /// Error versus true time at `now`, picoseconds.
    pub fn error_ps(&self, now: SimTime) -> i64 {
        self.read(now) - now.as_ps() as i64
    }

    /// Discipline the clock at `now`: the residual offset after sync is
    /// `residual_ps` (the sync protocol's error bound; ±ns for PTP on
    /// ordinary gear, tens of ps for the white-rabbit-class systems the
    /// capture vendors sell).
    pub fn sync(&mut self, now: SimTime, residual_ps: i64) {
        self.offset_ps = residual_ps;
        self.last_sync = now;
    }

    /// The configured frequency error.
    pub fn drift_ppb(&self) -> i64 {
        self.drift_ppb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = DriftClock::perfect();
        let t = SimTime::from_secs(3);
        assert_eq!(c.read(t), t.as_ps() as i64);
        assert_eq!(c.error_ps(t), 0);
    }

    #[test]
    fn drift_accumulates_linearly() {
        // 10 ppb fast: after 1 s the clock reads 10 ns ahead.
        let c = DriftClock::new(10, 0);
        assert_eq!(c.error_ps(SimTime::from_secs(1)), 10_000);
        assert_eq!(c.error_ps(SimTime::from_ms(100)), 1_000);
        // Negative drift runs slow.
        let c = DriftClock::new(-10, 0);
        assert_eq!(c.error_ps(SimTime::from_secs(1)), -10_000);
    }

    #[test]
    fn sync_bounds_error() {
        let mut c = DriftClock::new(50, 123_456);
        let t1 = SimTime::from_secs(10);
        assert!(c.error_ps(t1).abs() > 100_000);
        c.sync(t1, 80); // sub-100 ps discipline
        assert_eq!(c.error_ps(t1), 80);
        // Error regrows from the sync point.
        let t2 = t1 + SimTime::from_secs(1);
        assert_eq!(c.error_ps(t2), 80 + 50_000);
        assert_eq!(c.drift_ppb(), 50);
    }

    #[test]
    fn initial_offset_applies() {
        let c = DriftClock::new(0, -500);
        assert_eq!(c.error_ps(SimTime::from_secs(5)), -500);
    }
}
