//! Software-hop service modeling.
//!
//! Application nodes (normalizers, strategies, gateways, exchange
//! front-ends) process events serially: one core, one event at a time.
//! [`ServiceClock`] tracks when that virtual core next becomes free, and
//! [`TxQueue`] turns "finish processing at T, then transmit" into kernel
//! timers so service time shows up as real latency and backlog.

use std::collections::VecDeque;

use tn_sim::{Context, Frame, PortId, SimTime, TimerToken};

/// Tracks the busy-until time of a serial processor.
///
/// `complete(now, service)` answers: if work arrives at `now` needing
/// `service` time, when does it finish? Work queues FIFO behind whatever
/// is already scheduled — the "combined time spent discarding data and
/// processing data" model §3 uses for the filtering-placement analysis.
#[derive(Debug, Clone, Default)]
pub struct ServiceClock {
    busy_until: SimTime,
}

impl ServiceClock {
    /// An idle processor.
    pub fn new() -> ServiceClock {
        ServiceClock::default()
    }

    /// Schedule `service` worth of work arriving at `now`; returns the
    /// absolute completion time.
    pub fn complete(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let start = now.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        done
    }

    /// Backlog (completion horizon minus now), zero when idle.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// True if no queued work extends past `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }
}

/// A FIFO of frames awaiting service completion, bridged to kernel timers.
///
/// Usage inside a [`tn_sim::Node`]:
/// * to emit a frame after `service` time: `txq.send_after(ctx, service, port, frame)`,
/// * in `on_timer`: `txq.on_timer(ctx, token)` — returns `true` if the
///   token belonged to this queue and a frame was transmitted.
///
/// Completion times are monotonic (single serial processor), so FIFO
/// order matches timer order.
#[derive(Debug)]
pub struct TxQueue {
    clock: ServiceClock,
    pending: VecDeque<(PortId, Frame)>,
    token: u64,
    /// Bound on queued frames; pushes beyond this are dropped (counted).
    capacity: usize,
    /// Fixed pipeline delay added after service completes (e.g. a NIC's
    /// DMA+interrupt latency). Does not affect the service rate.
    pipeline: SimTime,
    dropped: u64,
}

impl TxQueue {
    /// A queue identified by `token` (must be unique among the node's
    /// timer tokens) with unbounded capacity.
    pub fn new(token: u64) -> TxQueue {
        TxQueue {
            clock: ServiceClock::new(),
            pending: VecDeque::new(),
            token,
            capacity: usize::MAX,
            pipeline: SimTime::ZERO,
            dropped: 0,
        }
    }

    /// Bound the number of frames waiting for service.
    pub fn with_capacity(mut self, capacity: usize) -> TxQueue {
        self.capacity = capacity;
        self
    }

    /// Add a fixed delay after service completion (pipeline latency).
    pub fn with_pipeline(mut self, pipeline: SimTime) -> TxQueue {
        self.pipeline = pipeline;
        self
    }

    /// Queue `frame` to be sent on `port` after `service` processing time
    /// (plus any backlog). Returns `false` if the queue was full and the
    /// frame was dropped.
    pub fn send_after(
        &mut self,
        ctx: &mut Context<'_>,
        service: SimTime,
        port: PortId,
        frame: Frame,
    ) -> bool {
        if self.pending.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        let done = self.clock.complete(ctx.now(), service) + self.pipeline;
        self.pending.push_back((port, frame));
        ctx.set_timer(done - ctx.now(), TimerToken(self.token));
        true
    }

    /// Occupy the processor for `service` without emitting anything —
    /// work whose output is consumed internally (e.g. events filtered
    /// out) still costs time and delays everything queued behind it.
    pub fn charge(&mut self, now: SimTime, service: SimTime) {
        self.clock.complete(now, service);
    }

    /// Handle a timer; transmits the head-of-line frame if the token is
    /// ours. Returns `true` if consumed.
    pub fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) -> bool {
        if timer.0 != self.token {
            return false;
        }
        if let Some((port, frame)) = self.pending.pop_front() {
            ctx.send(port, frame);
        }
        true
    }

    /// Frames dropped at the queue bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames awaiting transmission.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Current service backlog.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.clock.backlog(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{IdealLink, Node, Simulator};

    #[test]
    fn service_clock_serializes_work() {
        let mut c = ServiceClock::new();
        let t0 = SimTime::ZERO;
        assert!(c.is_idle(t0));
        assert_eq!(c.complete(t0, SimTime::from_us(2)), SimTime::from_us(2));
        // Second event arrives while the first is processing.
        assert_eq!(
            c.complete(SimTime::from_us(1), SimTime::from_us(2)),
            SimTime::from_us(4)
        );
        assert_eq!(c.backlog(SimTime::from_us(1)), SimTime::from_us(3));
        // After the backlog drains, service starts immediately.
        assert_eq!(
            c.complete(SimTime::from_us(10), SimTime::from_us(2)),
            SimTime::from_us(12)
        );
        assert!(c.is_idle(SimTime::from_us(12)));
    }

    /// A node that forwards frames after a fixed service time via TxQueue.
    struct Worker {
        txq: TxQueue,
        service: SimTime,
    }

    impl Node for Worker {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
            self.txq.send_after(ctx, self.service, PortId(0), frame);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
            assert!(self.txq.on_timer(ctx, timer));
        }
    }

    struct Sink {
        arrivals: Vec<SimTime>,
    }

    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
            self.arrivals.push(ctx.now());
        }
    }

    #[test]
    fn txqueue_applies_service_time_and_fifo_backlog() {
        let mut sim = Simulator::new(1);
        let worker = sim.add_node(
            "worker",
            Worker {
                txq: TxQueue::new(0),
                service: SimTime::from_us(2),
            },
        );
        let sink = sim.add_node("sink", Sink { arrivals: vec![] });
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(worker, PortId(0), sink, PortId(0), Box::new(link.clone()));
        sim.install_link(sink, PortId(0), worker, PortId(0), Box::new(link));
        // Three frames arrive simultaneously; the worker is a single core.
        for _ in 0..3 {
            let f = sim.frame().zeroed(64).build();
            sim.inject_frame(SimTime::from_us(1), worker, PortId(0), f);
        }
        sim.run();
        let sink = sim.node::<Sink>(sink).unwrap();
        assert_eq!(
            sink.arrivals,
            vec![
                SimTime::from_us(3),
                SimTime::from_us(5),
                SimTime::from_us(7)
            ]
        );
    }

    #[test]
    fn txqueue_capacity_drops() {
        let mut sim = Simulator::new(1);
        let worker = sim.add_node(
            "worker",
            Worker {
                txq: TxQueue::new(0).with_capacity(2),
                service: SimTime::from_us(1),
            },
        );
        let sink = sim.add_node("sink", Sink { arrivals: vec![] });
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(worker, PortId(0), sink, PortId(0), Box::new(link.clone()));
        sim.install_link(sink, PortId(0), worker, PortId(0), Box::new(link));
        for _ in 0..5 {
            let f = sim.frame().zeroed(64).build();
            sim.inject_frame(SimTime::ZERO, worker, PortId(0), f);
        }
        sim.run();
        let sink_arrivals = sim.node::<Sink>(sink).unwrap().arrivals.len();
        let worker = sim.node::<Worker>(worker).unwrap();
        assert_eq!(sink_arrivals, 2);
        assert_eq!(worker.txq.dropped(), 3);
        assert_eq!(worker.txq.pending(), 0);
    }
}
