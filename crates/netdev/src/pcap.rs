//! Pcap export for capture taps.
//!
//! Firms keep tapped traffic for research and monitoring (§2); this
//! module serializes a [`crate::Tap`]'s records as a standard
//! little-endian pcap file (LINKTYPE_ETHERNET) with nanosecond-resolution
//! timestamps, so simulated traffic opens in Wireshark/tcpdump.
//!
//! The classic pcap header cannot carry picoseconds; we use the
//! nanosecond-pcap magic (0xA1B23C4D) and truncate the sub-nanosecond
//! part — the only place the simulator's picosecond clock loses
//! precision, and exactly the limitation real capture formats have.

use crate::capture::CaptureRecord;

/// Nanosecond-resolution pcap magic.
const MAGIC_NS: u32 = 0xA1B2_3C4D;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Serialize `(record, frame_bytes)` pairs into a pcap file image.
///
/// The tap stores metadata only (frames are owned by the simulation), so
/// callers pair each [`CaptureRecord`] with the bytes it refers to —
/// typically collected by a recording sink node.
pub fn to_pcap(packets: &[(CaptureRecord, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + packets.iter().map(|(_, b)| 16 + b.len()).sum::<usize>());
    // Global header.
    out.extend_from_slice(&MAGIC_NS.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    for (rec, bytes) in packets {
        let ps = rec.at.as_ps();
        let secs = (ps / 1_000_000_000_000) as u32;
        let nanos = ((ps % 1_000_000_000_000) / 1_000) as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&nanos.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out
}

/// Parse a pcap image produced by [`to_pcap`] back into
/// `(seconds, nanoseconds, frame)` triples. Used by tests and by tools
/// that post-process simulated captures.
pub fn from_pcap(data: &[u8]) -> Option<Vec<(u32, u32, Vec<u8>)>> {
    if data.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().ok()?);
    if magic != MAGIC_NS {
        return None;
    }
    let mut packets = Vec::new();
    let mut at = 24usize;
    while at + 16 <= data.len() {
        let secs = u32::from_le_bytes(data[at..at + 4].try_into().ok()?);
        let nanos = u32::from_le_bytes(data[at + 4..at + 8].try_into().ok()?);
        let caplen = u32::from_le_bytes(data[at + 8..at + 12].try_into().ok()?) as usize;
        let origlen = u32::from_le_bytes(data[at + 12..at + 16].try_into().ok()?) as usize;
        if caplen != origlen || at + 16 + caplen > data.len() {
            return None;
        }
        packets.push((secs, nanos, data[at + 16..at + 16 + caplen].to_vec()));
        at += 16 + caplen;
    }
    if at != data.len() {
        return None;
    }
    Some(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Direction;
    use tn_sim::{FrameId, SimTime};

    fn rec(at: SimTime, len: usize) -> CaptureRecord {
        CaptureRecord {
            frame: FrameId(1),
            at,
            direction: Direction::AtoB,
            len,
            tag: 0,
        }
    }

    #[test]
    fn roundtrip() {
        let frames = vec![
            (
                rec(SimTime::from_secs(34_200) + SimTime::from_ns(123), 60),
                vec![0xAA; 60],
            ),
            (rec(SimTime::from_secs(34_201), 1514), vec![0xBB; 1514]),
        ];
        let pcap = to_pcap(&frames);
        assert_eq!(&pcap[0..4], &MAGIC_NS.to_le_bytes());
        let parsed = from_pcap(&pcap).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, 34_200);
        assert_eq!(parsed[0].1, 123);
        assert_eq!(parsed[0].2.len(), 60);
        assert_eq!(parsed[1].0, 34_201);
        assert_eq!(parsed[1].1, 0);
        assert_eq!(parsed[1].2, vec![0xBB; 1514]);
    }

    #[test]
    fn empty_capture_is_header_only() {
        let pcap = to_pcap(&[]);
        assert_eq!(pcap.len(), 24);
        assert_eq!(from_pcap(&pcap).unwrap().len(), 0);
    }

    #[test]
    fn sub_nanosecond_truncates() {
        // 999 ps truncates to 0 ns — the documented precision loss.
        let frames = vec![(rec(SimTime::from_ps(999), 1), vec![0x01])];
        let parsed = from_pcap(&to_pcap(&frames)).unwrap();
        assert_eq!(parsed[0].1, 0);
    }

    #[test]
    fn malformed_rejected() {
        assert!(from_pcap(&[0u8; 10]).is_none());
        let mut pcap = to_pcap(&[(rec(SimTime::ZERO, 4), vec![0; 4])]);
        pcap.truncate(pcap.len() - 1); // chop the last byte
        assert!(from_pcap(&pcap).is_none());
        pcap[0] = 0; // bad magic
        assert!(from_pcap(&pcap).is_none());
    }
}
