//! Capture taps: the measurement fabric.
//!
//! Trading firms splice passive optical taps into links and timestamp
//! every frame with dedicated capture appliances; §2 notes precision
//! targets below 100 ps. A [`Tap`] is a two-port pass-through node that
//! records `(FrameId, time, direction, length)` with zero added latency
//! (an optical splitter) or a configurable insertion delay.
//!
//! After a run, the scenario downcasts taps back out of the simulator and
//! correlates records across taps by `FrameId` to compute per-segment
//! latency — exactly how firms measure strategy latency (order-out time
//! minus last-input time).

use tn_sim::{Context, Frame, FrameId, Metrics, Node, PortId, SimTime};

/// Which way the frame was heading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Entered on port 0, left on port 1.
    AtoB,
    /// Entered on port 1, left on port 0.
    BtoA,
}

/// One observed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Frame identity (stable across hops).
    pub frame: FrameId,
    /// Capture timestamp (exact simulation time; picosecond resolution).
    pub at: SimTime,
    /// Travel direction through the tap.
    pub direction: Direction,
    /// Frame length in bytes.
    pub len: usize,
    /// Application tag copied from the frame metadata.
    pub tag: u64,
}

/// A passive two-port tap. Optical splitters add no measurable delay, so
/// neither does this node; links on either side carry all the time cost.
pub struct Tap {
    records: Vec<CaptureRecord>,
    enabled: bool,
    metrics: Metrics,
}

impl Tap {
    /// A zero-insertion-delay optical tap.
    pub fn new() -> Tap {
        Tap {
            records: Vec::new(),
            enabled: true,
            metrics: Metrics::disabled(),
        }
    }

    /// Stop recording (keeps forwarding).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Recorded observations in arrival order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Timestamps at which `frame` was observed, in order.
    pub fn times_for(&self, frame: FrameId) -> Vec<SimTime> {
        self.records
            .iter()
            .filter(|r| r.frame == frame)
            .map(|r| r.at)
            .collect()
    }

    /// Total observed frames.
    pub fn count(&self) -> usize {
        self.records.len()
    }
}

impl Default for Tap {
    fn default() -> Self {
        Tap::new()
    }
}

impl Node for Tap {
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
        let (direction, out) = match port {
            PortId(0) => (Direction::AtoB, PortId(1)),
            PortId(1) => (Direction::BtoA, PortId(0)),
            // Wiring invariant: ports are fixed at topology build time, so
            // failing fast beats silently eating frames.
            // audit:allow(hotpath-unwrap): port fan-in is fixed by connect() wiring at build time; a mismatch is a topology bug where stopping loudly beats simulating garbage
            other => panic!("taps have two ports, got {other:?}"),
        };
        if self.enabled {
            self.records.push(CaptureRecord {
                frame: frame.id,
                at: ctx.now(),
                direction,
                len: frame.len(),
                tag: frame.meta.tag,
            });
        }
        // Taps feed the registry like any capture appliance feeds the
        // monitoring plane: frame counts plus frame age (time since the
        // frame was born) observed at this point in the fabric.
        let me = ctx.me().0;
        self.metrics.inc("tap", "frames", Some(me));
        self.metrics.observe(
            "tap",
            "age_ps",
            Some(me),
            ctx.now().saturating_sub(frame.born).as_ps(),
        );
        ctx.send(out, frame);
    }

    fn on_attach_metrics(&mut self, metrics: &Metrics) {
        self.metrics = metrics.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tn_sim::{IdealLink, Simulator};

    struct Sink;
    impl Node for Sink {
        fn on_frame(&mut self, _: &mut Context<'_>, _: PortId, _: Frame) {}
    }

    #[test]
    fn tap_records_both_directions_without_latency() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node("a", Sink);
        let tap = sim.add_node("tap", Tap::new());
        let b = sim.add_node("b", Sink);
        let link = IdealLink::new(SimTime::from_ns(5));
        sim.install_link(a, PortId(0), tap, PortId(0), Box::new(link.clone()));
        sim.install_link(tap, PortId(0), a, PortId(0), Box::new(link.clone()));
        sim.install_link(tap, PortId(1), b, PortId(0), Box::new(link.clone()));
        sim.install_link(b, PortId(0), tap, PortId(1), Box::new(link));

        let mut f = sim.frame().zeroed(100).build();
        f.meta.tag = 77;
        let fid = f.id;
        // Inject at the tap's A port as if it came off the wire from a.
        sim.inject_frame(SimTime::from_ns(10), tap, PortId(0), f);
        let g = sim.frame().zeroed(50).build();
        let gid = g.id;
        sim.inject_frame(SimTime::from_ns(20), tap, PortId(1), g);
        sim.run();

        let tap = sim.node::<Tap>(tap).unwrap();
        assert_eq!(tap.count(), 2);
        let r0 = tap.records()[0];
        assert_eq!(r0.frame, fid);
        assert_eq!(r0.at, SimTime::from_ns(10));
        assert_eq!(r0.direction, Direction::AtoB);
        assert_eq!(r0.len, 100);
        assert_eq!(r0.tag, 77);
        let r1 = tap.records()[1];
        assert_eq!(r1.frame, gid);
        assert_eq!(r1.direction, Direction::BtoA);
        assert_eq!(tap.times_for(fid), vec![SimTime::from_ns(10)]);
    }

    #[test]
    fn disabled_tap_still_forwards() {
        let mut sim = Simulator::new(3);
        let tap_id = sim.add_node("tap", Tap::new());
        let b = sim.add_node("b", Sink);
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(tap_id, PortId(1), b, PortId(0), Box::new(link.clone()));
        sim.install_link(b, PortId(0), tap_id, PortId(1), Box::new(link));
        sim.node_mut::<Tap>(tap_id).unwrap().set_enabled(false);
        let f = sim.frame().zeroed(10).build();
        sim.inject_frame(SimTime::ZERO, tap_id, PortId(0), f);
        sim.run();
        assert_eq!(sim.node::<Tap>(tap_id).unwrap().count(), 0);
        assert_eq!(sim.stats().frames_delivered, 2); // tap + sink
    }
}
