//! # tn-netdev — device substrate
//!
//! Everything between the simulation kernel and the switches/applications:
//!
//! * [`links`] — Ethernet links with line-rate serialization, propagation
//!   delay, bounded egress queues, and MTU; metro fiber and microwave
//!   profiles (§2: firms run private WANs and use lossier-but-faster
//!   microwave links between colos).
//! * [`nic`] — a NIC/host-interface model with kernel and kernel-bypass
//!   receive paths and a bounded receive ring: the component that turns
//!   merged-feed bursts into either latency or loss (§4.3).
//! * [`service`] — software-hop service-time modeling: a serialized
//!   processor with FIFO queueing, used by every application node.
//! * [`capture`] — optical-tap capture points with picosecond timestamps
//!   (§2: firms record traffic with sub-100 ps precision).
//! * [`clock`] — drifting host clocks with PTP-style resynchronization,
//!   for experiments that need imperfect timestamps.
//! * [`queues`] — token bucket and byte-bounded FIFO building blocks.
//! * [`pcap`] — export captured traffic as standard pcap files.

pub mod capture;
pub mod clock;
pub mod links;
pub mod nic;
pub mod pcap;
pub mod queues;
pub mod service;

pub use capture::{CaptureRecord, Tap};
pub use links::{fiber_propagation, microwave_propagation, EtherLink};
pub use nic::{Nic, NicProfile, NicStats};
pub use service::{ServiceClock, TxQueue};
