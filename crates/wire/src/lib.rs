//! # tn-wire — wire formats for trading networks
//!
//! Zero-copy, allocation-free codecs for every byte that crosses a link in
//! the `trading-networks` simulator:
//!
//! * Standard stack headers: [`eth`] (Ethernet II), [`ipv4`], [`udp`],
//!   [`tcp`], [`igmp`] (group management).
//! * Market-data feed: [`pitch`], a sequenced multicast depth-of-book
//!   protocol modeled on Cboe PITCH — packed binary messages behind a
//!   sequenced unit header, matching the message sizes the paper quotes
//!   (26-byte add order, 14-byte delete).
//! * Order entry: [`boe`], a binary order-entry protocol modeled on Cboe
//!   BOE, carried over long-lived TCP sessions.
//! * Internal formats: [`norm`], the trading firm's fixed-size normalized
//!   market-data message, and [`l1t`], a minimal custom transport for
//!   Layer-1 switched fabrics (§5 "Protocols" direction of the paper).
//!
//! The idiom throughout is smoltcp's: a `Packet<T: AsRef<[u8]>>` view type
//! with `new_checked` length validation, field accessors that never
//! allocate, and `set_` mutators on `AsMut<[u8]>` buffers. Builders emit
//! into caller-provided or fresh `Vec<u8>`s.

pub mod boe;
mod bytes;
mod error;
pub mod eth;
pub mod igmp;
pub mod ipv4;
pub mod l1t;
pub mod norm;
pub mod pitch;
pub mod stack;
pub mod symbol;
pub mod tcp;
pub mod udp;

pub use error::{Result, WireError};
pub use symbol::Symbol;
