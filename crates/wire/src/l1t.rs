//! A minimal custom transport for Layer-1 switched fabrics.
//!
//! §5 ("Protocols") observes that at 10 Gbps, processing Ethernet + IP +
//! TCP headers costs ~40 ns even though strategies ignore nearly all of
//! those fields, and suggests custom transports designed around L1S
//! constraints. `l1t` is that design point: an 8-byte header carrying only
//! what a point-to-point circuit needs — a stream id for demultiplexing
//! after merges, a sequence number for loss detection, and a length.
//!
//! ```text
//! length u16   whole frame length including this header
//! stream u16   stream id (assigned per source, survives L1S merges)
//! seq    u32   per-stream sequence number
//! ```
//!
//! Frames ride either directly on the circuit or inside an Ethernet frame
//! with [`crate::eth::EtherType::L1Transport`] when a NIC requires L2
//! framing. The stream id is positioned in the first word so an FPGA
//! filter can classify on a fixed offset (the "exposing information that
//! can be used for filtering or load balancing" suggestion).

use crate::bytes::{get_u16_le, get_u32_le, set_u16_le, set_u32_le};
use crate::error::{Result, WireError};

/// Header length — 8 bytes versus 42 for Eth+IPv4+UDP or 54 for
/// Eth+IPv4+TCP.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view of an L1 transport frame.
#[derive(Debug)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap with validation.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let f = Frame { buffer };
        let l = f.len_field() as usize;
        if l < HEADER_LEN || l > len {
            return Err(WireError::BadLength);
        }
        Ok(f)
    }

    /// Whole-frame length field.
    pub fn len_field(&self) -> u16 {
        get_u16_le(self.buffer.as_ref(), 0)
    }

    /// Stream id.
    pub fn stream(&self) -> u16 {
        get_u16_le(self.buffer.as_ref(), 2)
    }

    /// Per-stream sequence.
    pub fn seq(&self) -> u32 {
        get_u32_le(self.buffer.as_ref(), 4)
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field() as usize]
    }
}

/// Append a complete frame to `out`, reusing whatever capacity `out`
/// already has. Writer-style counterpart of [`build`].
pub fn emit_into(stream: u16, seq: u32, payload: &[u8], out: &mut Vec<u8>) {
    let total = HEADER_LEN + payload.len();
    debug_assert!(total <= u16::MAX as usize);
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    out.extend_from_slice(payload);
    let buf = &mut out[start..];
    set_u16_le(buf, 0, total as u16);
    set_u16_le(buf, 2, stream);
    set_u32_le(buf, 4, seq);
}

/// Allocate and fill a frame.
pub fn build(stream: u16, seq: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_into(stream, seq, payload, &mut buf);
    buf
}

/// Per-stream sequence tracker for loss detection on merged circuits.
#[derive(Debug, Default)]
pub struct SeqTracker {
    next: std::collections::HashMap<u16, u32>,
    gaps: u64,
}

impl SeqTracker {
    /// Fresh tracker.
    pub fn new() -> SeqTracker {
        SeqTracker::default()
    }

    /// Observe a frame; returns the number of sequence numbers skipped
    /// (0 for in-order delivery).
    pub fn observe(&mut self, stream: u16, seq: u32) -> u32 {
        let next = self.next.entry(stream).or_insert(seq);
        let skipped = seq.wrapping_sub(*next);
        *next = seq.wrapping_add(1);
        if skipped > 0 {
            self.gaps += u64::from(skipped);
        }
        skipped
    }

    /// Total sequence numbers lost across all streams.
    pub fn total_gaps(&self) -> u64 {
        self.gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let buf = build(5, 1000, b"normalized records here");
        assert_eq!(buf.len(), HEADER_LEN + 23);
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.stream(), 5);
        assert_eq!(f.seq(), 1000);
        assert_eq!(f.payload(), b"normalized records here");
    }

    #[test]
    fn header_is_8_bytes() {
        // The whole point: 8 vs 42/54 bytes of standard-stack headers.
        assert_eq!(HEADER_LEN, 8);
        let buf = build(0, 0, b"");
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn validation() {
        assert_eq!(
            Frame::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = build(1, 1, b"abc");
        buf[0] = 200;
        assert_eq!(
            Frame::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
        buf[0] = 4; // below header length
        buf[1] = 0;
        assert_eq!(
            Frame::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn padded_payload_not_leaked() {
        let mut buf = build(1, 1, b"abc");
        buf.extend_from_slice(&[0; 30]);
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.payload(), b"abc");
    }

    #[test]
    fn seq_tracker_counts_gaps_per_stream() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe(1, 100), 0); // first frame establishes base
        assert_eq!(t.observe(1, 101), 0);
        assert_eq!(t.observe(1, 104), 2); // 102, 103 lost
        assert_eq!(t.observe(2, 0), 0); // independent stream
        assert_eq!(t.observe(2, 1), 0);
        assert_eq!(t.total_gaps(), 2);
    }
}
