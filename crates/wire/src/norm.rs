//! The trading firm's internal *normalized* market-data format.
//!
//! Normalizers convert each exchange's native feed into this single fixed
//! 32-byte record and re-partition the result across internal multicast
//! groups (§2: "convert from each exchange's format to an internal
//! standard format, and also to re-partition the data"). A fixed-size
//! little-endian record lets strategies consume events with a single
//! branch-free load — the "execute directly on the relevant market data"
//! property the paper describes.
//!
//! Packets pack whole records behind an 8-byte header:
//!
//! ```text
//! Packet header (8 bytes)
//!   count     u8   number of records
//!   flags     u8
//!   partition u16  internal partition id
//!   sequence  u32  sequence of first record within the partition
//! Record (32 bytes each)
//!   kind        u8   1=BBO  2=Trade  3=Status  4=BookDelta
//!   exchange    u8   source exchange id
//!   side        u8   b'B'/b'S' (BBO, BookDelta); status code (Status)
//!   flags       u8
//!   symbol_id   u32  interned symbol (firm-wide dictionary)
//!   price       i64  1e-4 dollars
//!   size        u32
//!   aux         u32  kind-specific (BBO: opposite size; Trade: low 32 of exec id)
//!   src_time_ns u64  exchange timestamp, nanoseconds since midnight
//! ```

use crate::bytes::{
    get_i64_le, get_u16_le, get_u32_le, get_u64_le, set_i64_le, set_u16_le, set_u32_le, set_u64_le,
};
use crate::error::{Result, WireError};

/// Packet header length.
pub const PACKET_HEADER_LEN: usize = 8;
/// Fixed record length.
pub const RECORD_LEN: usize = 32;

/// Record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Best bid/offer changed.
    Bbo,
    /// A trade printed.
    Trade,
    /// Trading status changed.
    Status,
    /// A depth-of-book delta (for strategies that build full books).
    BookDelta,
}

impl Kind {
    fn to_wire(self) -> u8 {
        match self {
            Kind::Bbo => 1,
            Kind::Trade => 2,
            Kind::Status => 3,
            Kind::BookDelta => 4,
        }
    }

    fn from_wire(v: u8) -> Result<Kind> {
        match v {
            1 => Ok(Kind::Bbo),
            2 => Ok(Kind::Trade),
            3 => Ok(Kind::Status),
            4 => Ok(Kind::BookDelta),
            _ => Err(WireError::BadField),
        }
    }
}

/// One normalized record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Event class.
    pub kind: Kind,
    /// Source exchange id (firm-internal numbering).
    pub exchange: u8,
    /// Side or status byte, per `kind`.
    pub side: u8,
    /// Flags (reserved).
    pub flags: u8,
    /// Interned symbol id.
    pub symbol_id: u32,
    /// Price (1e-4 dollars).
    pub price: i64,
    /// Size.
    pub size: u32,
    /// Kind-specific auxiliary field.
    pub aux: u32,
    /// Exchange timestamp, ns since midnight.
    pub src_time_ns: u64,
}

impl Record {
    /// Encode into exactly [`RECORD_LEN`] bytes appended to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + RECORD_LEN, 0);
        let b = &mut out[start..];
        b[0] = self.kind.to_wire();
        b[1] = self.exchange;
        b[2] = self.side;
        b[3] = self.flags;
        set_u32_le(b, 4, self.symbol_id);
        set_i64_le(b, 8, self.price);
        set_u32_le(b, 16, self.size);
        set_u32_le(b, 20, self.aux);
        set_u64_le(b, 24, self.src_time_ns);
    }

    /// Decode from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Record> {
        if buf.len() < RECORD_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Record {
            kind: Kind::from_wire(buf[0])?,
            exchange: buf[1],
            side: buf[2],
            flags: buf[3],
            symbol_id: get_u32_le(buf, 4),
            price: get_i64_le(buf, 8),
            size: get_u32_le(buf, 16),
            aux: get_u32_le(buf, 20),
            src_time_ns: get_u64_le(buf, 24),
        })
    }
}

/// Zero-copy view of a normalized-feed packet (the UDP payload).
#[derive(Debug)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap with validation: header present and count consistent with the
    /// buffer length.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < PACKET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = Packet { buffer };
        let need = PACKET_HEADER_LEN + p.count() as usize * RECORD_LEN;
        if need > p.buffer.as_ref().len() {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Number of records.
    pub fn count(&self) -> u8 {
        self.buffer.as_ref()[0]
    }

    /// Internal partition id.
    pub fn partition(&self) -> u16 {
        get_u16_le(self.buffer.as_ref(), 2)
    }

    /// Sequence number of the first record.
    pub fn sequence(&self) -> u32 {
        get_u32_le(self.buffer.as_ref(), 4)
    }

    /// Iterate records (infallible once `new_checked` passed, except for
    /// bad kind bytes, which surface per-record).
    pub fn records(&self) -> impl Iterator<Item = Result<Record>> + '_ {
        let buf = &self.buffer.as_ref()[PACKET_HEADER_LEN..];
        (0..self.count() as usize).map(move |i| Record::parse(&buf[i * RECORD_LEN..]))
    }
}

/// Packs records into packets bounded by a maximum payload size.
pub struct PacketBuilder {
    partition: u16,
    next_seq: u32,
    max_records: u8,
    buf: Vec<u8>,
    count: u8,
}

impl PacketBuilder {
    /// Builder for `partition`, starting at `first_seq`, packing at most
    /// `max_payload` bytes per packet.
    pub fn new(partition: u16, first_seq: u32, max_payload: usize) -> PacketBuilder {
        let max_records = ((max_payload - PACKET_HEADER_LEN) / RECORD_LEN).min(255) as u8;
        assert!(max_records >= 1, "max_payload must fit at least one record");
        PacketBuilder {
            partition,
            next_seq: first_seq,
            max_records,
            // audit:allow(hotpath-alloc): builder working buffer; arena-backed zero-copy emit is ROADMAP item 2
            buf: vec![0; PACKET_HEADER_LEN],
            count: 0,
        }
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Buffered record count.
    pub fn pending(&self) -> u8 {
        self.count
    }

    /// Append a record; returns a sealed packet when the buffer filled up
    /// *before* this record (which then starts the next packet).
    pub fn push(&mut self, rec: &Record) -> Option<Vec<u8>> {
        let flushed = if self.count == self.max_records {
            let mut packet = Vec::with_capacity(self.buf.len());
            self.seal_into(&mut packet);
            Some(packet)
        } else {
            None
        };
        rec.emit(&mut self.buf);
        self.count += 1;
        flushed
    }

    /// Writer-style [`PacketBuilder::push`]: when the buffer was full, the
    /// sealed packet is appended to `out` and `true` is returned. The
    /// builder's working buffer is length-reset in place, so steady-state
    /// packing never allocates.
    pub fn push_into(&mut self, rec: &Record, out: &mut Vec<u8>) -> bool {
        let sealed = self.count == self.max_records;
        if sealed {
            self.seal_into(out);
        }
        rec.emit(&mut self.buf);
        self.count += 1;
        sealed
    }

    /// Seal and return the pending packet, if any.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        if self.count == 0 {
            None
        } else {
            let mut packet = Vec::with_capacity(self.buf.len());
            self.seal_into(&mut packet);
            Some(packet)
        }
    }

    /// Writer-style [`PacketBuilder::flush`]: appends the sealed packet to
    /// `out` (if any records are pending) and returns whether it did.
    pub fn flush_into(&mut self, out: &mut Vec<u8>) -> bool {
        if self.count == 0 {
            false
        } else {
            self.seal_into(out);
            true
        }
    }

    /// Fill the packet header in place, append the finished packet to
    /// `out`, and length-reset the working buffer (capacity kept).
    fn seal_into(&mut self, out: &mut Vec<u8>) {
        let count = self.count;
        self.count = 0;
        self.buf[0] = count;
        self.buf[1] = 0;
        set_u16_le(&mut self.buf, 2, self.partition);
        set_u32_le(&mut self.buf, 4, self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(u32::from(count));
        out.extend_from_slice(&self.buf);
        self.buf.truncate(PACKET_HEADER_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> Record {
        Record {
            kind: Kind::Bbo,
            exchange: 2,
            side: b'B',
            flags: 0,
            symbol_id: i,
            price: 450_0000 + i64::from(i),
            size: 100 + i,
            aux: 200,
            src_time_ns: 34_200_000_000_000 + u64::from(i),
        }
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        for kind in [Kind::Bbo, Kind::Trade, Kind::Status, Kind::BookDelta] {
            let r = Record { kind, ..rec(5) };
            let mut buf = Vec::new();
            r.emit(&mut buf);
            assert_eq!(buf.len(), RECORD_LEN);
            assert_eq!(Record::parse(&buf).unwrap(), r);
        }
    }

    #[test]
    fn negative_prices_roundtrip() {
        // Options spreads and certain futures can print negative prices
        // (as crude oil famously did); the format must carry them.
        let r = Record {
            price: -37_6300,
            ..rec(1)
        };
        let mut buf = Vec::new();
        r.emit(&mut buf);
        assert_eq!(Record::parse(&buf).unwrap().price, -37_6300);
    }

    #[test]
    fn packet_roundtrip() {
        let mut pb = PacketBuilder::new(9, 1000, 1458);
        let mut packets = Vec::new();
        let n = 100u32;
        for i in 0..n {
            if let Some(p) = pb.push(&rec(i)) {
                packets.push(p);
            }
        }
        packets.extend(pb.flush());
        let mut seen = Vec::new();
        let mut expect_seq = 1000;
        for p in &packets {
            let pkt = Packet::new_checked(&p[..]).unwrap();
            assert_eq!(pkt.partition(), 9);
            assert_eq!(pkt.sequence(), expect_seq);
            expect_seq += u32::from(pkt.count());
            // Max payload 1458 -> at most 45 records -> within one frame.
            assert!(p.len() <= 1458);
            for r in pkt.records() {
                seen.push(r.unwrap());
            }
        }
        assert_eq!(seen.len(), n as usize);
        assert_eq!(seen[0], rec(0));
        assert_eq!(seen[99], rec(99));
    }

    #[test]
    fn validation() {
        assert_eq!(
            Packet::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut pb = PacketBuilder::new(0, 0, 200);
        pb.push(&rec(0));
        let mut p = pb.flush().unwrap();
        p[0] = 10; // count larger than buffer
        assert_eq!(
            Packet::new_checked(&p[..]).unwrap_err(),
            WireError::BadLength
        );
        assert_eq!(Record::parse(&[0u8; 10]).unwrap_err(), WireError::Truncated);
        let mut buf = Vec::new();
        rec(0).emit(&mut buf);
        buf[0] = 99;
        assert_eq!(Record::parse(&buf).unwrap_err(), WireError::BadField);
    }

    #[test]
    fn builder_caps_records_per_packet() {
        // Tiny payload: header + 1 record.
        let mut pb = PacketBuilder::new(0, 0, PACKET_HEADER_LEN + RECORD_LEN);
        assert!(pb.push(&rec(0)).is_none());
        let sealed = pb.push(&rec(1));
        assert!(sealed.is_some());
        let pkt_bytes = sealed.unwrap();
        let pkt = Packet::new_checked(&pkt_bytes[..]).unwrap();
        assert_eq!(pkt.count(), 1);
        assert_eq!(pb.pending(), 1);
        assert_eq!(pb.next_seq(), 1);
    }
}
