//! IGMPv2-style group membership messages.
//!
//! Hosts join and leave the multicast groups carrying feed partitions;
//! switches snoop these to program their mroute tables (§3 "Multicast
//! Trends"). The format matches IGMPv2's 8-byte layout.

use crate::bytes::{internet_checksum, set_u16_be};
use crate::error::{Result, WireError};
use crate::ipv4;

/// Message length.
pub const MESSAGE_LEN: usize = 8;

/// IGMP message types used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Membership query (0x11).
    Query,
    /// Membership report, i.e. a join (0x16, the v2 report).
    Report,
    /// Leave group (0x17).
    Leave,
}

impl MessageType {
    fn to_wire(self) -> u8 {
        match self {
            MessageType::Query => 0x11,
            MessageType::Report => 0x16,
            MessageType::Leave => 0x17,
        }
    }

    fn from_wire(v: u8) -> Result<MessageType> {
        match v {
            0x11 => Ok(MessageType::Query),
            0x16 => Ok(MessageType::Report),
            0x17 => Ok(MessageType::Leave),
            _ => Err(WireError::BadField),
        }
    }
}

/// A decoded IGMP message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Message class.
    pub kind: MessageType,
    /// The group being joined/left/queried (zero for general queries).
    pub group: ipv4::Addr,
}

impl Message {
    /// Append the 8-byte encoding to `out`, reusing whatever capacity
    /// `out` already has. Writer-style counterpart of [`Message::emit`].
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + MESSAGE_LEN, 0);
        self.write(&mut out[start..]);
    }

    fn write(&self, buf: &mut [u8]) {
        buf[0] = self.kind.to_wire();
        buf[1] = 0; // max response time (unused in the simulator)
        buf[2] = 0;
        buf[3] = 0;
        buf[4..8].copy_from_slice(&self.group.0);
        let ck = internet_checksum(0, buf);
        set_u16_be(buf, 2, ck);
    }

    /// Encode to the fixed 8-byte wire form (no heap).
    pub fn emit(&self) -> [u8; MESSAGE_LEN] {
        let mut buf = [0u8; MESSAGE_LEN];
        self.write(&mut buf);
        buf
    }

    /// Decode from wire bytes, verifying length and checksum.
    pub fn parse(buf: &[u8]) -> Result<Message> {
        if buf.len() < MESSAGE_LEN {
            return Err(WireError::Truncated);
        }
        let buf = &buf[..MESSAGE_LEN];
        if internet_checksum(0, buf) != 0 {
            return Err(WireError::BadChecksum);
        }
        let kind = MessageType::from_wire(buf[0])?;
        let group = ipv4::Addr([buf[4], buf[5], buf[6], buf[7]]);
        Ok(Message { kind, group })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        for kind in [MessageType::Query, MessageType::Report, MessageType::Leave] {
            let m = Message {
                kind,
                group: ipv4::Addr::multicast_group(123),
            };
            let buf = m.emit();
            assert_eq!(buf.len(), MESSAGE_LEN);
            assert_eq!(Message::parse(&buf).unwrap(), m);
        }
    }

    #[test]
    fn corruption_and_truncation_rejected() {
        let m = Message {
            kind: MessageType::Report,
            group: ipv4::Addr::multicast_group(1),
        };
        let mut buf = m.emit();
        buf[5] ^= 0xff;
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadChecksum);
        assert_eq!(Message::parse(&buf[..7]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn unknown_type_rejected() {
        let m = Message {
            kind: MessageType::Report,
            group: ipv4::Addr::multicast_group(1),
        };
        let mut buf = m.emit();
        buf[0] = 0x99;
        // Fix up checksum so the type check is what fails.
        set_u16_be(&mut buf, 2, 0);
        let ck = internet_checksum(0, &buf);
        set_u16_be(&mut buf, 2, ck);
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadField);
    }
}
