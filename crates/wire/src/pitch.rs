//! A sequenced multicast depth-of-book feed protocol modeled on Cboe PITCH.
//!
//! Exchanges disseminate market data as UDP multicast packets, each packing
//! several small binary messages behind a *sequenced unit header* (§2 of
//! the paper; format modeled on the Cboe "Multicast PITCH" specification
//! the paper cites). Message sizes match the figures quoted in the paper:
//! a short add-order is **26 bytes** and an order delete is **14 bytes**.
//!
//! Layout (all integers little-endian, as in real US market-data feeds):
//!
//! ```text
//! Sequenced Unit Header (8 bytes)
//!   length   u16   whole packet length including this header
//!   count    u8    number of messages that follow
//!   unit     u8    feed partition ("unit") this packet belongs to
//!   sequence u32   sequence number of the first message
//! Message (variable)
//!   length   u8    message length including this byte
//!   type     u8    discriminant
//!   ...            type-specific fields
//! ```
//!
//! Messages carry nanosecond offsets relative to the last `Time` message
//! on the unit, exactly as PITCH does, which is part of why the encoding
//! is so compact.

use crate::bytes::{get_u16_le, get_u32_le, get_u64_le, set_u16_le, set_u32_le, set_u64_le};
use crate::error::{Result, WireError};
use crate::symbol::Symbol;

/// Sequenced unit header length.
pub const UNIT_HEADER_LEN: usize = 8;

/// Message type discriminants.
pub mod msg_type {
    pub const TIME: u8 = 0x20;
    pub const ADD_ORDER_LONG: u8 = 0x21;
    pub const ADD_ORDER_SHORT: u8 = 0x22;
    pub const ORDER_EXECUTED: u8 = 0x23;
    pub const REDUCE_SIZE_LONG: u8 = 0x25;
    pub const REDUCE_SIZE_SHORT: u8 = 0x26;
    pub const MODIFY_ORDER_LONG: u8 = 0x27;
    pub const MODIFY_ORDER_SHORT: u8 = 0x28;
    pub const DELETE_ORDER: u8 = 0x29;
    pub const TRADE_LONG: u8 = 0x2A;
    pub const TRADE_SHORT: u8 = 0x2B;
    pub const TRADING_STATUS: u8 = 0x31;
}

/// Buy or sell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Bid side.
    Buy,
    /// Ask side.
    Sell,
}

impl Side {
    fn to_wire(self) -> u8 {
        match self {
            Side::Buy => b'B',
            Side::Sell => b'S',
        }
    }

    fn from_wire(v: u8) -> Result<Side> {
        match v {
            b'B' => Ok(Side::Buy),
            b'S' => Ok(Side::Sell),
            _ => Err(WireError::BadField),
        }
    }

    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Buy => Side::Sell,
            Side::Sell => Side::Buy,
        }
    }
}

/// Prices are integer 1/10000ths of a dollar (four implied decimals), the
/// "long" PITCH convention. Short encodings carry whole cents.
pub type Price = u64;

/// A decoded feed message.
///
/// Price/quantity fields are normalized to their widest form; the encoder
/// automatically picks the short variant when values fit, which is what
/// produces the realistic frame-length mix of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Unit timestamp: seconds since midnight. Subsequent messages carry
    /// nanosecond offsets from this.
    Time {
        /// Seconds since midnight (exchange local).
        seconds: u32,
    },
    /// A new visible order on the book.
    AddOrder {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Exchange-assigned order id.
        order_id: u64,
        /// Side of the book.
        side: Side,
        /// Displayed quantity.
        qty: u32,
        /// Instrument.
        symbol: Symbol,
        /// Limit price (1e-4 dollars).
        price: Price,
    },
    /// An order traded (partially or fully).
    OrderExecuted {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Resting order id.
        order_id: u64,
        /// Executed quantity.
        qty: u32,
        /// Execution id, unique per trade.
        exec_id: u64,
    },
    /// An order's displayed size decreased.
    ReduceSize {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Order id.
        order_id: u64,
        /// Quantity canceled (not the remaining size).
        qty: u32,
    },
    /// An order's price/size changed, keeping priority rules out of scope.
    ModifyOrder {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Order id.
        order_id: u64,
        /// New displayed quantity.
        qty: u32,
        /// New limit price (1e-4 dollars).
        price: Price,
    },
    /// An order left the book. **14 bytes on the wire** — the cancellation
    /// size the paper quotes.
    DeleteOrder {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Order id.
        order_id: u64,
    },
    /// A trade against a hidden or implied order (prints without a resting
    /// order id having been advertised).
    Trade {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Matched order id.
        order_id: u64,
        /// Aggressor side.
        side: Side,
        /// Executed quantity.
        qty: u32,
        /// Instrument.
        symbol: Symbol,
        /// Execution price (1e-4 dollars).
        price: Price,
        /// Execution id.
        exec_id: u64,
    },
    /// Halt/resume and similar per-symbol state changes.
    TradingStatus {
        /// Nanoseconds since the last `Time` message.
        offset_ns: u32,
        /// Instrument.
        symbol: Symbol,
        /// Status code (exchange-specific; `b'T'` trading, `b'H'` halted).
        status: u8,
    },
}

/// Maximum quantity representable in short encodings.
const SHORT_QTY_MAX: u32 = u16::MAX as u32;
/// Short encodings carry whole cents in a u16.
const SHORT_PRICE_MAX: Price = (u16::MAX as u64) * 100;

fn price_fits_short(price: Price) -> bool {
    price.is_multiple_of(100) && price <= SHORT_PRICE_MAX
}

impl Message {
    /// Encoded length in bytes (short/long variant chosen automatically).
    pub fn wire_len(&self) -> usize {
        match self {
            Message::Time { .. } => 6,
            Message::AddOrder { qty, price, .. } => {
                if *qty <= SHORT_QTY_MAX && price_fits_short(*price) {
                    26
                } else {
                    34
                }
            }
            Message::OrderExecuted { .. } => 26,
            Message::ReduceSize { qty, .. } => {
                if *qty <= SHORT_QTY_MAX {
                    16
                } else {
                    18
                }
            }
            Message::ModifyOrder { qty, price, .. } => {
                if *qty <= SHORT_QTY_MAX && price_fits_short(*price) {
                    19
                } else {
                    27
                }
            }
            Message::DeleteOrder { .. } => 14,
            Message::Trade { qty, price, .. } => {
                if *qty <= SHORT_QTY_MAX && price_fits_short(*price) {
                    33
                } else {
                    41
                }
            }
            Message::TradingStatus { .. } => 14,
        }
    }

    /// The symbol the message concerns, if it carries one on the wire.
    /// (Executions/deletes refer to orders whose symbol the receiver
    /// learned from the original add — PITCH's statefulness, which is why
    /// normalizers and book builders must track order ids.)
    pub fn symbol(&self) -> Option<Symbol> {
        match self {
            Message::AddOrder { symbol, .. }
            | Message::Trade { symbol, .. }
            | Message::TradingStatus { symbol, .. } => Some(*symbol),
            _ => None,
        }
    }

    /// The order id the message concerns, if any.
    pub fn order_id(&self) -> Option<u64> {
        match self {
            Message::AddOrder { order_id, .. }
            | Message::OrderExecuted { order_id, .. }
            | Message::ReduceSize { order_id, .. }
            | Message::ModifyOrder { order_id, .. }
            | Message::DeleteOrder { order_id, .. }
            | Message::Trade { order_id, .. } => Some(*order_id),
            _ => None,
        }
    }

    /// Append the wire encoding to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let len = self.wire_len();
        out.resize(start + len, 0);
        let b = &mut out[start..];
        b[0] = len as u8;
        match *self {
            Message::Time { seconds } => {
                b[1] = msg_type::TIME;
                set_u32_le(b, 2, seconds);
            }
            Message::AddOrder {
                offset_ns,
                order_id,
                side,
                qty,
                symbol,
                price,
            } => {
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
                b[14] = side.to_wire();
                if len == 26 {
                    b[1] = msg_type::ADD_ORDER_SHORT;
                    set_u16_le(b, 15, qty as u16);
                    symbol.to_wire(&mut b[17..23]);
                    set_u16_le(b, 23, (price / 100) as u16);
                    b[25] = 0; // flags
                } else {
                    b[1] = msg_type::ADD_ORDER_LONG;
                    set_u32_le(b, 15, qty);
                    symbol.to_wire(&mut b[19..25]);
                    set_u64_le(b, 25, price);
                    b[33] = 0; // flags
                }
            }
            Message::OrderExecuted {
                offset_ns,
                order_id,
                qty,
                exec_id,
            } => {
                b[1] = msg_type::ORDER_EXECUTED;
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
                set_u32_le(b, 14, qty);
                set_u64_le(b, 18, exec_id);
            }
            Message::ReduceSize {
                offset_ns,
                order_id,
                qty,
            } => {
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
                if len == 16 {
                    b[1] = msg_type::REDUCE_SIZE_SHORT;
                    set_u16_le(b, 14, qty as u16);
                } else {
                    b[1] = msg_type::REDUCE_SIZE_LONG;
                    set_u32_le(b, 14, qty);
                }
            }
            Message::ModifyOrder {
                offset_ns,
                order_id,
                qty,
                price,
            } => {
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
                if len == 19 {
                    b[1] = msg_type::MODIFY_ORDER_SHORT;
                    set_u16_le(b, 14, qty as u16);
                    set_u16_le(b, 16, (price / 100) as u16);
                    b[18] = 0; // flags
                } else {
                    b[1] = msg_type::MODIFY_ORDER_LONG;
                    set_u32_le(b, 14, qty);
                    set_u64_le(b, 18, price);
                    b[26] = 0; // flags
                }
            }
            Message::DeleteOrder {
                offset_ns,
                order_id,
            } => {
                b[1] = msg_type::DELETE_ORDER;
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
            }
            Message::Trade {
                offset_ns,
                order_id,
                side,
                qty,
                symbol,
                price,
                exec_id,
            } => {
                set_u32_le(b, 2, offset_ns);
                set_u64_le(b, 6, order_id);
                b[14] = side.to_wire();
                if len == 33 {
                    b[1] = msg_type::TRADE_SHORT;
                    set_u16_le(b, 15, qty as u16);
                    symbol.to_wire(&mut b[17..23]);
                    set_u16_le(b, 23, (price / 100) as u16);
                    set_u64_le(b, 25, exec_id);
                } else {
                    b[1] = msg_type::TRADE_LONG;
                    set_u32_le(b, 15, qty);
                    symbol.to_wire(&mut b[19..25]);
                    set_u64_le(b, 25, price);
                    set_u64_le(b, 33, exec_id);
                }
            }
            Message::TradingStatus {
                offset_ns,
                symbol,
                status,
            } => {
                b[1] = msg_type::TRADING_STATUS;
                set_u32_le(b, 2, offset_ns);
                symbol.to_wire(&mut b[6..12]);
                b[12] = status;
                b[13] = 0; // reserved
            }
        }
    }

    /// Decode one message from the front of `buf`, returning it and its
    /// wire length.
    pub fn parse(buf: &[u8]) -> Result<(Message, usize)> {
        if buf.len() < 2 {
            return Err(WireError::Truncated);
        }
        let len = buf[0] as usize;
        if len < 2 || len > buf.len() {
            return Err(WireError::BadLength);
        }
        let b = &buf[..len];
        let msg = match b[1] {
            msg_type::TIME => {
                Self::expect_len(len, 6)?;
                Message::Time {
                    seconds: get_u32_le(b, 2),
                }
            }
            msg_type::ADD_ORDER_SHORT => {
                Self::expect_len(len, 26)?;
                Message::AddOrder {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    side: Side::from_wire(b[14])?,
                    qty: u32::from(get_u16_le(b, 15)),
                    symbol: Symbol::from_wire(&b[17..23]),
                    price: u64::from(get_u16_le(b, 23)) * 100,
                }
            }
            msg_type::ADD_ORDER_LONG => {
                Self::expect_len(len, 34)?;
                Message::AddOrder {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    side: Side::from_wire(b[14])?,
                    qty: get_u32_le(b, 15),
                    symbol: Symbol::from_wire(&b[19..25]),
                    price: get_u64_le(b, 25),
                }
            }
            msg_type::ORDER_EXECUTED => {
                Self::expect_len(len, 26)?;
                Message::OrderExecuted {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    qty: get_u32_le(b, 14),
                    exec_id: get_u64_le(b, 18),
                }
            }
            msg_type::REDUCE_SIZE_SHORT => {
                Self::expect_len(len, 16)?;
                Message::ReduceSize {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    qty: u32::from(get_u16_le(b, 14)),
                }
            }
            msg_type::REDUCE_SIZE_LONG => {
                Self::expect_len(len, 18)?;
                Message::ReduceSize {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    qty: get_u32_le(b, 14),
                }
            }
            msg_type::MODIFY_ORDER_SHORT => {
                Self::expect_len(len, 19)?;
                Message::ModifyOrder {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    qty: u32::from(get_u16_le(b, 14)),
                    price: u64::from(get_u16_le(b, 16)) * 100,
                }
            }
            msg_type::MODIFY_ORDER_LONG => {
                Self::expect_len(len, 27)?;
                Message::ModifyOrder {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    qty: get_u32_le(b, 14),
                    price: get_u64_le(b, 18),
                }
            }
            msg_type::DELETE_ORDER => {
                Self::expect_len(len, 14)?;
                Message::DeleteOrder {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                }
            }
            msg_type::TRADE_SHORT => {
                Self::expect_len(len, 33)?;
                Message::Trade {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    side: Side::from_wire(b[14])?,
                    qty: u32::from(get_u16_le(b, 15)),
                    symbol: Symbol::from_wire(&b[17..23]),
                    price: u64::from(get_u16_le(b, 23)) * 100,
                    exec_id: get_u64_le(b, 25),
                }
            }
            msg_type::TRADE_LONG => {
                Self::expect_len(len, 41)?;
                Message::Trade {
                    offset_ns: get_u32_le(b, 2),
                    order_id: get_u64_le(b, 6),
                    side: Side::from_wire(b[14])?,
                    qty: get_u32_le(b, 15),
                    symbol: Symbol::from_wire(&b[19..25]),
                    price: get_u64_le(b, 25),
                    exec_id: get_u64_le(b, 33),
                }
            }
            msg_type::TRADING_STATUS => {
                Self::expect_len(len, 14)?;
                Message::TradingStatus {
                    offset_ns: get_u32_le(b, 2),
                    symbol: Symbol::from_wire(&b[6..12]),
                    status: b[12],
                }
            }
            _ => return Err(WireError::BadField),
        };
        Ok((msg, len))
    }

    fn expect_len(got: usize, want: usize) -> Result<()> {
        if got == want {
            Ok(())
        } else {
            Err(WireError::BadLength)
        }
    }
}

/// Zero-copy view of a sequenced-unit packet (the UDP payload).
#[derive(Debug)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap with validation: header present, length field consistent.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < UNIT_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = Packet { buffer };
        let l = p.packet_len() as usize;
        if l < UNIT_HEADER_LEN || l > len {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Whole-packet length from the header.
    pub fn packet_len(&self) -> u16 {
        get_u16_le(self.buffer.as_ref(), 0)
    }

    /// Number of messages.
    pub fn count(&self) -> u8 {
        self.buffer.as_ref()[2]
    }

    /// Feed unit (partition) id.
    pub fn unit(&self) -> u8 {
        self.buffer.as_ref()[3]
    }

    /// Sequence number of the first message.
    pub fn sequence(&self) -> u32 {
        get_u32_le(self.buffer.as_ref(), 4)
    }

    /// Iterate over the packed messages.
    pub fn messages(&self) -> MessageIter<'_> {
        MessageIter {
            buf: &self.buffer.as_ref()[UNIT_HEADER_LEN..self.packet_len() as usize],
            remaining: self.count(),
        }
    }
}

/// Iterator over messages in a packet; yields `Err` once and then stops if
/// the payload is malformed.
pub struct MessageIter<'a> {
    buf: &'a [u8],
    remaining: u8,
}

impl Iterator for MessageIter<'_> {
    type Item = Result<Message>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        match Message::parse(self.buf) {
            Ok((msg, len)) => {
                self.buf = &self.buf[len..];
                self.remaining -= 1;
                Some(Ok(msg))
            }
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }
}

/// A retransmission request, sent over a separate unicast channel to the
/// exchange's gap-request server (real sequenced feeds pair the multicast
/// stream with exactly this mechanism; §2's "stateful protocols").
///
/// Wire layout (9 bytes, little-endian): `magic(0x47) unit u8 seq u32
/// count u16 checksum u8` where the checksum is the XOR of all prior
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapRequest {
    /// Feed unit the gap is on.
    pub unit: u8,
    /// First missing sequence number.
    pub seq: u32,
    /// Number of missing messages.
    pub count: u16,
}

/// Gap request wire length.
pub const GAP_REQUEST_LEN: usize = 9;
const GAP_MAGIC: u8 = 0x47;

impl GapRequest {
    /// Append the 9-byte encoding to `out`, reusing whatever capacity
    /// `out` already has. Writer-style counterpart of
    /// [`GapRequest::emit`].
    pub fn emit_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + GAP_REQUEST_LEN, 0);
        self.write(&mut out[start..]);
    }

    fn write(&self, b: &mut [u8]) {
        b[0] = GAP_MAGIC;
        b[1] = self.unit;
        set_u32_le(b, 2, self.seq);
        set_u16_le(b, 6, self.count);
        b[8] = b[..8].iter().fold(0, |a, &x| a ^ x);
    }

    /// Encode to the fixed 9-byte wire form (no heap).
    pub fn emit(&self) -> [u8; GAP_REQUEST_LEN] {
        let mut b = [0u8; GAP_REQUEST_LEN];
        self.write(&mut b);
        b
    }

    /// Decode from wire bytes.
    pub fn parse(buf: &[u8]) -> Result<GapRequest> {
        if buf.len() < GAP_REQUEST_LEN {
            return Err(WireError::Truncated);
        }
        if buf[0] != GAP_MAGIC {
            return Err(WireError::BadField);
        }
        if buf[..8].iter().fold(0u8, |a, &x| a ^ x) != buf[8] {
            return Err(WireError::BadChecksum);
        }
        Ok(GapRequest {
            unit: buf[1],
            seq: get_u32_le(buf, 2),
            count: get_u16_le(buf, 6),
        })
    }
}

/// Accumulates messages into sequenced-unit packets, respecting a maximum
/// packet size — this packing is what produces multi-message frames and
/// the length distribution of Table 1.
pub struct PacketBuilder {
    unit: u8,
    next_seq: u32,
    max_payload: usize,
    buf: Vec<u8>,
    count: u8,
}

impl PacketBuilder {
    /// Start building packets for `unit`, with `first_seq` as the next
    /// message sequence and `max_payload` as the largest UDP payload to
    /// emit (typically MTU − 42).
    pub fn new(unit: u8, first_seq: u32, max_payload: usize) -> PacketBuilder {
        assert!(max_payload >= UNIT_HEADER_LEN + 64, "max_payload too small");
        // audit:allow(hotpath-alloc): builder working buffer; arena-backed zero-copy emit is ROADMAP item 2
        let mut buf = Vec::with_capacity(max_payload);
        buf.resize(UNIT_HEADER_LEN, 0);
        PacketBuilder {
            unit,
            next_seq: first_seq,
            max_payload,
            buf,
            count: 0,
        }
    }

    /// Next sequence number that will be assigned.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Number of messages buffered in the current packet.
    pub fn pending(&self) -> u8 {
        self.count
    }

    /// Append a message. Returns a completed packet if the message did not
    /// fit (the packet is sealed *without* it and the message starts the
    /// next packet) or if the packet reached 255 messages.
    pub fn push(&mut self, msg: &Message) -> Option<Vec<u8>> {
        let len = msg.wire_len();
        let flushed = if self.buf.len() + len > self.max_payload || self.count == u8::MAX {
            let mut packet = Vec::with_capacity(self.max_payload);
            self.seal_into(&mut packet);
            Some(packet)
        } else {
            None
        };
        msg.emit(&mut self.buf);
        self.count += 1;
        flushed
    }

    /// Writer-style [`PacketBuilder::push`]: when the message does not fit
    /// (or the packet reached 255 messages), the completed packet is
    /// appended to `out` and `true` is returned. The builder's working
    /// buffer is length-reset in place, so steady-state packing never
    /// allocates.
    pub fn push_into(&mut self, msg: &Message, out: &mut Vec<u8>) -> bool {
        let len = msg.wire_len();
        let sealed = self.buf.len() + len > self.max_payload || self.count == u8::MAX;
        if sealed {
            self.seal_into(out);
        }
        msg.emit(&mut self.buf);
        self.count += 1;
        sealed
    }

    /// Seal and return the current packet, if it holds any messages.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        if self.count == 0 {
            None
        } else {
            let mut packet = Vec::with_capacity(self.max_payload);
            self.seal_into(&mut packet);
            Some(packet)
        }
    }

    /// Writer-style [`PacketBuilder::flush`]: appends the sealed packet to
    /// `out` (if any messages are pending) and returns whether it did.
    pub fn flush_into(&mut self, out: &mut Vec<u8>) -> bool {
        if self.count == 0 {
            false
        } else {
            self.seal_into(out);
            true
        }
    }

    /// Fill the unit header in place, append the finished packet to `out`,
    /// and length-reset the working buffer (capacity kept — the next
    /// packet packs into the same allocation).
    fn seal_into(&mut self, out: &mut Vec<u8>) {
        let count = self.count;
        self.count = 0;
        let packet_len = self.buf.len() as u16;
        set_u16_le(&mut self.buf, 0, packet_len);
        self.buf[2] = count;
        self.buf[3] = self.unit;
        set_u32_le(&mut self.buf, 4, self.next_seq);
        self.next_seq = self.next_seq.wrapping_add(u32::from(count));
        out.extend_from_slice(&self.buf);
        self.buf.truncate(UNIT_HEADER_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Time { seconds: 34_200 },
            Message::AddOrder {
                offset_ns: 10,
                order_id: 1,
                side: Side::Buy,
                qty: 100,
                symbol: sym("SPY"),
                price: 450_0000,
            },
            Message::AddOrder {
                offset_ns: 20,
                order_id: 2,
                side: Side::Sell,
                qty: 1_000_000, // forces long encoding
                symbol: sym("BRKA"),
                price: 6_213_450_001, // odd ticks force long encoding
            },
            Message::OrderExecuted {
                offset_ns: 30,
                order_id: 1,
                qty: 50,
                exec_id: 900,
            },
            Message::ReduceSize {
                offset_ns: 40,
                order_id: 2,
                qty: 25,
            },
            Message::ReduceSize {
                offset_ns: 41,
                order_id: 2,
                qty: 100_000,
            },
            Message::ModifyOrder {
                offset_ns: 50,
                order_id: 1,
                qty: 75,
                price: 449_9900,
            },
            Message::ModifyOrder {
                offset_ns: 51,
                order_id: 1,
                qty: 75,
                price: 449_9901,
            },
            Message::DeleteOrder {
                offset_ns: 60,
                order_id: 1,
            },
            Message::Trade {
                offset_ns: 70,
                order_id: 3,
                side: Side::Buy,
                qty: 10,
                symbol: sym("QQQ"),
                price: 380_0000,
                exec_id: 901,
            },
            Message::TradingStatus {
                offset_ns: 80,
                symbol: sym("SPY"),
                status: b'T',
            },
        ]
    }

    #[test]
    fn paper_quoted_sizes() {
        // §5: "26 bytes for a new order and 14 bytes for an order
        // cancellation on PITCH".
        let add = Message::AddOrder {
            offset_ns: 0,
            order_id: 1,
            side: Side::Buy,
            qty: 100,
            symbol: sym("IBM"),
            price: 100_0000,
        };
        assert_eq!(add.wire_len(), 26);
        let del = Message::DeleteOrder {
            offset_ns: 0,
            order_id: 1,
        };
        assert_eq!(del.wire_len(), 14);
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let mut buf = Vec::new();
            msg.emit(&mut buf);
            assert_eq!(
                buf.len(),
                msg.wire_len(),
                "emit/wire_len mismatch for {msg:?}"
            );
            assert_eq!(buf[0] as usize, buf.len());
            let (parsed, used) = Message::parse(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn short_long_selection() {
        let make = |qty: u32, price: Price| Message::AddOrder {
            offset_ns: 0,
            order_id: 1,
            side: Side::Buy,
            qty,
            symbol: sym("A"),
            price,
        };
        assert_eq!(make(65535, 100).wire_len(), 26);
        assert_eq!(make(65536, 100).wire_len(), 34); // qty too large for short
        assert_eq!(make(100, 101).wire_len(), 34); // sub-cent tick
        assert_eq!(make(100, SHORT_PRICE_MAX + 100).wire_len(), 34); // price too high
    }

    #[test]
    fn packet_builder_packs_and_sequences() {
        let mut pb = PacketBuilder::new(3, 100, 200);
        let msgs = sample_messages();
        let mut packets = Vec::new();
        for m in &msgs {
            if let Some(p) = pb.push(m) {
                packets.push(p);
            }
        }
        if let Some(p) = pb.flush() {
            packets.push(p);
        }
        assert!(pb.flush().is_none());

        // Parse everything back out and compare.
        let mut decoded = Vec::new();
        let mut expect_seq = 100u32;
        for p in &packets {
            assert!(p.len() <= 200);
            let pkt = Packet::new_checked(&p[..]).unwrap();
            assert_eq!(pkt.unit(), 3);
            assert_eq!(pkt.sequence(), expect_seq);
            expect_seq += u32::from(pkt.count());
            for m in pkt.messages() {
                decoded.push(m.unwrap());
            }
        }
        assert_eq!(decoded, msgs);
        assert_eq!(pb.next_seq(), 100 + msgs.len() as u32);
    }

    #[test]
    fn packet_builder_respects_max_payload() {
        let mut pb = PacketBuilder::new(0, 0, 100);
        let add = Message::AddOrder {
            offset_ns: 0,
            order_id: 1,
            side: Side::Buy,
            qty: 10,
            symbol: sym("SPY"),
            price: 100_0000,
        };
        let mut sealed = 0;
        for _ in 0..10 {
            if pb.push(&add).is_some() {
                sealed += 1;
            }
        }
        // 8 + 26*3 = 86 fits; a 4th add would hit 112 > 100.
        assert!(sealed >= 2);
    }

    #[test]
    fn malformed_packets_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut pb = PacketBuilder::new(0, 0, 1400);
        pb.push(&Message::Time { seconds: 1 });
        let mut p = pb.flush().unwrap();
        p[0] = 200; // length > buffer
        assert_eq!(
            Packet::new_checked(&p[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn iterator_surfaces_mid_packet_corruption() {
        let mut pb = PacketBuilder::new(0, 0, 1400);
        pb.push(&Message::Time { seconds: 1 });
        pb.push(&Message::DeleteOrder {
            offset_ns: 0,
            order_id: 5,
        });
        let mut p = pb.flush().unwrap();
        p[UNIT_HEADER_LEN + 6 + 1] = 0x99; // corrupt the delete's type byte
        let pkt = Packet::new_checked(&p[..]).unwrap();
        let results: Vec<_> = pkt.messages().collect();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(WireError::BadField));
    }

    #[test]
    fn message_parse_rejects_bad_lengths() {
        assert_eq!(Message::parse(&[1u8]).unwrap_err(), WireError::Truncated);
        assert_eq!(
            Message::parse(&[0, 0x20]).unwrap_err(),
            WireError::BadLength
        );
        // Wrong declared length for a known type.
        let mut buf = Vec::new();
        Message::Time { seconds: 1 }.emit(&mut buf);
        buf[0] = 5;
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadLength);
    }

    #[test]
    fn gap_request_roundtrip_and_validation() {
        let g = GapRequest {
            unit: 3,
            seq: 1_000_000,
            count: 250,
        };
        let buf = g.emit();
        assert_eq!(buf.len(), GAP_REQUEST_LEN);
        assert_eq!(GapRequest::parse(&buf).unwrap(), g);
        let mut bad = buf;
        bad[3] ^= 0xFF;
        assert_eq!(GapRequest::parse(&bad).unwrap_err(), WireError::BadChecksum);
        let mut bad = buf;
        bad[0] = 0;
        assert_eq!(GapRequest::parse(&bad).unwrap_err(), WireError::BadField);
        assert_eq!(
            GapRequest::parse(&buf[..5]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn accessors() {
        let msgs = sample_messages();
        assert_eq!(msgs[1].symbol(), Some(sym("SPY")));
        assert_eq!(msgs[3].symbol(), None);
        assert_eq!(msgs[3].order_id(), Some(1));
        assert_eq!(msgs[0].order_id(), None);
        assert_eq!(Side::Buy.flip(), Side::Sell);
        assert_eq!(Side::Sell.flip(), Side::Buy);
    }
}
