//! Error type shared by all codecs.

use std::fmt;

/// Errors surfaced while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the format requires.
    Truncated,
    /// A length field disagrees with the buffer (e.g. an IPv4 total length
    /// longer than the frame, a PITCH message length of zero).
    BadLength,
    /// A field holds a value the codec cannot interpret (unknown version,
    /// unknown message type, invalid enum discriminant).
    BadField,
    /// A checksum failed verification.
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::BadField => write!(f, "malformed field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(WireError::Truncated.to_string(), "buffer truncated");
        assert_eq!(WireError::BadChecksum.to_string(), "checksum mismatch");
    }
}
