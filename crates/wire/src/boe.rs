//! A binary order-entry protocol modeled on Cboe BOE.
//!
//! Order entry rides long-lived TCP sessions from the trading firm's
//! gateways to the exchange (§2). Messages are compact little-endian
//! binary records with a 7-byte framing header:
//!
//! ```text
//! magic  u8   0xBA
//! length u8   whole message length including this header
//! type   u8   discriminant
//! seq    u32  per-session sequence number
//! ```
//!
//! The protocol exhibits the races the paper mentions (§2): a cancel can
//! cross a fill in flight; the state machines in `tn-market` and
//! `tn-trading` handle both orderings.

use crate::bytes::{get_u32_le, get_u64_le, set_u32_le, set_u64_le};
use crate::error::{Result, WireError};
use crate::pitch::Side;
use crate::symbol::Symbol;

/// Framing header length.
pub const HEADER_LEN: usize = 7;
/// Framing magic byte.
pub const MAGIC: u8 = 0xBA;

/// Message type discriminants.
pub mod msg_type {
    pub const LOGIN: u8 = 0x00;
    pub const NEW_ORDER: u8 = 0x01;
    pub const CANCEL_ORDER: u8 = 0x02;
    pub const MODIFY_ORDER: u8 = 0x03;
    pub const HEARTBEAT: u8 = 0x0F;
    pub const ORDER_ACK: u8 = 0x10;
    pub const ORDER_REJECT: u8 = 0x11;
    pub const FILL: u8 = 0x12;
    pub const CANCEL_ACK: u8 = 0x13;
}

/// Why an exchange rejected a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Unknown symbol (the paper's example of an invalid-ticker reject).
    UnknownSymbol,
    /// Order id not found (e.g. cancel after fill — the §2 race).
    UnknownOrder,
    /// Price out of allowed bands.
    BadPrice,
    /// Session not logged in or sequence error.
    Session,
}

impl RejectReason {
    fn to_wire(self) -> u8 {
        match self {
            RejectReason::UnknownSymbol => 1,
            RejectReason::UnknownOrder => 2,
            RejectReason::BadPrice => 3,
            RejectReason::Session => 4,
        }
    }

    fn from_wire(v: u8) -> Result<Self> {
        match v {
            1 => Ok(RejectReason::UnknownSymbol),
            2 => Ok(RejectReason::UnknownOrder),
            3 => Ok(RejectReason::BadPrice),
            4 => Ok(RejectReason::Session),
            _ => Err(WireError::BadField),
        }
    }
}

/// A decoded order-entry message (either direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Session login (firm → exchange).
    Login {
        /// Firm-assigned session id.
        session: u32,
        /// Authentication token (opaque in the simulator).
        token: u64,
    },
    /// Liveness keepalive, either direction.
    Heartbeat,
    /// Enter a new limit order (firm → exchange).
    NewOrder {
        /// Client order id, unique per session.
        cl_ord_id: u64,
        /// Side.
        side: Side,
        /// Quantity.
        qty: u32,
        /// Instrument.
        symbol: Symbol,
        /// Limit price (1e-4 dollars).
        price: u64,
    },
    /// Cancel an open order (firm → exchange).
    CancelOrder {
        /// Client order id of the order to cancel.
        cl_ord_id: u64,
    },
    /// Modify price/size of an open order (firm → exchange).
    ModifyOrder {
        /// Client order id.
        cl_ord_id: u64,
        /// New quantity.
        qty: u32,
        /// New price (1e-4 dollars).
        price: u64,
    },
    /// Order accepted (exchange → firm).
    OrderAck {
        /// Echoed client order id.
        cl_ord_id: u64,
        /// Exchange-assigned order id (appears in market data).
        exch_ord_id: u64,
    },
    /// Request rejected (exchange → firm).
    OrderReject {
        /// Echoed client order id.
        cl_ord_id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// An open order traded (exchange → firm).
    Fill {
        /// Client order id.
        cl_ord_id: u64,
        /// Execution id (matches the feed's trade/execute messages).
        exec_id: u64,
        /// Executed quantity.
        qty: u32,
        /// Execution price (1e-4 dollars).
        price: u64,
        /// Remaining open quantity.
        leaves: u32,
    },
    /// Cancel confirmed; the order is out (exchange → firm).
    CancelAck {
        /// Client order id.
        cl_ord_id: u64,
    },
}

impl Message {
    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN
            + match self {
                Message::Login { .. } => 12,
                Message::Heartbeat => 0,
                Message::NewOrder { .. } => 27,
                Message::CancelOrder { .. } => 8,
                Message::ModifyOrder { .. } => 20,
                Message::OrderAck { .. } => 16,
                Message::OrderReject { .. } => 9,
                Message::Fill { .. } => 32,
                Message::CancelAck { .. } => 8,
            }
    }

    fn type_byte(&self) -> u8 {
        match self {
            Message::Login { .. } => msg_type::LOGIN,
            Message::Heartbeat => msg_type::HEARTBEAT,
            Message::NewOrder { .. } => msg_type::NEW_ORDER,
            Message::CancelOrder { .. } => msg_type::CANCEL_ORDER,
            Message::ModifyOrder { .. } => msg_type::MODIFY_ORDER,
            Message::OrderAck { .. } => msg_type::ORDER_ACK,
            Message::OrderReject { .. } => msg_type::ORDER_REJECT,
            Message::Fill { .. } => msg_type::FILL,
            Message::CancelAck { .. } => msg_type::CANCEL_ACK,
        }
    }

    /// Append the wire encoding (with `seq` in the framing header) to `out`.
    pub fn emit(&self, seq: u32, out: &mut Vec<u8>) {
        let start = out.len();
        let len = self.wire_len();
        out.resize(start + len, 0);
        let b = &mut out[start..];
        b[0] = MAGIC;
        b[1] = len as u8;
        b[2] = self.type_byte();
        set_u32_le(b, 3, seq);
        match *self {
            Message::Login { session, token } => {
                set_u32_le(b, 7, session);
                set_u64_le(b, 11, token);
            }
            Message::Heartbeat => {}
            Message::NewOrder {
                cl_ord_id,
                side,
                qty,
                symbol,
                price,
            } => {
                set_u64_le(b, 7, cl_ord_id);
                b[15] = match side {
                    Side::Buy => b'B',
                    Side::Sell => b'S',
                };
                set_u32_le(b, 16, qty);
                symbol.to_wire(&mut b[20..26]);
                set_u64_le(b, 26, price);
            }
            Message::CancelOrder { cl_ord_id } => {
                set_u64_le(b, 7, cl_ord_id);
            }
            Message::ModifyOrder {
                cl_ord_id,
                qty,
                price,
            } => {
                set_u64_le(b, 7, cl_ord_id);
                set_u32_le(b, 15, qty);
                set_u64_le(b, 19, price);
            }
            Message::OrderAck {
                cl_ord_id,
                exch_ord_id,
            } => {
                set_u64_le(b, 7, cl_ord_id);
                set_u64_le(b, 15, exch_ord_id);
            }
            Message::OrderReject { cl_ord_id, reason } => {
                set_u64_le(b, 7, cl_ord_id);
                b[15] = reason.to_wire();
            }
            Message::Fill {
                cl_ord_id,
                exec_id,
                qty,
                price,
                leaves,
            } => {
                set_u64_le(b, 7, cl_ord_id);
                set_u64_le(b, 15, exec_id);
                set_u32_le(b, 23, qty);
                set_u64_le(b, 27, price);
                set_u32_le(b, 35, leaves);
            }
            Message::CancelAck { cl_ord_id } => {
                set_u64_le(b, 7, cl_ord_id);
            }
        }
    }

    /// Decode one message from the front of `buf`; returns the message,
    /// its framing sequence, and its wire length.
    pub fn parse(buf: &[u8]) -> Result<(Message, u32, usize)> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if buf[0] != MAGIC {
            return Err(WireError::BadField);
        }
        let len = buf[1] as usize;
        if len < HEADER_LEN || len > buf.len() {
            return Err(WireError::BadLength);
        }
        let seq = get_u32_le(buf, 3);
        let b = &buf[..len];
        let need = |want: usize| {
            if len == want {
                Ok(())
            } else {
                Err(WireError::BadLength)
            }
        };
        let msg = match b[2] {
            msg_type::LOGIN => {
                need(19)?;
                Message::Login {
                    session: get_u32_le(b, 7),
                    token: get_u64_le(b, 11),
                }
            }
            msg_type::HEARTBEAT => {
                need(7)?;
                Message::Heartbeat
            }
            msg_type::NEW_ORDER => {
                need(34)?;
                Message::NewOrder {
                    cl_ord_id: get_u64_le(b, 7),
                    side: match b[15] {
                        b'B' => Side::Buy,
                        b'S' => Side::Sell,
                        _ => return Err(WireError::BadField),
                    },
                    qty: get_u32_le(b, 16),
                    symbol: Symbol::from_wire(&b[20..26]),
                    price: get_u64_le(b, 26),
                }
            }
            msg_type::CANCEL_ORDER => {
                need(15)?;
                Message::CancelOrder {
                    cl_ord_id: get_u64_le(b, 7),
                }
            }
            msg_type::MODIFY_ORDER => {
                need(27)?;
                Message::ModifyOrder {
                    cl_ord_id: get_u64_le(b, 7),
                    qty: get_u32_le(b, 15),
                    price: get_u64_le(b, 19),
                }
            }
            msg_type::ORDER_ACK => {
                need(23)?;
                Message::OrderAck {
                    cl_ord_id: get_u64_le(b, 7),
                    exch_ord_id: get_u64_le(b, 15),
                }
            }
            msg_type::ORDER_REJECT => {
                need(16)?;
                Message::OrderReject {
                    cl_ord_id: get_u64_le(b, 7),
                    reason: RejectReason::from_wire(b[15])?,
                }
            }
            msg_type::FILL => {
                need(39)?;
                Message::Fill {
                    cl_ord_id: get_u64_le(b, 7),
                    exec_id: get_u64_le(b, 15),
                    qty: get_u32_le(b, 23),
                    price: get_u64_le(b, 27),
                    leaves: get_u32_le(b, 35),
                }
            }
            msg_type::CANCEL_ACK => {
                need(15)?;
                Message::CancelAck {
                    cl_ord_id: get_u64_le(b, 7),
                }
            }
            _ => return Err(WireError::BadField),
        };
        Ok((msg, seq, len))
    }
}

/// Reassembles BOE messages from a TCP byte stream.
///
/// Order-entry messages can split across segments; gateways and exchange
/// front-ends feed received bytes in and pull complete messages out.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// Fresh decoder with an empty reassembly buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pull the next complete message, if one is buffered. Malformed
    /// framing surfaces as an error and poisons the stream (real sessions
    /// would disconnect).
    pub fn next_message(&mut self) -> Result<Option<(Message, u32)>> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        if self.buf[0] != MAGIC {
            return Err(WireError::BadField);
        }
        let len = self.buf[1] as usize;
        if len < HEADER_LEN {
            return Err(WireError::BadLength);
        }
        if self.buf.len() < len {
            return Ok(None);
        }
        let (msg, seq, used) = Message::parse(&self.buf)?;
        self.buf.drain(..used);
        Ok(Some((msg, seq)))
    }

    /// Bytes currently buffered awaiting completion.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s).unwrap()
    }

    fn sample() -> Vec<Message> {
        vec![
            Message::Login {
                session: 7,
                token: 0xDEAD,
            },
            Message::Heartbeat,
            Message::NewOrder {
                cl_ord_id: 42,
                side: Side::Buy,
                qty: 100,
                symbol: sym("SPY"),
                price: 450_0000,
            },
            Message::CancelOrder { cl_ord_id: 42 },
            Message::ModifyOrder {
                cl_ord_id: 42,
                qty: 50,
                price: 449_0000,
            },
            Message::OrderAck {
                cl_ord_id: 42,
                exch_ord_id: 9001,
            },
            Message::OrderReject {
                cl_ord_id: 43,
                reason: RejectReason::UnknownSymbol,
            },
            Message::Fill {
                cl_ord_id: 42,
                exec_id: 77,
                qty: 50,
                price: 450_0000,
                leaves: 50,
            },
            Message::CancelAck { cl_ord_id: 42 },
        ]
    }

    #[test]
    fn all_messages_roundtrip() {
        for (i, msg) in sample().into_iter().enumerate() {
            let mut buf = Vec::new();
            msg.emit(i as u32, &mut buf);
            assert_eq!(buf.len(), msg.wire_len());
            let (parsed, seq, used) = Message::parse(&buf).unwrap();
            assert_eq!(parsed, msg);
            assert_eq!(seq, i as u32);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decoder_handles_arbitrary_segmentation() {
        let msgs = sample();
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            m.emit(i as u32, &mut stream);
        }
        // Feed one byte at a time — the worst segmentation possible.
        let mut dec = Decoder::new();
        let mut out = Vec::new();
        for byte in stream {
            dec.push(&[byte]);
            while let Some((m, _)) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn decoder_rejects_bad_magic() {
        let mut dec = Decoder::new();
        dec.push(&[0x00; 8]);
        assert_eq!(dec.next_message().unwrap_err(), WireError::BadField);
    }

    #[test]
    fn parse_validates_lengths_and_fields() {
        let mut buf = Vec::new();
        Message::CancelOrder { cl_ord_id: 1 }.emit(0, &mut buf);
        buf[1] = 99; // declared length beyond buffer
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadLength);

        let mut buf = Vec::new();
        Message::NewOrder {
            cl_ord_id: 1,
            side: Side::Buy,
            qty: 1,
            symbol: sym("A"),
            price: 1,
        }
        .emit(0, &mut buf);
        buf[15] = b'X'; // invalid side
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadField);

        let mut buf = Vec::new();
        Message::OrderReject {
            cl_ord_id: 1,
            reason: RejectReason::Session,
        }
        .emit(0, &mut buf);
        buf[15] = 200; // invalid reason
        assert_eq!(Message::parse(&buf).unwrap_err(), WireError::BadField);
    }

    #[test]
    fn order_entry_messages_are_small() {
        // §5: order-entry payloads are tens of bytes — far smaller than
        // the 54-byte Eth+IP+TCP header stack that carries them.
        let cancel = Message::CancelOrder { cl_ord_id: 1 };
        assert!(cancel.wire_len() <= 16);
        let new = Message::NewOrder {
            cl_ord_id: 1,
            side: Side::Buy,
            qty: 1,
            symbol: sym("A"),
            price: 1,
        };
        assert!(new.wire_len() <= 34);
    }
}
