//! TCP header codec.
//!
//! Order-entry sessions (§2: long-lived TCP connections to the exchange)
//! are simulated at the segment level; this module provides the header
//! codec. Connection state machines live in `tn-feed`/`tn-trading` — the
//! simulator does not need retransmission timers to reproduce the paper's
//! results, but it does account for real header bytes (the 40-byte
//! Eth+IP+TCP overhead §5 calls out).

use crate::bytes::{get_u16_be, get_u32_be, internet_checksum, set_u16_be, set_u32_be};
use crate::error::{Result, WireError};
use crate::ipv4;

/// Length of the option-less TCP header we emit.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (subset used by the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flags(pub u8);

impl Flags {
    pub const FIN: Flags = Flags(0x01);
    pub const SYN: Flags = Flags(0x02);
    pub const RST: Flags = Flags(0x04);
    pub const PSH: Flags = Flags(0x08);
    pub const ACK: Flags = Flags(0x10);
    /// No flags set.
    pub const EMPTY: Flags = Flags(0);

    /// True if all bits of `other` are set in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags(self.0 | rhs.0)
    }
}

/// Zero-copy view of a TCP segment.
#[derive(Debug)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Wrap with validation: header present and data offset sane.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let s = Segment { buffer };
        let off = s.header_len();
        if !(HEADER_LEN..=60).contains(&off) || off > len {
            return Err(WireError::BadLength);
        }
        Ok(s)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        get_u32_be(self.buffer.as_ref(), 4)
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        get_u32_be(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes, from the data-offset field.
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[12] >> 4) as usize) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> Flags {
        Flags(self.buffer.as_ref()[13] & 0x1f)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 14)
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verify the checksum against the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: ipv4::Addr, dst: ipv4::Addr) -> bool {
        let b = self.buffer.as_ref();
        let seed = ipv4::pseudo_header_sum(src, dst, ipv4::PROTO_TCP, b.len() as u16);
        internet_checksum(seed, b) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Initialize a fresh 20-byte header (data offset 5).
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[12] = 5 << 4;
    }

    /// Set source port.
    pub fn set_src_port(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 0, v);
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 2, v);
    }

    /// Set sequence number.
    pub fn set_seq(&mut self, v: u32) {
        set_u32_be(self.buffer.as_mut(), 4, v);
    }

    /// Set acknowledgment number.
    pub fn set_ack(&mut self, v: u32) {
        set_u32_be(self.buffer.as_mut(), 8, v);
    }

    /// Set flags.
    pub fn set_flags(&mut self, v: Flags) {
        self.buffer.as_mut()[13] = v.0;
    }

    /// Set window.
    pub fn set_window(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 14, v);
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.header_len();
        &mut self.buffer.as_mut()[off..]
    }

    /// Compute and store the checksum.
    pub fn fill_checksum(&mut self, src: ipv4::Addr, dst: ipv4::Addr) {
        let len = self.buffer.as_ref().len() as u16;
        let b = self.buffer.as_mut();
        set_u16_be(b, 16, 0);
        let seed = ipv4::pseudo_header_sum(src, dst, ipv4::PROTO_TCP, len);
        let ck = internet_checksum(seed, b);
        set_u16_be(b, 16, ck);
    }
}

/// Append a complete segment around `payload` to `out`, reusing whatever
/// capacity `out` already has. Writer-style counterpart of [`build`].
#[allow(clippy::too_many_arguments)]
pub fn emit_into(
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: Flags,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    out.extend_from_slice(payload);
    finish_header(
        &mut out[start..],
        src,
        dst,
        src_port,
        dst_port,
        seq,
        ack,
        flags,
    );
}

/// Fill the 20-byte header at the front of `segment` (header + payload
/// already laid out contiguously) and compute the checksum. The in-place
/// finisher used by [`emit_into`] and the single-pass stack emitters.
#[allow(clippy::too_many_arguments)]
pub fn finish_header(
    segment: &mut [u8],
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: Flags,
) {
    let mut s = Segment::new_unchecked(segment);
    s.init();
    s.set_src_port(src_port);
    s.set_dst_port(dst_port);
    s.set_seq(seq);
    s.set_ack(ack);
    s.set_flags(flags);
    s.set_window(0xffff);
    s.fill_checksum(src, dst);
}

/// Allocate and fill a complete segment.
#[allow(clippy::too_many_arguments)]
pub fn build(
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: Flags,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_into(
        src, dst, src_port, dst_port, seq, ack, flags, payload, &mut buf,
    );
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ipv4::Addr = ipv4::Addr::new(10, 0, 0, 1);
    const B: ipv4::Addr = ipv4::Addr::new(10, 0, 9, 9);

    #[test]
    fn build_parse_roundtrip() {
        let buf = build(
            A,
            B,
            49000,
            443,
            1000,
            2000,
            Flags::ACK | Flags::PSH,
            b"new order bytes",
        );
        let s = Segment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 49000);
        assert_eq!(s.dst_port(), 443);
        assert_eq!(s.seq(), 1000);
        assert_eq!(s.ack(), 2000);
        assert!(s.flags().contains(Flags::ACK));
        assert!(s.flags().contains(Flags::PSH));
        assert!(!s.flags().contains(Flags::SYN));
        assert_eq!(s.payload(), b"new order bytes");
        assert_eq!(s.header_len(), HEADER_LEN);
        assert!(s.verify_checksum(A, B));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = build(A, B, 1, 2, 0, 0, Flags::SYN, b"");
        buf[4] ^= 1;
        let s = Segment::new_checked(&buf[..]).unwrap();
        assert!(!s.verify_checksum(A, B));
    }

    #[test]
    fn validation() {
        assert_eq!(
            Segment::new_checked(&[0u8; 19][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = build(A, B, 1, 2, 0, 0, Flags::SYN, b"");
        buf[12] = 2 << 4; // data offset below minimum
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
        buf[12] = 15 << 4; // data offset beyond buffer
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn flags_ops() {
        let f = Flags::SYN | Flags::ACK;
        assert!(f.contains(Flags::SYN));
        assert!(f.contains(Flags::ACK));
        assert!(!f.contains(Flags::FIN));
        assert_eq!(Flags::EMPTY.0, 0);
    }
}
