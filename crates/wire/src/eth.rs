//! Ethernet II framing.
//!
//! Frame lengths throughout the workspace follow Table 1's convention:
//! they include the Ethernet, IP and UDP headers but not the preamble,
//! SFD, or FCS.

use std::fmt;

use crate::bytes::{get_u16_be, set_u16_be};
use crate::error::{Result, WireError};

/// Length of the Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;
/// Minimum payload to reach the 64-byte minimum frame (with 4-byte FCS
/// counted by the standard; our lengths exclude FCS so the minimum frame
/// we emit is 60 bytes on the wire + FCS).
pub const MIN_FRAME_LEN: usize = 60;
/// Conventional 1500-byte MTU ceiling -> 1514-byte max frame.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + 1500;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address derived from a host index —
    /// handy for simulation topologies.
    pub const fn host(idx: u32) -> MacAddr {
        let b = idx.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The IPv4 multicast MAC for a group address (RFC 1112 §6.4: low 23
    /// bits of the group mapped under 01:00:5e).
    pub fn ipv4_multicast(group: crate::ipv4::Addr) -> MacAddr {
        let g = group.0;
        MacAddr([0x01, 0x00, 0x5e, g[1] & 0x7f, g[2], g[3]])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// The custom Layer-1 transport of [`crate::l1t`] (0x88B5, a value
    /// reserved for local experiments).
    L1Transport,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x88B5 => EtherType::L1Transport,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::L1Transport => 0x88B5,
            EtherType::Other(o) => o,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wrap a buffer, checking it is at least header-sized.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from(get_u16_be(self.buffer.as_ref(), 12))
    }

    /// The L3 payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Total frame length.
    pub fn len(&self) -> usize {
        self.buffer.as_ref().len()
    }

    /// True if the buffer holds only a header.
    pub fn is_empty(&self) -> bool {
        self.len() <= HEADER_LEN
    }

    /// Recover the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set destination MAC.
    pub fn set_dst(&mut self, v: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&v.0);
    }

    /// Set source MAC.
    pub fn set_src(&mut self, v: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&v.0);
    }

    /// Set EtherType.
    pub fn set_ethertype(&mut self, v: EtherType) {
        set_u16_be(self.buffer.as_mut(), 12, v.into());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Append a complete frame around `payload` to `out`, reusing whatever
/// capacity `out` already has. The writer-style counterpart of [`build`].
pub fn emit_into(
    dst: MacAddr,
    src: MacAddr,
    ethertype: EtherType,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    let mut f = Frame::new_unchecked(&mut out[start..]);
    f.set_dst(dst);
    f.set_src(src);
    f.set_ethertype(ethertype);
    out.extend_from_slice(payload);
}

/// Allocate and fill a complete frame around `payload`.
pub fn build(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_into(dst, src, ethertype, payload, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_roundtrip() {
        let payload = [0xAAu8; 46];
        let buf = build(
            MacAddr::BROADCAST,
            MacAddr::host(3),
            EtherType::Ipv4,
            &payload,
        );
        assert_eq!(buf.len(), 60);
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::BROADCAST);
        assert_eq!(f.src(), MacAddr::host(3));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), &payload);
        assert!(!f.is_empty());
    }

    #[test]
    fn truncated_frame_rejected() {
        assert!(Frame::new_checked(&[0u8; 13][..]).is_err());
        assert!(Frame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn multicast_mac_mapping() {
        let group = crate::ipv4::Addr([239, 1, 2, 3]);
        let mac = MacAddr::ipv4_multicast(group);
        assert_eq!(mac.0, [0x01, 0x00, 0x5e, 0x01, 0x02, 0x03]);
        assert!(mac.is_multicast());
        // High bit of the second group octet is masked off.
        let group = crate::ipv4::Addr([239, 129, 2, 3]);
        assert_eq!(MacAddr::ipv4_multicast(group).0[3], 0x01);
    }

    #[test]
    fn host_macs_are_unicast_and_unique() {
        assert!(!MacAddr::host(1).is_multicast());
        assert_ne!(MacAddr::host(1), MacAddr::host(2));
        assert_eq!(MacAddr::host(7).to_string(), "02:00:00:00:00:07");
    }

    #[test]
    fn ethertype_conversions() {
        assert_eq!(u16::from(EtherType::Ipv4), 0x0800);
        assert_eq!(EtherType::from(0x88B5), EtherType::L1Transport);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(u16::from(EtherType::Other(0x4321)), 0x4321);
    }
}
