//! IPv4 header codec (no options, which trading feeds never use).

use std::fmt;

use crate::bytes::{get_u16_be, internet_checksum, set_u16_be};
use crate::error::{Result, WireError};

/// Length of the option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// Protocol numbers used in this workspace.
pub const PROTO_IGMP: u8 = 2;
pub const PROTO_TCP: u8 = 6;
pub const PROTO_UDP: u8 = 17;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub [u8; 4]);

impl Addr {
    /// Build from octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr([a, b, c, d])
    }

    /// A unicast host address in 10.0.0.0/8 derived from an index.
    pub const fn host(idx: u32) -> Addr {
        let b = idx.to_be_bytes();
        Addr([10, b[1], b[2], b[3]])
    }

    /// An administratively-scoped multicast group (239.0.0.0/8) derived
    /// from a group index — the paper's feeds are partitioned across many
    /// such groups.
    pub const fn multicast_group(idx: u32) -> Addr {
        let b = idx.to_be_bytes();
        Addr([239, b[1], b[2], b[3]])
    }

    /// True for 224.0.0.0/4.
    pub fn is_multicast(&self) -> bool {
        self.0[0] >= 224 && self.0[0] <= 239
    }

    /// The group index assigned by [`Addr::multicast_group`], if this is
    /// such an address.
    pub fn multicast_index(&self) -> Option<u32> {
        if self.0[0] == 239 {
            Some(u32::from_be_bytes([0, self.0[1], self.0[2], self.0[3]]))
        } else {
            None
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Zero-copy view of an IPv4 packet.
#[derive(Debug)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wrap with structural validation: header present, version 4, IHL 5,
    /// total length consistent with the buffer.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let p = Packet { buffer };
        let b = p.buffer.as_ref();
        if b[0] >> 4 != 4 {
            return Err(WireError::BadField);
        }
        if b[0] & 0x0f != 5 {
            // Options unsupported; feeds never carry them.
            return Err(WireError::BadField);
        }
        let total = p.total_len() as usize;
        if total < HEADER_LEN || total > len {
            return Err(WireError::BadLength);
        }
        Ok(p)
    }

    /// Total length field.
    pub fn total_len(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 2)
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src(&self) -> Addr {
        let b = self.buffer.as_ref();
        Addr([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    pub fn dst(&self) -> Addr {
        let b = self.buffer.as_ref();
        Addr([b[16], b[17], b[18], b[19]])
    }

    /// Validate the header checksum.
    pub fn verify_checksum(&self) -> bool {
        internet_checksum(0, &self.buffer.as_ref()[..HEADER_LEN]) == 0
    }

    /// The L4 payload, bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }

    /// Recover the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Initialize version/IHL and defaults. Call before other setters on a
    /// fresh buffer.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0; // DSCP/ECN
        set_u16_be(b, 4, 0); // identification
        set_u16_be(b, 6, 0x4000); // flags: DF
        b[8] = 64; // default TTL
    }

    /// Set total length.
    pub fn set_total_len(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 2, v);
    }

    /// Set TTL.
    pub fn set_ttl(&mut self, v: u8) {
        self.buffer.as_mut()[8] = v;
    }

    /// Set protocol.
    pub fn set_protocol(&mut self, v: u8) {
        self.buffer.as_mut()[9] = v;
    }

    /// Set source address.
    pub fn set_src(&mut self, v: Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&v.0);
    }

    /// Set destination address.
    pub fn set_dst(&mut self, v: Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&v.0);
    }

    /// Compute and store the header checksum (zeroing it first).
    pub fn fill_checksum(&mut self) {
        let b = self.buffer.as_mut();
        set_u16_be(b, 10, 0);
        let ck = internet_checksum(0, &b[..HEADER_LEN]);
        set_u16_be(b, 10, ck);
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Pseudo-header checksum seed for UDP/TCP over this packet's addresses.
pub fn pseudo_header_sum(src: Addr, dst: Addr, protocol: u8, l4_len: u16) -> u32 {
    let mut sum = 0u32;
    sum += u32::from(u16::from_be_bytes([src.0[0], src.0[1]]));
    sum += u32::from(u16::from_be_bytes([src.0[2], src.0[3]]));
    sum += u32::from(u16::from_be_bytes([dst.0[0], dst.0[1]]));
    sum += u32::from(u16::from_be_bytes([dst.0[2], dst.0[3]]));
    sum += u32::from(protocol);
    sum += u32::from(l4_len);
    sum
}

/// Append a complete IPv4 packet around `payload` to `out`, reusing
/// whatever capacity `out` already has. Writer-style counterpart of
/// [`build`].
pub fn emit_into(src: Addr, dst: Addr, protocol: u8, payload: &[u8], out: &mut Vec<u8>) {
    let total = HEADER_LEN + payload.len();
    debug_assert!(total <= u16::MAX as usize);
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    out.extend_from_slice(payload);
    finish_header(&mut out[start..], src, dst, protocol);
}

/// Fill the 20-byte header at the front of `packet` (header + payload
/// already laid out contiguously) and compute the header checksum. The
/// in-place finisher used by [`emit_into`] and the single-pass stack
/// emitters.
pub fn finish_header(packet: &mut [u8], src: Addr, dst: Addr, protocol: u8) {
    let total = packet.len();
    debug_assert!(total <= u16::MAX as usize);
    let mut p = Packet::new_unchecked(packet);
    p.init();
    p.set_total_len(total as u16);
    p.set_protocol(protocol);
    p.set_src(src);
    p.set_dst(dst);
    p.fill_checksum();
}

/// Allocate and fill a complete IPv4 packet around `payload`.
pub fn build(src: Addr, dst: Addr, protocol: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_into(src, dst, protocol, payload, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_roundtrip_with_checksum() {
        let payload = b"market data";
        let buf = build(Addr::host(1), Addr::multicast_group(17), PROTO_UDP, payload);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src(), Addr::host(1));
        assert_eq!(p.dst(), Addr::multicast_group(17));
        assert_eq!(p.protocol(), PROTO_UDP);
        assert_eq!(p.payload(), payload);
        assert_eq!(p.ttl(), 64);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut buf = build(Addr::host(1), Addr::host(2), PROTO_TCP, b"x");
        buf[15] ^= 0xff;
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn structural_validation() {
        assert_eq!(
            Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = build(Addr::host(1), Addr::host(2), PROTO_UDP, b"abc");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField
        );
        buf[0] = 0x46; // IHL 6 (options)
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField
        );
        buf[0] = 0x45;
        buf[2] = 0xff; // total length > buffer
        buf[3] = 0xff;
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn payload_respects_total_len() {
        // A frame padded to the Ethernet minimum must not leak pad bytes
        // into the payload.
        let mut buf = build(Addr::host(1), Addr::host(2), PROTO_UDP, b"abc");
        buf.extend_from_slice(&[0u8; 20]); // Ethernet pad
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), b"abc");
    }

    #[test]
    fn multicast_helpers() {
        let g = Addr::multicast_group(300);
        assert!(g.is_multicast());
        assert_eq!(g.multicast_index(), Some(300));
        assert!(!Addr::host(5).is_multicast());
        assert_eq!(Addr::host(5).multicast_index(), None);
        assert!(Addr::new(224, 0, 0, 1).is_multicast());
        assert!(!Addr::new(240, 0, 0, 1).is_multicast());
        assert_eq!(g.to_string(), "239.0.1.44");
    }

    #[test]
    fn pseudo_header_sum_is_symmetric_in_length() {
        let a = pseudo_header_sum(Addr::host(1), Addr::host(2), PROTO_UDP, 8);
        let b = pseudo_header_sum(Addr::host(1), Addr::host(2), PROTO_UDP, 9);
        assert_eq!(b - a, 1);
    }
}
