//! UDP header codec.

use crate::bytes::{get_u16_be, internet_checksum, set_u16_be};
use crate::error::{Result, WireError};
use crate::ipv4;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view of a UDP datagram.
#[derive(Debug)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wrap with validation: header present, length field consistent.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let d = Datagram { buffer };
        let l = d.len_field() as usize;
        if l < HEADER_LEN || l > len {
            return Err(WireError::BadLength);
        }
        Ok(d)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 2)
    }

    /// Length field (header + payload).
    pub fn len_field(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 4)
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        get_u16_be(self.buffer.as_ref(), 6)
    }

    /// The payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field() as usize]
    }

    /// Verify the checksum against the IPv4 pseudo-header. A zero checksum
    /// means "not computed" and passes (RFC 768).
    pub fn verify_checksum(&self, src: ipv4::Addr, dst: ipv4::Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let l = self.len_field();
        let seed = ipv4::pseudo_header_sum(src, dst, ipv4::PROTO_UDP, l);
        internet_checksum(seed, &self.buffer.as_ref()[..l as usize]) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 0, v);
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 2, v);
    }

    /// Set the length field.
    pub fn set_len_field(&mut self, v: u16) {
        set_u16_be(self.buffer.as_mut(), 4, v);
    }

    /// Mutable payload access (whole remaining buffer).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }

    /// Compute and store the checksum over the pseudo-header and datagram.
    pub fn fill_checksum(&mut self, src: ipv4::Addr, dst: ipv4::Addr) {
        let l = get_u16_be(self.buffer.as_ref(), 4);
        let b = self.buffer.as_mut();
        set_u16_be(b, 6, 0);
        let seed = ipv4::pseudo_header_sum(src, dst, ipv4::PROTO_UDP, l);
        let mut ck = internet_checksum(seed, &b[..l as usize]);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        set_u16_be(b, 6, ck);
    }
}

/// Append a UDP datagram (with checksum) around `payload` to `out`,
/// reusing whatever capacity `out` already has. Writer-style counterpart
/// of [`build`].
pub fn emit_into(
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let start = out.len();
    out.resize(start + HEADER_LEN, 0);
    out.extend_from_slice(payload);
    finish_header(&mut out[start..], src, dst, src_port, dst_port);
}

/// Fill the 8-byte header at the front of `datagram` (header + payload
/// already laid out contiguously) and compute the checksum. The in-place
/// finisher used by [`emit_into`] and the single-pass stack emitters.
pub fn finish_header(
    datagram: &mut [u8],
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
) {
    let total = datagram.len();
    debug_assert!(total <= u16::MAX as usize);
    let mut d = Datagram::new_unchecked(datagram);
    d.set_src_port(src_port);
    d.set_dst_port(dst_port);
    d.set_len_field(total as u16);
    d.fill_checksum(src, dst);
}

/// Allocate and fill a UDP datagram (with checksum) around `payload`.
pub fn build(
    src: ipv4::Addr,
    dst: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    emit_into(src, dst, src_port, dst_port, payload, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: ipv4::Addr = ipv4::Addr::new(10, 0, 0, 1);
    const DST: ipv4::Addr = ipv4::Addr::new(239, 0, 0, 5);

    #[test]
    fn build_parse_roundtrip() {
        let buf = build(SRC, DST, 30001, 30001, b"feed");
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 30001);
        assert_eq!(d.dst_port(), 30001);
        assert_eq!(d.len_field() as usize, buf.len());
        assert_eq!(d.payload(), b"feed");
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = build(SRC, DST, 1, 2, b"payload");
        buf[HEADER_LEN] ^= 0x55;
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, DST));
        // Wrong pseudo-header (different dst) also fails.
        let buf = build(SRC, DST, 1, 2, b"payload");
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, ipv4::Addr::new(239, 0, 0, 6)));
    }

    #[test]
    fn zero_checksum_passes() {
        let mut buf = build(SRC, DST, 1, 2, b"x");
        buf[6] = 0;
        buf[7] = 0;
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn validation() {
        assert_eq!(
            Datagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = build(SRC, DST, 1, 2, b"abc");
        buf[4] = 0xff; // length > buffer
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
        buf[4] = 0;
        buf[5] = 4; // length < header
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadLength
        );
    }

    #[test]
    fn padded_payload_not_leaked() {
        let mut buf = build(SRC, DST, 1, 2, b"abc");
        buf.extend_from_slice(&[0u8; 16]);
        let d = Datagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.payload(), b"abc");
    }
}
