//! Whole-stack composition: build and parse Eth + IPv4 + UDP/TCP frames
//! in one call, plus the header-overhead constants the paper analyses.

use crate::error::{Result, WireError};
use crate::eth::{self, EtherType, MacAddr};
use crate::ipv4;
use crate::tcp;
use crate::udp;

/// Ethernet + IPv4 + UDP header bytes on every feed frame. Table 1's
/// commentary counts "40 bytes of network headers" (IP + UDP + Ethernet
/// minus some accounting); the exact stack is 14 + 20 + 8 = 42.
pub const UDP_OVERHEAD: usize = eth::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;

/// Ethernet + IPv4 + TCP header bytes on every order-entry segment.
pub const TCP_OVERHEAD: usize = eth::HEADER_LEN + ipv4::HEADER_LEN + tcp::HEADER_LEN;

/// Append `UDP_OVERHEAD` zero bytes of Eth+IPv4+UDP header space to
/// `out`, returning the frame's start offset. Write the application
/// payload after it, then call [`finish_udp`] on `&mut out[start..]` to
/// fill the headers in place — a single-pass, single-buffer emission with
/// no intermediate per-layer copies.
pub fn reserve_udp(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.resize(start + UDP_OVERHEAD, 0);
    start
}

/// Fill the Eth+IPv4+UDP headers of `frame` in place. `frame` must be a
/// complete frame-to-be: `UDP_OVERHEAD` reserved header bytes followed by
/// the application payload (see [`reserve_udp`]). Multicast destinations
/// get the RFC 1112 MAC mapping automatically when `dst_mac` is `None`.
pub fn finish_udp(
    frame: &mut [u8],
    src_mac: MacAddr,
    dst_mac: Option<MacAddr>,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
) {
    debug_assert!(frame.len() >= UDP_OVERHEAD);
    let dst_mac = dst_mac.unwrap_or_else(|| {
        if dst_ip.is_multicast() {
            MacAddr::ipv4_multicast(dst_ip)
        } else {
            MacAddr::BROADCAST
        }
    });
    let mut f = eth::Frame::new_unchecked(&mut frame[..]);
    f.set_dst(dst_mac);
    f.set_src(src_mac);
    f.set_ethertype(EtherType::Ipv4);
    let l4_start = eth::HEADER_LEN + ipv4::HEADER_LEN;
    udp::finish_header(&mut frame[l4_start..], src_ip, dst_ip, src_port, dst_port);
    ipv4::finish_header(
        &mut frame[eth::HEADER_LEN..],
        src_ip,
        dst_ip,
        ipv4::PROTO_UDP,
    );
}

/// Append a complete Ethernet/IPv4/UDP frame to `out` in a single pass
/// (one buffer, no per-layer copies). Writer-style counterpart of
/// [`build_udp`].
#[allow(clippy::too_many_arguments)]
pub fn emit_udp_into(
    src_mac: MacAddr,
    dst_mac: Option<MacAddr>,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let start = reserve_udp(out);
    out.extend_from_slice(payload);
    finish_udp(
        &mut out[start..],
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
    );
}

/// Build a complete Ethernet/IPv4/UDP frame. Multicast destinations get
/// the RFC 1112 MAC mapping automatically.
pub fn build_udp(
    src_mac: MacAddr,
    dst_mac: Option<MacAddr>,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(UDP_OVERHEAD + payload.len());
    emit_udp_into(
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, payload, &mut buf,
    );
    buf
}

/// Append `TCP_OVERHEAD` zero bytes of Eth+IPv4+TCP header space to
/// `out`, returning the frame's start offset; the TCP sibling of
/// [`reserve_udp`].
pub fn reserve_tcp(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.resize(start + TCP_OVERHEAD, 0);
    start
}

/// Fill the Eth+IPv4+TCP headers of `frame` in place. `frame` must be
/// `TCP_OVERHEAD` reserved header bytes followed by the stream payload
/// (see [`reserve_tcp`]).
#[allow(clippy::too_many_arguments)]
pub fn finish_tcp(
    frame: &mut [u8],
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
) {
    debug_assert!(frame.len() >= TCP_OVERHEAD);
    let mut f = eth::Frame::new_unchecked(&mut frame[..]);
    f.set_dst(dst_mac);
    f.set_src(src_mac);
    f.set_ethertype(EtherType::Ipv4);
    let l4_start = eth::HEADER_LEN + ipv4::HEADER_LEN;
    tcp::finish_header(
        &mut frame[l4_start..],
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq,
        ack,
        flags,
    );
    ipv4::finish_header(
        &mut frame[eth::HEADER_LEN..],
        src_ip,
        dst_ip,
        ipv4::PROTO_TCP,
    );
}

/// Append a complete Ethernet/IPv4/TCP frame to `out` in a single pass
/// (one buffer, no per-layer copies). Writer-style counterpart of
/// [`build_tcp`].
#[allow(clippy::too_many_arguments)]
pub fn emit_tcp_into(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let start = reserve_tcp(out);
    out.extend_from_slice(payload);
    finish_tcp(
        &mut out[start..],
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        seq,
        ack,
        flags,
    );
}

/// Build a complete Ethernet/IPv4/TCP frame.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: ipv4::Addr,
    dst_ip: ipv4::Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
    payload: &[u8],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(TCP_OVERHEAD + payload.len());
    emit_tcp_into(
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, ack, flags, payload, &mut buf,
    );
    buf
}

/// A parsed view of a UDP frame: addressing plus payload bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpView<'a> {
    /// L2 destination.
    pub dst_mac: MacAddr,
    /// L2 source.
    pub src_mac: MacAddr,
    /// L3 source.
    pub src_ip: ipv4::Addr,
    /// L3 destination (multicast group for feeds).
    pub dst_ip: ipv4::Addr,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: &'a [u8],
}

/// Parse a frame expected to be Ethernet/IPv4/UDP.
pub fn parse_udp(frame: &[u8]) -> Result<UdpView<'_>> {
    let eth = eth::Frame::new_checked(frame)?;
    if eth.ethertype() != EtherType::Ipv4 {
        return Err(WireError::BadField);
    }
    let (dst_mac, src_mac) = (eth.dst(), eth.src());
    let ip = ipv4::Packet::new_checked(&frame[eth::HEADER_LEN..])?;
    if ip.protocol() != ipv4::PROTO_UDP {
        return Err(WireError::BadField);
    }
    let (src_ip, dst_ip) = (ip.src(), ip.dst());
    let ip_payload_start = eth::HEADER_LEN + ipv4::HEADER_LEN;
    let ip_payload_end = eth::HEADER_LEN + ip.total_len() as usize;
    let dgram = udp::Datagram::new_checked(&frame[ip_payload_start..ip_payload_end])?;
    let payload_start = ip_payload_start + udp::HEADER_LEN;
    let payload_end = ip_payload_start + dgram.len_field() as usize;
    Ok(UdpView {
        dst_mac,
        src_mac,
        src_ip,
        dst_ip,
        src_port: dgram.src_port(),
        dst_port: dgram.dst_port(),
        payload: &frame[payload_start..payload_end],
    })
}

/// A parsed view of a TCP frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpView<'a> {
    /// L2 destination.
    pub dst_mac: MacAddr,
    /// L2 source.
    pub src_mac: MacAddr,
    /// L3 source.
    pub src_ip: ipv4::Addr,
    /// L3 destination.
    pub dst_ip: ipv4::Addr,
    /// L4 source port.
    pub src_port: u16,
    /// L4 destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: tcp::Flags,
    /// Stream payload bytes.
    pub payload: &'a [u8],
}

/// Parse a frame expected to be Ethernet/IPv4/TCP.
pub fn parse_tcp(frame: &[u8]) -> Result<TcpView<'_>> {
    let eth = eth::Frame::new_checked(frame)?;
    if eth.ethertype() != EtherType::Ipv4 {
        return Err(WireError::BadField);
    }
    let (dst_mac, src_mac) = (eth.dst(), eth.src());
    let ip = ipv4::Packet::new_checked(&frame[eth::HEADER_LEN..])?;
    if ip.protocol() != ipv4::PROTO_TCP {
        return Err(WireError::BadField);
    }
    let (src_ip, dst_ip) = (ip.src(), ip.dst());
    let seg_start = eth::HEADER_LEN + ipv4::HEADER_LEN;
    let seg_end = eth::HEADER_LEN + ip.total_len() as usize;
    let seg = tcp::Segment::new_checked(&frame[seg_start..seg_end])?;
    let payload_start = seg_start + seg.header_len();
    Ok(TcpView {
        dst_mac,
        src_mac,
        src_ip,
        dst_ip,
        src_port: seg.src_port(),
        dst_port: seg.dst_port(),
        seq: seg.seq(),
        ack: seg.ack(),
        flags: seg.flags(),
        payload: &frame[payload_start..seg_end],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_IP: ipv4::Addr = ipv4::Addr::new(10, 0, 0, 1);

    #[test]
    fn udp_stack_roundtrip_multicast() {
        let group = ipv4::Addr::multicast_group(42);
        let frame = build_udp(
            MacAddr::host(1),
            None,
            SRC_IP,
            group,
            30001,
            30001,
            b"pitch packet",
        );
        assert_eq!(frame.len(), UDP_OVERHEAD + 12);
        let v = parse_udp(&frame).unwrap();
        assert_eq!(v.dst_mac, MacAddr::ipv4_multicast(group));
        assert_eq!(v.src_mac, MacAddr::host(1));
        assert_eq!(v.dst_ip, group);
        assert_eq!(v.src_ip, SRC_IP);
        assert_eq!(v.src_port, 30001);
        assert_eq!(v.payload, b"pitch packet");
    }

    #[test]
    fn tcp_stack_roundtrip() {
        let dst_ip = ipv4::Addr::new(10, 0, 255, 1);
        let frame = build_tcp(
            MacAddr::host(1),
            MacAddr::host(2),
            SRC_IP,
            dst_ip,
            49152,
            7001,
            111,
            222,
            tcp::Flags::ACK | tcp::Flags::PSH,
            b"boe msg",
        );
        assert_eq!(frame.len(), TCP_OVERHEAD + 7);
        let v = parse_tcp(&frame).unwrap();
        assert_eq!(v.seq, 111);
        assert_eq!(v.ack, 222);
        assert!(v.flags.contains(tcp::Flags::PSH));
        assert_eq!(v.payload, b"boe msg");
        assert_eq!(v.dst_ip, dst_ip);
    }

    #[test]
    fn overhead_constants_match_paper_discussion() {
        // The paper counts ~40 bytes of network headers per feed packet;
        // the exact Eth+IP+UDP stack is 42 and Eth+IP+TCP is 54.
        assert_eq!(UDP_OVERHEAD, 42);
        assert_eq!(TCP_OVERHEAD, 54);
    }

    #[test]
    fn parse_rejects_wrong_protocols() {
        let group = ipv4::Addr::multicast_group(1);
        let udp_frame = build_udp(MacAddr::host(1), None, SRC_IP, group, 1, 2, b"x");
        assert_eq!(parse_tcp(&udp_frame).unwrap_err(), WireError::BadField);
        let tcp_frame = build_tcp(
            MacAddr::host(1),
            MacAddr::host(2),
            SRC_IP,
            ipv4::Addr::new(10, 0, 0, 2),
            1,
            2,
            0,
            0,
            tcp::Flags::SYN,
            b"",
        );
        assert_eq!(parse_udp(&tcp_frame).unwrap_err(), WireError::BadField);
        // Non-IPv4 ethertype.
        let l1 = eth::build(
            MacAddr::host(2),
            MacAddr::host(1),
            EtherType::L1Transport,
            b"xx",
        );
        assert_eq!(parse_udp(&l1).unwrap_err(), WireError::BadField);
    }

    #[test]
    fn padded_frames_parse_cleanly() {
        // Ethernet minimum-size padding must not corrupt payload bounds.
        let group = ipv4::Addr::multicast_group(1);
        let mut frame = build_udp(MacAddr::host(1), None, SRC_IP, group, 1, 2, b"ab");
        frame.resize(eth::MIN_FRAME_LEN, 0);
        let v = parse_udp(&frame).unwrap();
        assert_eq!(v.payload, b"ab");
    }
}
