//! Fixed-width instrument symbols.
//!
//! US market-data protocols carry symbols as fixed-width, space-padded
//! ASCII (6 bytes in PITCH short messages). `Symbol` is that wire
//! representation, copyable and comparable without allocation.

use std::fmt;

use crate::error::{Result, WireError};

/// A ticker symbol: up to 6 significant ASCII characters, space-padded on
/// the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub [u8; 6]);

impl Symbol {
    /// Width of the wire representation in bytes.
    pub const WIRE_LEN: usize = 6;

    /// Build from a string; fails on symbols longer than 6 chars or
    /// containing non-printable ASCII.
    pub fn new(s: &str) -> Result<Symbol> {
        let b = s.as_bytes();
        if b.len() > 6 {
            return Err(WireError::BadField);
        }
        if !b.iter().all(|c| c.is_ascii_graphic()) {
            return Err(WireError::BadField);
        }
        let mut out = [b' '; 6];
        out[..b.len()].copy_from_slice(b);
        Ok(Symbol(out))
    }

    /// Read from 6 wire bytes.
    pub fn from_wire(b: &[u8]) -> Symbol {
        let mut out = [b' '; 6];
        out.copy_from_slice(&b[..6]);
        Symbol(out)
    }

    /// Write to 6 wire bytes.
    pub fn to_wire(self, out: &mut [u8]) {
        out[..6].copy_from_slice(&self.0);
    }

    /// The trimmed string form.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).unwrap_or("??????").trim_end()
    }

    /// First character, used by alphabetical feed partitioning schemes
    /// (§2: "alphabetical by stock ticker's first letter").
    pub fn first_char(&self) -> u8 {
        self.0[0]
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_padding() {
        let s = Symbol::new("SPY").unwrap();
        assert_eq!(s.0, *b"SPY   ");
        assert_eq!(s.as_str(), "SPY");
        assert_eq!(s.to_string(), "SPY");
        assert_eq!(s.first_char(), b'S');
    }

    #[test]
    fn six_char_symbols_fit_exactly() {
        let s = Symbol::new("GOOGL1").unwrap();
        assert_eq!(s.as_str(), "GOOGL1");
    }

    #[test]
    fn invalid_symbols_rejected() {
        assert_eq!(Symbol::new("TOOLONG1"), Err(WireError::BadField));
        assert_eq!(Symbol::new("A B"), Err(WireError::BadField));
        assert_eq!(Symbol::new("A\n"), Err(WireError::BadField));
    }

    #[test]
    fn wire_roundtrip() {
        let s = Symbol::new("QQQ").unwrap();
        let mut buf = [0u8; 8];
        s.to_wire(&mut buf);
        assert_eq!(Symbol::from_wire(&buf), s);
    }
}
