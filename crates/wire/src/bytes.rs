//! Unchecked big- and little-endian field access.
//!
//! Network-stack headers (Ethernet/IP/UDP/TCP/IGMP) are big-endian; market
//! data protocols in US equities/options are little-endian (as Cboe PITCH
//! and BOE are), so both flavors live here. Callers are expected to have
//! validated lengths via `new_checked`; these helpers `debug_assert` bounds
//! and are branch-free in release builds.

#[inline]
pub fn get_u16_be(buf: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([buf[at], buf[at + 1]])
}

#[inline]
pub fn set_u16_be(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

#[inline]
pub fn get_u32_be(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

#[inline]
pub fn set_u32_be(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

#[inline]
pub fn get_u16_le(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

#[inline]
pub fn set_u16_le(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u32_le(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

#[inline]
pub fn set_u32_le(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u64_le(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

#[inline]
pub fn set_u64_le(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_i64_le(buf: &[u8], at: usize) -> i64 {
    get_u64_le(buf, at) as i64
}

#[inline]
pub fn set_i64_le(buf: &mut [u8], at: usize, v: i64) {
    set_u64_le(buf, at, v as u64);
}

/// RFC 1071 Internet checksum over `data`, starting from `initial`
/// (used to fold in pseudo-headers).
pub fn internet_checksum(initial: u32, data: &[u8]) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endian_roundtrips() {
        let mut buf = [0u8; 16];
        set_u16_be(&mut buf, 0, 0xABCD);
        assert_eq!(get_u16_be(&buf, 0), 0xABCD);
        assert_eq!(buf[0], 0xAB);
        set_u32_be(&mut buf, 2, 0xDEADBEEF);
        assert_eq!(get_u32_be(&buf, 2), 0xDEADBEEF);
        set_u16_le(&mut buf, 6, 0xABCD);
        assert_eq!(get_u16_le(&buf, 6), 0xABCD);
        assert_eq!(buf[6], 0xCD);
        set_u32_le(&mut buf, 8, 0x01020304);
        assert_eq!(get_u32_le(&buf, 8), 0x01020304);
        set_u64_le(&mut buf, 8, u64::MAX - 5);
        assert_eq!(get_u64_le(&buf, 8), u64::MAX - 5);
        set_i64_le(&mut buf, 8, -42);
        assert_eq!(get_i64_le(&buf, 8), -42);
    }

    #[test]
    fn checksum_known_vector() {
        // Classic RFC 1071 example: the checksum of this header is 0xB861.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(0, &header), 0xB861);
    }

    #[test]
    fn checksum_odd_length_and_validation() {
        let data = [0x01u8, 0x02, 0x03];
        let ck = internet_checksum(0, &data);
        // Folding the checksum back in yields zero (the validity test).
        let mut with = data.to_vec();
        with.push(0); // pad for the trailing odd byte position
        let sum = internet_checksum(u32::from(ck), &data);
        assert_eq!(sum, 0);
        let _ = with;
    }
}
