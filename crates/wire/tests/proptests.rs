//! Property-based tests: every codec must roundtrip arbitrary valid
//! values, and parsers must never panic on arbitrary bytes.

use proptest::prelude::*;
use proptest::TestCaseError;

use tn_wire::pitch::{self, Side};
use tn_wire::{boe, eth, igmp, ipv4, l1t, norm, stack, tcp, udp, Symbol};

/// Assert a writer-style emitter appends exactly `built` to `out` while
/// leaving whatever `out` already held untouched.
fn assert_appends(
    prefix: &[u8],
    built: &[u8],
    emit: impl FnOnce(&mut Vec<u8>),
) -> Result<(), TestCaseError> {
    let mut out = prefix.to_vec();
    emit(&mut out);
    prop_assert_eq!(&out[..prefix.len()], prefix, "prefix clobbered");
    prop_assert_eq!(
        &out[prefix.len()..],
        built,
        "appended bytes diverge from build()"
    );
    Ok(())
}

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    proptest::string::string_regex("[A-Z]{1,6}")
        .unwrap()
        .prop_map(|s| Symbol::new(&s).unwrap())
}

fn arb_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Buy), Just(Side::Sell)]
}

fn arb_pitch_message() -> impl Strategy<Value = pitch::Message> {
    prop_oneof![
        any::<u32>().prop_map(|seconds| pitch::Message::Time { seconds }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            0u64..100_000_000
        )
            .prop_map(|(offset_ns, order_id, side, qty, symbol, price)| {
                pitch::Message::AddOrder {
                    offset_ns,
                    order_id,
                    side,
                    qty,
                    symbol,
                    price,
                }
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(offset_ns, order_id, qty, exec_id)| pitch::Message::OrderExecuted {
                offset_ns,
                order_id,
                qty,
                exec_id
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(offset_ns, order_id, qty)| {
            pitch::Message::ReduceSize {
                offset_ns,
                order_id,
                qty,
            }
        }),
        (any::<u32>(), any::<u64>(), any::<u32>(), 0u64..100_000_000).prop_map(
            |(offset_ns, order_id, qty, price)| pitch::Message::ModifyOrder {
                offset_ns,
                order_id,
                qty,
                price
            }
        ),
        (any::<u32>(), any::<u64>()).prop_map(|(offset_ns, order_id)| {
            pitch::Message::DeleteOrder {
                offset_ns,
                order_id,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            0u64..100_000_000,
            any::<u64>()
        )
            .prop_map(|(offset_ns, order_id, side, qty, symbol, price, exec_id)| {
                pitch::Message::Trade {
                    offset_ns,
                    order_id,
                    side,
                    qty,
                    symbol,
                    price,
                    exec_id,
                }
            }),
        (
            any::<u32>(),
            arb_symbol(),
            prop_oneof![Just(b'T'), Just(b'H')]
        )
            .prop_map(
                |(offset_ns, symbol, status)| pitch::Message::TradingStatus {
                    offset_ns,
                    symbol,
                    status
                }
            ),
    ]
}

fn arb_boe_message() -> impl Strategy<Value = boe::Message> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(session, token)| boe::Message::Login { session, token }),
        Just(boe::Message::Heartbeat),
        (
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            any::<u64>()
        )
            .prop_map(
                |(cl_ord_id, side, qty, symbol, price)| boe::Message::NewOrder {
                    cl_ord_id,
                    side,
                    qty,
                    symbol,
                    price
                }
            ),
        any::<u64>().prop_map(|cl_ord_id| boe::Message::CancelOrder { cl_ord_id }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(cl_ord_id, qty, price)| {
            boe::Message::ModifyOrder {
                cl_ord_id,
                qty,
                price,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(cl_ord_id, exch_ord_id)| {
            boe::Message::OrderAck {
                cl_ord_id,
                exch_ord_id,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(
                |(cl_ord_id, exec_id, qty, price, leaves)| boe::Message::Fill {
                    cl_ord_id,
                    exec_id,
                    qty,
                    price,
                    leaves
                }
            ),
        any::<u64>().prop_map(|cl_ord_id| boe::Message::CancelAck { cl_ord_id }),
    ]
}

proptest! {
    #[test]
    fn pitch_message_roundtrip(msg in arb_pitch_message()) {
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        prop_assert_eq!(buf.len(), msg.wire_len());
        let (parsed, used) = pitch::Message::parse(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn pitch_packet_roundtrip(msgs in proptest::collection::vec(arb_pitch_message(), 1..40),
                              unit in any::<u8>(), first_seq in any::<u32>()) {
        let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
        let mut packets = Vec::new();
        for m in &msgs {
            if let Some(p) = pb.push(m) {
                packets.push(p);
            }
        }
        packets.extend(pb.flush());
        let mut decoded = Vec::new();
        let mut seq = first_seq;
        for p in &packets {
            let pkt = pitch::Packet::new_checked(&p[..]).unwrap();
            prop_assert_eq!(pkt.unit(), unit);
            prop_assert_eq!(pkt.sequence(), seq);
            seq = seq.wrapping_add(u32::from(pkt.count()));
            for m in pkt.messages() {
                decoded.push(m.unwrap());
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn pitch_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pitch::Message::parse(&bytes);
        if let Ok(pkt) = pitch::Packet::new_checked(&bytes[..]) {
            for m in pkt.messages() {
                let _ = m;
            }
        }
    }

    #[test]
    fn boe_message_roundtrip(msg in arb_boe_message(), seq in any::<u32>()) {
        let mut buf = Vec::new();
        msg.emit(seq, &mut buf);
        prop_assert_eq!(buf.len(), msg.wire_len());
        let (parsed, got_seq, used) = boe::Message::parse(&buf).unwrap();
        prop_assert_eq!(parsed, msg);
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn boe_decoder_handles_any_segmentation(
        msgs in proptest::collection::vec(arb_boe_message(), 1..20),
        cut in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            m.emit(i as u32, &mut stream);
        }
        let mut dec = boe::Decoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(cut) {
            dec.push(chunk);
            while let Some((m, _)) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
    }

    #[test]
    fn boe_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = boe::Message::parse(&bytes);
    }

    #[test]
    fn norm_record_roundtrip(
        kind in 1u8..=4, exchange in any::<u8>(), side in any::<u8>(),
        symbol_id in any::<u32>(), price in any::<i64>(), size in any::<u32>(),
        aux in any::<u32>(), src_time_ns in any::<u64>(),
    ) {
        let kind = match kind {
            1 => norm::Kind::Bbo,
            2 => norm::Kind::Trade,
            3 => norm::Kind::Status,
            _ => norm::Kind::BookDelta,
        };
        let r = norm::Record {
            kind, exchange, side, flags: 0, symbol_id, price, size, aux, src_time_ns,
        };
        let mut buf = Vec::new();
        r.emit(&mut buf);
        prop_assert_eq!(norm::Record::parse(&buf).unwrap(), r);
    }

    #[test]
    fn l1t_roundtrip(stream in any::<u16>(), seq in any::<u32>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let buf = l1t::build(stream, seq, &payload);
        let f = l1t::Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(f.stream(), stream);
        prop_assert_eq!(f.seq(), seq);
        prop_assert_eq!(f.payload(), &payload[..]);
    }

    #[test]
    fn udp_stack_roundtrip(
        src in any::<u32>(), group in 0u32..1_000_000,
        src_port in any::<u16>(), dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let src_ip = ipv4::Addr::host(src);
        let dst_ip = ipv4::Addr::multicast_group(group);
        let frame = stack::build_udp(
            tn_wire::eth::MacAddr::host(src), None, src_ip, dst_ip, src_port, dst_port, &payload,
        );
        let v = stack::parse_udp(&frame).unwrap();
        prop_assert_eq!(v.src_ip, src_ip);
        prop_assert_eq!(v.dst_ip, dst_ip);
        prop_assert_eq!(v.src_port, src_port);
        prop_assert_eq!(v.dst_port, dst_port);
        prop_assert_eq!(v.payload, &payload[..]);
        // UDP checksum over the real pseudo-header must verify.
        let d = udp::Datagram::new_checked(
            &frame[stack::UDP_OVERHEAD - udp::HEADER_LEN..],
        ).unwrap();
        prop_assert!(d.verify_checksum(src_ip, dst_ip));
    }

    #[test]
    fn tcp_stack_roundtrip(
        seq in any::<u32>(), ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = ipv4::Addr::host(1);
        let b = ipv4::Addr::host(2);
        let frame = stack::build_tcp(
            tn_wire::eth::MacAddr::host(1), tn_wire::eth::MacAddr::host(2),
            a, b, 100, 200, seq, ack, tcp::Flags::ACK, &payload,
        );
        let v = stack::parse_tcp(&frame).unwrap();
        prop_assert_eq!(v.seq, seq);
        prop_assert_eq!(v.ack, ack);
        prop_assert_eq!(v.payload, &payload[..]);
    }

    #[test]
    fn stack_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = stack::parse_udp(&bytes);
        let _ = stack::parse_tcp(&bytes);
    }

    /// Every writer-style emitter appends the exact bytes its allocating
    /// counterpart returns — byte-for-byte, at any starting offset.
    #[test]
    fn emit_into_matches_build_at_every_layer(
        prefix in proptest::collection::vec(any::<u8>(), 0..32),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        src in any::<u32>(), group in 0u32..1_000_000,
        src_port in any::<u16>(), dst_port in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        stream in any::<u16>(), unit in any::<u8>(), count in any::<u16>(),
    ) {
        let src_ip = ipv4::Addr::host(src);
        let mc_ip = ipv4::Addr::multicast_group(group);
        let dst_ip = ipv4::Addr::host(src.wrapping_add(1));
        let src_mac = eth::MacAddr::host(src);
        let dst_mac = eth::MacAddr::host(src.wrapping_add(1));

        assert_appends(
            &prefix,
            &eth::build(dst_mac, src_mac, eth::EtherType::Ipv4, &payload),
            |o| eth::emit_into(dst_mac, src_mac, eth::EtherType::Ipv4, &payload, o),
        )?;
        assert_appends(
            &prefix,
            &ipv4::build(src_ip, mc_ip, ipv4::PROTO_UDP, &payload),
            |o| ipv4::emit_into(src_ip, mc_ip, ipv4::PROTO_UDP, &payload, o),
        )?;
        assert_appends(
            &prefix,
            &udp::build(src_ip, mc_ip, src_port, dst_port, &payload),
            |o| udp::emit_into(src_ip, mc_ip, src_port, dst_port, &payload, o),
        )?;
        assert_appends(
            &prefix,
            &tcp::build(src_ip, dst_ip, src_port, dst_port, seq, ack, tcp::Flags::ACK, &payload),
            |o| tcp::emit_into(
                src_ip, dst_ip, src_port, dst_port, seq, ack, tcp::Flags::ACK, &payload, o,
            ),
        )?;
        assert_appends(&prefix, &l1t::build(stream, seq, &payload), |o| {
            l1t::emit_into(stream, seq, &payload, o)
        })?;
        assert_appends(
            &prefix,
            &stack::build_udp(src_mac, None, src_ip, mc_ip, src_port, dst_port, &payload),
            |o| stack::emit_udp_into(src_mac, None, src_ip, mc_ip, src_port, dst_port, &payload, o),
        )?;
        assert_appends(
            &prefix,
            &stack::build_tcp(
                src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, ack,
                tcp::Flags::ACK, &payload,
            ),
            |o| stack::emit_tcp_into(
                src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, seq, ack,
                tcp::Flags::ACK, &payload, o,
            ),
        )?;
        let join = igmp::Message { kind: igmp::MessageType::Report, group: mc_ip };
        assert_appends(&prefix, &join.emit(), |o| join.emit_into(o))?;
        let gap = pitch::GapRequest { unit, seq, count };
        assert_appends(&prefix, &gap.emit(), |o| gap.emit_into(o))?;
    }

    /// The writer-style PITCH packer produces the identical packet stream
    /// the allocating packer does, sealed packet for sealed packet.
    #[test]
    fn pitch_push_into_streams_identical_bytes(
        msgs in proptest::collection::vec(arb_pitch_message(), 1..60),
        unit in any::<u8>(), first_seq in any::<u32>(),
    ) {
        let mut alloc = pitch::PacketBuilder::new(unit, first_seq, 200);
        let mut expect = Vec::new();
        for m in &msgs {
            if let Some(p) = alloc.push(m) {
                expect.extend_from_slice(&p);
            }
        }
        if let Some(p) = alloc.flush() {
            expect.extend_from_slice(&p);
        }
        let mut writer = pitch::PacketBuilder::new(unit, first_seq, 200);
        let mut got = Vec::new();
        for m in &msgs {
            writer.push_into(m, &mut got);
        }
        writer.flush_into(&mut got);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(writer.next_seq(), alloc.next_seq());
    }

    /// Same equivalence for the normalized-feed packer.
    #[test]
    fn norm_push_into_streams_identical_bytes(
        recs in proptest::collection::vec(
            (any::<u8>(), any::<u32>(), any::<i64>(), any::<u32>(), any::<u64>()),
            1..60,
        ),
        partition in any::<u16>(), first_seq in any::<u32>(),
    ) {
        let recs: Vec<norm::Record> = recs
            .iter()
            .map(|&(side, symbol_id, price, size, src_time_ns)| norm::Record {
                kind: norm::Kind::Bbo,
                exchange: 1,
                side,
                flags: 0,
                symbol_id,
                price,
                size,
                aux: 0,
                src_time_ns,
            })
            .collect();
        let mut alloc = norm::PacketBuilder::new(partition, first_seq, 128);
        let mut expect = Vec::new();
        for r in &recs {
            if let Some(p) = alloc.push(r) {
                expect.extend_from_slice(&p);
            }
        }
        if let Some(p) = alloc.flush() {
            expect.extend_from_slice(&p);
        }
        let mut writer = norm::PacketBuilder::new(partition, first_seq, 128);
        let mut got = Vec::new();
        for r in &recs {
            writer.push_into(r, &mut got);
        }
        writer.flush_into(&mut got);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(writer.next_seq(), alloc.next_seq());
    }
}
