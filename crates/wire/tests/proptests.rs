//! Property-based tests: every codec must roundtrip arbitrary valid
//! values, and parsers must never panic on arbitrary bytes.

use proptest::prelude::*;

use tn_wire::pitch::{self, Side};
use tn_wire::{boe, ipv4, l1t, norm, stack, tcp, udp, Symbol};

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    proptest::string::string_regex("[A-Z]{1,6}")
        .unwrap()
        .prop_map(|s| Symbol::new(&s).unwrap())
}

fn arb_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Buy), Just(Side::Sell)]
}

fn arb_pitch_message() -> impl Strategy<Value = pitch::Message> {
    prop_oneof![
        any::<u32>().prop_map(|seconds| pitch::Message::Time { seconds }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            0u64..100_000_000
        )
            .prop_map(|(offset_ns, order_id, side, qty, symbol, price)| {
                pitch::Message::AddOrder {
                    offset_ns,
                    order_id,
                    side,
                    qty,
                    symbol,
                    price,
                }
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(offset_ns, order_id, qty, exec_id)| pitch::Message::OrderExecuted {
                offset_ns,
                order_id,
                qty,
                exec_id
            }
        ),
        (any::<u32>(), any::<u64>(), any::<u32>()).prop_map(|(offset_ns, order_id, qty)| {
            pitch::Message::ReduceSize {
                offset_ns,
                order_id,
                qty,
            }
        }),
        (any::<u32>(), any::<u64>(), any::<u32>(), 0u64..100_000_000).prop_map(
            |(offset_ns, order_id, qty, price)| pitch::Message::ModifyOrder {
                offset_ns,
                order_id,
                qty,
                price
            }
        ),
        (any::<u32>(), any::<u64>()).prop_map(|(offset_ns, order_id)| {
            pitch::Message::DeleteOrder {
                offset_ns,
                order_id,
            }
        }),
        (
            any::<u32>(),
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            0u64..100_000_000,
            any::<u64>()
        )
            .prop_map(|(offset_ns, order_id, side, qty, symbol, price, exec_id)| {
                pitch::Message::Trade {
                    offset_ns,
                    order_id,
                    side,
                    qty,
                    symbol,
                    price,
                    exec_id,
                }
            }),
        (
            any::<u32>(),
            arb_symbol(),
            prop_oneof![Just(b'T'), Just(b'H')]
        )
            .prop_map(
                |(offset_ns, symbol, status)| pitch::Message::TradingStatus {
                    offset_ns,
                    symbol,
                    status
                }
            ),
    ]
}

fn arb_boe_message() -> impl Strategy<Value = boe::Message> {
    prop_oneof![
        (any::<u32>(), any::<u64>())
            .prop_map(|(session, token)| boe::Message::Login { session, token }),
        Just(boe::Message::Heartbeat),
        (
            any::<u64>(),
            arb_side(),
            any::<u32>(),
            arb_symbol(),
            any::<u64>()
        )
            .prop_map(
                |(cl_ord_id, side, qty, symbol, price)| boe::Message::NewOrder {
                    cl_ord_id,
                    side,
                    qty,
                    symbol,
                    price
                }
            ),
        any::<u64>().prop_map(|cl_ord_id| boe::Message::CancelOrder { cl_ord_id }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(cl_ord_id, qty, price)| {
            boe::Message::ModifyOrder {
                cl_ord_id,
                qty,
                price,
            }
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(cl_ord_id, exch_ord_id)| {
            boe::Message::OrderAck {
                cl_ord_id,
                exch_ord_id,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>()
        )
            .prop_map(
                |(cl_ord_id, exec_id, qty, price, leaves)| boe::Message::Fill {
                    cl_ord_id,
                    exec_id,
                    qty,
                    price,
                    leaves
                }
            ),
        any::<u64>().prop_map(|cl_ord_id| boe::Message::CancelAck { cl_ord_id }),
    ]
}

proptest! {
    #[test]
    fn pitch_message_roundtrip(msg in arb_pitch_message()) {
        let mut buf = Vec::new();
        msg.emit(&mut buf);
        prop_assert_eq!(buf.len(), msg.wire_len());
        let (parsed, used) = pitch::Message::parse(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn pitch_packet_roundtrip(msgs in proptest::collection::vec(arb_pitch_message(), 1..40),
                              unit in any::<u8>(), first_seq in any::<u32>()) {
        let mut pb = pitch::PacketBuilder::new(unit, first_seq, 1400);
        let mut packets = Vec::new();
        for m in &msgs {
            if let Some(p) = pb.push(m) {
                packets.push(p);
            }
        }
        packets.extend(pb.flush());
        let mut decoded = Vec::new();
        let mut seq = first_seq;
        for p in &packets {
            let pkt = pitch::Packet::new_checked(&p[..]).unwrap();
            prop_assert_eq!(pkt.unit(), unit);
            prop_assert_eq!(pkt.sequence(), seq);
            seq = seq.wrapping_add(u32::from(pkt.count()));
            for m in pkt.messages() {
                decoded.push(m.unwrap());
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    #[test]
    fn pitch_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pitch::Message::parse(&bytes);
        if let Ok(pkt) = pitch::Packet::new_checked(&bytes[..]) {
            for m in pkt.messages() {
                let _ = m;
            }
        }
    }

    #[test]
    fn boe_message_roundtrip(msg in arb_boe_message(), seq in any::<u32>()) {
        let mut buf = Vec::new();
        msg.emit(seq, &mut buf);
        prop_assert_eq!(buf.len(), msg.wire_len());
        let (parsed, got_seq, used) = boe::Message::parse(&buf).unwrap();
        prop_assert_eq!(parsed, msg);
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn boe_decoder_handles_any_segmentation(
        msgs in proptest::collection::vec(arb_boe_message(), 1..20),
        cut in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            m.emit(i as u32, &mut stream);
        }
        let mut dec = boe::Decoder::new();
        let mut out = Vec::new();
        for chunk in stream.chunks(cut) {
            dec.push(chunk);
            while let Some((m, _)) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
    }

    #[test]
    fn boe_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = boe::Message::parse(&bytes);
    }

    #[test]
    fn norm_record_roundtrip(
        kind in 1u8..=4, exchange in any::<u8>(), side in any::<u8>(),
        symbol_id in any::<u32>(), price in any::<i64>(), size in any::<u32>(),
        aux in any::<u32>(), src_time_ns in any::<u64>(),
    ) {
        let kind = match kind {
            1 => norm::Kind::Bbo,
            2 => norm::Kind::Trade,
            3 => norm::Kind::Status,
            _ => norm::Kind::BookDelta,
        };
        let r = norm::Record {
            kind, exchange, side, flags: 0, symbol_id, price, size, aux, src_time_ns,
        };
        let mut buf = Vec::new();
        r.emit(&mut buf);
        prop_assert_eq!(norm::Record::parse(&buf).unwrap(), r);
    }

    #[test]
    fn l1t_roundtrip(stream in any::<u16>(), seq in any::<u32>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let buf = l1t::build(stream, seq, &payload);
        let f = l1t::Frame::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(f.stream(), stream);
        prop_assert_eq!(f.seq(), seq);
        prop_assert_eq!(f.payload(), &payload[..]);
    }

    #[test]
    fn udp_stack_roundtrip(
        src in any::<u32>(), group in 0u32..1_000_000,
        src_port in any::<u16>(), dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let src_ip = ipv4::Addr::host(src);
        let dst_ip = ipv4::Addr::multicast_group(group);
        let frame = stack::build_udp(
            tn_wire::eth::MacAddr::host(src), None, src_ip, dst_ip, src_port, dst_port, &payload,
        );
        let v = stack::parse_udp(&frame).unwrap();
        prop_assert_eq!(v.src_ip, src_ip);
        prop_assert_eq!(v.dst_ip, dst_ip);
        prop_assert_eq!(v.src_port, src_port);
        prop_assert_eq!(v.dst_port, dst_port);
        prop_assert_eq!(v.payload, &payload[..]);
        // UDP checksum over the real pseudo-header must verify.
        let d = udp::Datagram::new_checked(
            &frame[stack::UDP_OVERHEAD - udp::HEADER_LEN..],
        ).unwrap();
        prop_assert!(d.verify_checksum(src_ip, dst_ip));
    }

    #[test]
    fn tcp_stack_roundtrip(
        seq in any::<u32>(), ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = ipv4::Addr::host(1);
        let b = ipv4::Addr::host(2);
        let frame = stack::build_tcp(
            tn_wire::eth::MacAddr::host(1), tn_wire::eth::MacAddr::host(2),
            a, b, 100, 200, seq, ack, tcp::Flags::ACK, &payload,
        );
        let v = stack::parse_tcp(&frame).unwrap();
        prop_assert_eq!(v.seq, seq);
        prop_assert_eq!(v.ack, ack);
        prop_assert_eq!(v.payload, &payload[..]);
    }

    #[test]
    fn stack_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = stack::parse_udp(&bytes);
        let _ = stack::parse_tcp(&bytes);
    }
}
