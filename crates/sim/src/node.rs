//! The `Node` trait and identifiers.

use crate::context::{Context, TimerToken};
use crate::frame::Frame;

/// Index of a node within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A port on a node. Ports are node-local; `(NodeId, PortId)` names one end
/// of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl PortId {
    /// Port 0, the conventional single port of host-like nodes.
    pub const ZERO: PortId = PortId(0);
}

/// A simulated device or application endpoint.
///
/// Implementations are switches, NICs/hosts, exchange front-ends, capture
/// taps, and the trading-firm application tier. All state lives inside the
/// implementor; all interaction with the world goes through [`Context`].
///
/// `Send` is a supertrait so a sharded run can move each shard's nodes
/// onto its own OS thread; node state is plain data in practice, so this
/// costs implementations nothing.
pub trait Node: Send {
    /// A frame has fully arrived on `port` (last bit received).
    fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame);

    /// A timer set via [`Context::set_timer`] has fired.
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        let _ = (ctx, timer);
    }

    /// The simulator's metrics registry became available (see
    /// [`crate::Simulator::set_metrics`]). Instrumented nodes keep a clone
    /// of the handle and record into it; the default does nothing.
    ///
    /// Recording is pure side-state: implementations must not schedule,
    /// send, or draw randomness here — determinism audits pin run digests
    /// with telemetry both on and off.
    fn on_attach_metrics(&mut self, metrics: &tn_obs::Metrics) {
        let _ = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        assert_eq!(s.len(), 1);
        assert!(PortId(0) < PortId(3));
        assert_eq!(PortId::ZERO, PortId(0));
    }
}
