//! Simulation time in integer picoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulation time (or a duration), counted in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic is the same and trading-network models never need the
/// distinction enforced by types. Picosecond resolution matches the
/// sub-100 ps timestamping precision the paper reports firms wanting for
/// capture appliances (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero / the zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable time (~213 days).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One picosecond.
    pub const PICOSECOND: SimTime = SimTime(1);
    /// One nanosecond.
    pub const NANOSECOND: SimTime = SimTime(1_000);
    /// One microsecond.
    pub const MICROSECOND: SimTime = SimTime(1_000_000);
    /// One millisecond.
    pub const MILLISECOND: SimTime = SimTime(1_000_000_000);
    /// One second.
    pub const SECOND: SimTime = SimTime(1_000_000_000_000);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Construct from fractional seconds (convenience for scenario setup;
    /// not for hot paths).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    #[inline]
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Time to serialize `bytes` onto a link of `bits_per_sec`.
    ///
    /// Used by link and NIC models; exact integer arithmetic (picoseconds
    /// per bit is not integral for common rates, so compute in u128).
    #[inline]
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimTime {
        debug_assert!(bits_per_sec > 0);
        let bits = bytes as u128 * 8;
        let ps = bits * 1_000_000_000_000u128 / bits_per_sec as u128;
        SimTime(ps as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.6}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::NANOSECOND);
        assert_eq!(SimTime::from_us(1), SimTime::MICROSECOND);
        assert_eq!(SimTime::from_ms(1), SimTime::MILLISECOND);
        assert_eq!(SimTime::from_secs(1), SimTime::SECOND);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
    }

    #[test]
    fn conversions_truncate() {
        let t = SimTime::from_ps(1_999);
        assert_eq!(t.as_ns(), 1);
        assert_eq!(SimTime::from_ns(2_500).as_us(), 2);
        assert_eq!(SimTime::from_ns(2_500).as_ns(), 2_500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(500);
        let b = SimTime::from_ns(250);
        assert_eq!(a + b, SimTime::from_ns(750));
        assert_eq!(a - b, SimTime::from_ns(250));
        assert_eq!(a * 3, SimTime::from_ns(1500));
        assert_eq!(a / 2, SimTime::from_ns(250));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn serialization_10g() {
        // 1500 bytes at 10 Gbps = 1.2 us.
        let t = SimTime::serialization(1500, 10_000_000_000);
        assert_eq!(t, SimTime::from_ns(1200));
        // 64 bytes at 10 Gbps = 51.2 ns.
        let t = SimTime::serialization(64, 10_000_000_000);
        assert_eq!(t, SimTime::from_ps(51_200));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimTime::from_ns(500).to_string(), "500.000ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2.000us");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime(999).to_string(), "999ps");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_ms(500));
        assert_eq!(SimTime::from_secs_f64(1e-9), SimTime::NANOSECOND);
    }

    #[test]
    fn sum_and_minmax() {
        let total: SimTime = [SimTime::from_ns(1), SimTime::from_ns(2)].into_iter().sum();
        assert_eq!(total, SimTime::from_ns(3));
        assert_eq!(
            SimTime::from_ns(1).max(SimTime::from_ns(2)),
            SimTime::from_ns(2)
        );
        assert_eq!(
            SimTime::from_ns(1).min(SimTime::from_ns(2)),
            SimTime::from_ns(1)
        );
    }
}
