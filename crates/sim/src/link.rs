//! Link models: serialization, propagation, egress queueing, loss.
//!
//! A [`Link`] is directional and owned by the kernel; `connect` installs one
//! in each direction. The kernel asks the link *when* a frame transmitted
//! "now" finishes arriving at the far end (or whether it is dropped); the
//! link tracks its own egress occupancy so back-to-back sends queue behind
//! each other exactly as a FIFO egress port does.

use crate::time::SimTime;

/// Outcome of offering a frame to a link for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Frame will be fully delivered to the peer at this absolute time.
    Deliver(SimTime),
    /// Frame was dropped (queue overflow, injected loss, ...). The named
    /// reason is recorded in link statistics and trace logs.
    Drop(DropReason),
}

/// Why a link dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Bounded egress queue was full.
    QueueOverflow,
    /// Random loss (microwave fade, injected fault).
    RandomLoss,
    /// Frame exceeded the link MTU.
    Mtu,
    /// Frame corrupted in flight; the receiving NIC's FCS check discards
    /// it, so at the simulation level corruption is a delivery failure.
    Corrupted,
    /// The link was administratively or physically down (flap, scheduled
    /// outage) when the frame was offered.
    LinkDown,
}

/// A directional point-to-point link.
///
/// Implementations must be deterministic given the same call sequence; any
/// randomness (loss) must come from the `coin` argument, which the kernel
/// draws from the scenario PRNG.
pub trait Link {
    /// Offer a frame of `len` bytes for transmission at absolute time `now`.
    ///
    /// `coin` is a uniform random value in `[0,1)` drawn by the kernel for
    /// this offer; deterministic links ignore it.
    fn transmit(&mut self, now: SimTime, len: usize, coin: f64) -> LinkOutcome;

    /// One-way propagation delay (for diagnostics / route planning).
    fn propagation(&self) -> SimTime;

    /// Nominal rate in bits per second, if the link models serialization.
    fn rate_bps(&self) -> Option<u64> {
        None
    }
}

/// An infinitely fast link with a fixed one-way delay and no loss.
///
/// Useful for intra-host hops (e.g. strategy core to NIC) and for tests.
#[derive(Debug, Clone)]
pub struct IdealLink {
    delay: SimTime,
}

impl IdealLink {
    /// Create a lossless, zero-serialization link with a one-way `delay`.
    pub fn new(delay: SimTime) -> Self {
        IdealLink { delay }
    }
}

impl Link for IdealLink {
    fn transmit(&mut self, now: SimTime, _len: usize, _coin: f64) -> LinkOutcome {
        LinkOutcome::Deliver(now + self.delay)
    }

    fn propagation(&self) -> SimTime {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_after_delay() {
        let mut l = IdealLink::new(SimTime::from_ns(100));
        match l.transmit(SimTime::from_ns(50), 1500, 0.0) {
            LinkOutcome::Deliver(t) => assert_eq!(t, SimTime::from_ns(150)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(l.propagation(), SimTime::from_ns(100));
        assert_eq!(l.rate_bps(), None);
    }

    #[test]
    fn ideal_link_has_no_queueing() {
        // Two back-to-back frames arrive at identical offsets: no serialization.
        let mut l = IdealLink::new(SimTime::from_ns(10));
        let a = l.transmit(SimTime::ZERO, 9000, 0.9);
        let b = l.transmit(SimTime::ZERO, 9000, 0.1);
        assert_eq!(a, b);
    }
}
