//! Link models: serialization, propagation, egress queueing, loss.
//!
//! A [`Link`] is directional and owned by the kernel; `connect` installs one
//! in each direction. The kernel asks the link *when* a frame transmitted
//! "now" finishes arriving at the far end (or whether it is dropped); the
//! link tracks its own egress occupancy so back-to-back sends queue behind
//! each other exactly as a FIFO egress port does.

use crate::time::SimTime;

/// Outcome of offering a frame to a link for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Frame will be fully delivered to the peer at this absolute time.
    Deliver(SimTime),
    /// Frame was dropped (queue overflow, injected loss, ...). The named
    /// reason is recorded in link statistics and trace logs.
    Drop(DropReason),
}

/// How a link traversal's total latency splits into phases — the per-hop
/// decomposition recorded into [`tn_obs::Provenance`] when provenance
/// tracking is on. Phases always sum to the decomposed total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopTiming {
    /// Time waiting behind earlier frames at the egress.
    pub queue: SimTime,
    /// Time clocking the frame onto the wire at the link rate.
    pub serialize: SimTime,
    /// Time in flight at propagation speed.
    pub propagate: SimTime,
}

/// Why a link dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Bounded egress queue was full.
    QueueOverflow,
    /// Random loss (microwave fade, injected fault).
    RandomLoss,
    /// Frame exceeded the link MTU.
    Mtu,
    /// Frame corrupted in flight; the receiving NIC's FCS check discards
    /// it, so at the simulation level corruption is a delivery failure.
    Corrupted,
    /// The link was administratively or physically down (flap, scheduled
    /// outage) when the frame was offered.
    LinkDown,
}

impl DropReason {
    /// Stable lowercase name, used in metrics keys and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue_overflow",
            DropReason::RandomLoss => "random_loss",
            DropReason::Mtu => "mtu",
            DropReason::Corrupted => "corrupted",
            DropReason::LinkDown => "link_down",
        }
    }
}

/// A directional point-to-point link.
///
/// Implementations must be deterministic given the same call sequence; any
/// randomness (loss) must come from the `coin` argument, which the kernel
/// draws from the scenario PRNG. `Send` is a supertrait so sharded runs
/// can move links onto per-shard threads.
pub trait Link: Send {
    /// Offer a frame of `len` bytes for transmission at absolute time `now`.
    ///
    /// `coin` is a uniform random value in `[0,1)` drawn by the kernel for
    /// this offer; deterministic links ignore it.
    fn transmit(&mut self, now: SimTime, len: usize, coin: f64) -> LinkOutcome;

    /// One-way propagation delay (for diagnostics / route planning).
    fn propagation(&self) -> SimTime;

    /// A guaranteed lower bound on delivery latency: every
    /// [`Link::transmit`] accepted at `now` delivers no earlier than
    /// `now + min_delay()`. Conservative parallel sharding uses this as
    /// the cross-shard lookahead, so the bound must hold for every frame
    /// the link will ever carry. The default — the advertised propagation
    /// delay — is correct for every model whose queueing, serialization,
    /// and jitter only *add* latency; override only for links that can
    /// deliver faster than their advertised propagation.
    fn min_delay(&self) -> SimTime {
        self.propagation()
    }

    /// True when this link's outcome depends on the kernel-drawn `coin`
    /// (e.g. i.i.d. loss). Sharded runs refuse such links: each shard has
    /// its own PRNG stream, so a coin-consuming link would break the
    /// bit-for-bit equivalence with the serial run. Links that carry
    /// their own seeded PRNG (tn-fault wrappers) return `false`.
    fn uses_kernel_coin(&self) -> bool {
        false
    }

    /// Nominal rate in bits per second, if the link models serialization.
    fn rate_bps(&self) -> Option<u64> {
        None
    }

    /// The simulator's metrics registry became available (see
    /// [`crate::Simulator::set_metrics`]). Instrumented links — fault
    /// wrappers counting drops by cause, for instance — keep a clone of
    /// the handle; the default does nothing. Recording is pure side-state:
    /// implementations must not change transmit outcomes here.
    fn on_attach_metrics(&mut self, metrics: &tn_obs::Metrics) {
        let _ = metrics;
    }

    /// Split a traversal's `total` latency (delivery time minus offer
    /// time, for a frame of `len` bytes) into queue / serialize /
    /// propagate phases using the link's advertised propagation and rate.
    ///
    /// The phases sum to `total` exactly: propagation and serialization
    /// are clamped to what is available and the remainder — including any
    /// delay the advertised figures cannot explain, such as injected
    /// jitter — is attributed to queueing. Links with richer internal
    /// state may override for a sharper split.
    fn decompose(&self, len: usize, total: SimTime) -> HopTiming {
        let propagate = if self.propagation() < total {
            self.propagation()
        } else {
            total
        };
        let remain = total - propagate;
        let serialize = match self.rate_bps() {
            Some(rate) if rate > 0 => {
                let ps = (len as u128 * 8 * 1_000_000_000_000) / u128::from(rate);
                let ser = SimTime::from_ps(ps.min(u128::from(u64::MAX)) as u64);
                if ser < remain {
                    ser
                } else {
                    remain
                }
            }
            _ => SimTime::ZERO,
        };
        HopTiming {
            queue: remain - serialize,
            serialize,
            propagate,
        }
    }
}

/// An infinitely fast link with a fixed one-way delay and no loss.
///
/// Useful for intra-host hops (e.g. strategy core to NIC) and for tests.
#[derive(Debug, Clone)]
pub struct IdealLink {
    delay: SimTime,
}

impl IdealLink {
    /// Create a lossless, zero-serialization link with a one-way `delay`.
    pub fn new(delay: SimTime) -> Self {
        IdealLink { delay }
    }
}

impl Link for IdealLink {
    fn transmit(&mut self, now: SimTime, _len: usize, _coin: f64) -> LinkOutcome {
        LinkOutcome::Deliver(now + self.delay)
    }

    fn propagation(&self) -> SimTime {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_delivers_after_delay() {
        let mut l = IdealLink::new(SimTime::from_ns(100));
        match l.transmit(SimTime::from_ns(50), 1500, 0.0) {
            LinkOutcome::Deliver(t) => assert_eq!(t, SimTime::from_ns(150)),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(l.propagation(), SimTime::from_ns(100));
        assert_eq!(l.rate_bps(), None);
    }

    #[test]
    fn decompose_phases_sum_to_total() {
        // Rate-less link: everything beyond propagation is queueing.
        let l = IdealLink::new(SimTime::from_ns(100));
        let t = l.decompose(1500, SimTime::from_ns(130));
        assert_eq!(t.propagate, SimTime::from_ns(100));
        assert_eq!(t.serialize, SimTime::ZERO);
        assert_eq!(t.queue, SimTime::from_ns(30));
        assert_eq!(t.queue + t.serialize + t.propagate, SimTime::from_ns(130));
        // Total shorter than propagation clamps instead of underflowing.
        let t = l.decompose(1500, SimTime::from_ns(40));
        assert_eq!(t.propagate, SimTime::from_ns(40));
        assert_eq!(t.queue, SimTime::ZERO);

        struct Rated;
        impl Link for Rated {
            fn transmit(&mut self, now: SimTime, _: usize, _: f64) -> LinkOutcome {
                LinkOutcome::Deliver(now)
            }
            fn propagation(&self) -> SimTime {
                SimTime::from_ns(10)
            }
            fn rate_bps(&self) -> Option<u64> {
                Some(10_000_000_000) // 10G: 0.1 ns per bit
            }
        }
        // 125 bytes = 1000 bits = 100 ns serialization at 10G.
        let t = Rated.decompose(125, SimTime::from_ns(150));
        assert_eq!(t.propagate, SimTime::from_ns(10));
        assert_eq!(t.serialize, SimTime::from_ns(100));
        assert_eq!(t.queue, SimTime::from_ns(40));
    }

    #[test]
    fn ideal_link_has_no_queueing() {
        // Two back-to-back frames arrive at identical offsets: no serialization.
        let mut l = IdealLink::new(SimTime::from_ns(10));
        let a = l.transmit(SimTime::ZERO, 9000, 0.9);
        let b = l.transmit(SimTime::ZERO, 9000, 0.1);
        assert_eq!(a, b);
    }
}
