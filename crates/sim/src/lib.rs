//! # tn-sim — deterministic discrete-event simulation kernel
//!
//! The foundation for every model in the `trading-networks` workspace: a
//! single-threaded, deterministic discrete-event simulator with picosecond
//! time resolution.
//!
//! Trading networks are measured in nanoseconds (switch hops) down to
//! picoseconds (capture timestamps — the paper cites firms wanting <100 ps
//! precision), so [`SimTime`] counts integer picoseconds. A `u64` of
//! picoseconds spans ~213 days, far more than the one trading day any
//! scenario simulates.
//!
//! ## Model
//!
//! A simulation is a graph of [`Node`]s connected port-to-port by
//! [`Link`]s. Nodes receive [`Frame`]s and timer callbacks through the
//! [`Node`] trait and react by sending frames out of their own ports,
//! setting timers, or recording trace events via [`Context`].
//!
//! Links are owned by the kernel and model serialization (line rate),
//! propagation delay, egress queueing, and loss. The kernel is strictly
//! deterministic: events at equal timestamps are delivered in schedule
//! order, and all randomness flows from one seeded PRNG.
//!
//! ```
//! use tn_sim::{Simulator, Node, Context, Frame, PortId, SimTime, IdealLink};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
//!         ctx.send(port, frame); // bounce it straight back
//!     }
//! }
//!
//! struct Counter(u32);
//! impl Node for Counter {
//!     fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let echo = sim.add_node("echo", Echo);
//! let counter = sim.add_node("counter", Counter(0));
//! sim.install_link(echo, PortId(0), counter, PortId(0), Box::new(IdealLink::new(SimTime::from_ns(10))));
//! sim.install_link(counter, PortId(0), echo, PortId(0), Box::new(IdealLink::new(SimTime::from_ns(10))));
//! let f = sim.frame().zeroed(64).build();
//! sim.inject_frame(SimTime::ZERO, counter, PortId(0), f);
//! sim.run();
//! ```

mod context;
mod frame;
mod kernel;
mod link;
mod node;
mod sched;
mod shard;
mod time;
mod trace;

pub use context::{Context, TimerToken};
pub use frame::{ArenaStats, Frame, FrameArena, FrameBuilder, FrameId, FrameMeta};
pub use kernel::{AnyNode, SimStats, Simulator};
pub use link::{DropReason, HopTiming, IdealLink, Link, LinkOutcome};
pub use node::{Node, NodeId, PortId};
pub use sched::{BinaryHeapScheduler, CalendarQueue, SchedStats, Scheduler, SchedulerKind};
pub use shard::{ShardError, ShardPlan, ShardRunStats, ShardedSimulator};
pub use time::SimTime;
pub use trace::{fnv1a_fold, TraceEvent, TraceKind, TraceLog, EMPTY_DIGEST};

/// Re-export of the telemetry types the kernel integrates with (see
/// [`Simulator::set_provenance`] / [`Simulator::set_metrics`] /
/// [`Simulator::set_flight_capacity`] / [`Simulator::set_profile`]), so
/// models can name them without depending on `tn-obs` directly.
pub use tn_obs::{
    Distribution, FlightKind, FlightRecord, FlightRecorder, HopSegment, KernelProfile,
    KernelProfiler, Metrics, MetricsRegistry, NodeProfile, ObsConfig, Provenance, SegmentKind,
    Snapshot, SnapshotEntry, SnapshotValue,
};

/// Re-export of the PRNG used throughout the workspace, so models can name
/// it without depending on `rand` directly.
pub use rand::rngs::SmallRng;
pub use rand::{Rng, SeedableRng};
