//! The event loop: queue, dispatch, link lookup, statistics.

use std::any::Any;
use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tn_obs::{FlightKind, FlightRecord, FlightRecorder, KernelProfile, KernelProfiler};

use crate::context::{Action, Context, TimerToken};
use crate::frame::{ArenaStats, Frame, FrameArena, FrameBuilder, FrameId, FrameMeta};
use crate::link::{Link, LinkOutcome};
use crate::node::{Node, NodeId, PortId};
use crate::sched::{EventKind, QueuedEvent, SchedStats, Scheduler, SchedulerKind};
use crate::shard::{WEntry, WindowState};
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceKind, TraceLog};

/// Object-safe extension of [`Node`] that adds downcasting, so scenario
/// code can read application state back out of the simulator after a run.
/// Blanket-implemented for every `Node + 'static`.
pub trait AnyNode: Node {
    /// Upcast to `Any` for downcasting by concrete type.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Node + 'static> AnyNode for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

pub(crate) struct NodeSlot {
    pub(crate) node: Box<dyn AnyNode>,
    pub(crate) name: String,
}

pub(crate) struct LinkSlot {
    pub(crate) link: Box<dyn Link>,
    pub(crate) dst: NodeId,
    pub(crate) dst_port: PortId,
}

/// Aggregate kernel statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Frames handed to `on_frame`.
    pub frames_delivered: u64,
    /// Frames dropped by links (loss, queue overflow, MTU).
    pub frames_dropped: u64,
    /// Frames sent out of ports with no link attached.
    pub frames_unrouted: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
}

/// The discrete-event simulator.
///
/// See the crate docs for the programming model. All public mutation is
/// deterministic: two simulators constructed with the same seed and given
/// the same call sequence produce identical traces.
pub struct Simulator {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) queue: Box<dyn Scheduler>,
    pub(crate) sched_kind: SchedulerKind,
    /// Node slots indexed by global node id. Serial simulators are dense
    /// (every slot `Some`); a shard of a partitioned run keeps global ids
    /// and leaves foreign nodes `None`.
    pub(crate) nodes: Vec<Option<NodeSlot>>,
    /// Link slots, sparse exactly like `nodes` in a shard.
    pub(crate) links: Vec<Option<LinkSlot>>,
    pub(crate) port_map: BTreeMap<(NodeId, PortId), usize>,
    pub(crate) rng: SmallRng,
    pub(crate) next_frame_id: u64,
    pub(crate) scratch: Vec<Action>,
    pub(crate) arena: FrameArena,
    pub(crate) stats: SimStats,
    pub(crate) provenance: bool,
    pub(crate) metrics: tn_obs::Metrics,
    pub(crate) flight: FlightRecorder,
    pub(crate) profiler: KernelProfiler,
    /// Scheduler counters at the last flight observation, so rebuild /
    /// cascade deltas can be turned into flight records.
    pub(crate) last_sched: SchedStats,
    /// `Some` while this simulator runs as one shard of a partitioned
    /// run: dispatches append reconciliation entries here instead of
    /// recording into `trace`, and cross-shard deliveries are buffered
    /// for the merge leader instead of being pushed locally.
    pub(crate) wlog: Option<Box<WindowState>>,
    /// Kernel-level trace log (disabled by default).
    pub trace: TraceLog,
}

impl Simulator {
    /// Create an empty simulator whose randomness is derived from `seed`,
    /// using the reference [`SchedulerKind::BinaryHeap`] event scheduler.
    pub fn new(seed: u64) -> Self {
        Simulator::with_scheduler(seed, SchedulerKind::BinaryHeap)
    }

    /// Create an empty simulator with an explicit event scheduler. Every
    /// [`SchedulerKind`] pops events in the same `(time, seq)` order, so
    /// the choice affects wall-clock speed only — trace digests are
    /// bit-for-bit identical across kinds (pinned by `tn-audit divergence`
    /// and `tests/scheduler_equivalence.rs`).
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: kind.build(),
            sched_kind: kind,
            nodes: Vec::new(),
            links: Vec::new(),
            port_map: BTreeMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            next_frame_id: 0,
            scratch: Vec::new(),
            arena: FrameArena::new(),
            stats: SimStats::default(),
            provenance: false,
            metrics: tn_obs::Metrics::disabled(),
            flight: FlightRecorder::disabled(),
            profiler: KernelProfiler::disabled(),
            last_sched: SchedStats::default(),
            wlog: None,
            trace: TraceLog::disabled(),
        }
    }

    /// Which event scheduler this simulator runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.sched_kind
    }

    /// Enable or disable per-hop latency provenance. When on, every frame
    /// accumulates contiguous [`tn_obs::Provenance`] segments in its
    /// [`FrameMeta`] at each transmit: processing time inside the source
    /// node, then the link traversal decomposed via [`Link::decompose`].
    ///
    /// Provenance is pure side-state — it never draws randomness,
    /// schedules events, or feeds the trace digest, so toggling it cannot
    /// change a run's digest (pinned by `tn-audit divergence`).
    pub fn set_provenance(&mut self, on: bool) {
        self.provenance = on;
    }

    /// True when per-hop provenance accumulation is on.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Install a metrics handle. The kernel records delivery / drop /
    /// timer counters and per-hop latency distributions into it, and the
    /// handle is offered to every node (current and future) via
    /// [`Node::on_attach_metrics`] so instrumented devices can record
    /// their own scopes. Like provenance, recording is pure side-state.
    pub fn set_metrics(&mut self, metrics: tn_obs::Metrics) {
        self.metrics = metrics;
        for slot in self.nodes.iter_mut().flatten() {
            slot.node.on_attach_metrics(&self.metrics);
        }
        for slot in self.links.iter_mut().flatten() {
            slot.link.on_attach_metrics(&self.metrics);
        }
    }

    /// The current metrics handle (disabled unless [`Simulator::set_metrics`]
    /// installed a live one).
    pub fn metrics(&self) -> &tn_obs::Metrics {
        &self.metrics
    }

    /// Size (and enable) the tn-flight recorder: keep the last
    /// `capacity` kernel events (schedules, dispatches, drops, frame
    /// alloc/reuse, scheduler rebuilds/cascades, application notes) in a
    /// fixed ring, dumped on panic or via [`Simulator::dump_flight`].
    /// `0` disables. Replaces the ring, so call between runs.
    ///
    /// Recording is pure side-state — no randomness, no scheduling, no
    /// wall-clock — so any capacity leaves trace digests bit-identical
    /// (pinned by the `flight-on-vs-off` divergence scenario).
    pub fn set_flight_capacity(&mut self, capacity: usize) {
        self.flight = if capacity == 0 {
            FlightRecorder::disabled()
        } else {
            FlightRecorder::with_capacity(capacity)
        };
    }

    /// Borrow the flight recorder (tests, diagnostics).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Render the flight-recorder ring as a human-readable dump: a
    /// header with the simulated time and scheduler, then the last N
    /// records oldest-first. Deterministic for a given run prefix.
    pub fn dump_flight(&self) -> String {
        format!(
            "tn-flight dump @ {} ps (scheduler {})\n{}",
            self.now.as_ps(),
            self.sched_kind.name(),
            self.flight.render()
        )
    }

    /// Enable or disable the deterministic kernel self-profiler.
    /// Enabling resets any previous collection and registers every
    /// already-added node. Like the flight recorder, profiling is pure
    /// side-state and cannot move a run's digest.
    pub fn set_profile(&mut self, on: bool) {
        if on {
            let mut p = KernelProfiler::enabled();
            if let Some(last) = self.nodes.len().checked_sub(1) {
                p.ensure_node(last as u32);
            }
            self.profiler = p;
        } else {
            self.profiler = KernelProfiler::disabled();
        }
    }

    /// Snapshot the profiler into a [`KernelProfile`], folding in the
    /// scheduler's structural counters and the arena's reuse statistics.
    /// `None` unless [`Simulator::set_profile`] enabled collection.
    pub fn profile(&self) -> Option<KernelProfile> {
        let mut p = self.profiler.snapshot(self.now.as_ps())?;
        p.scheduler = self.sched_kind.name().to_string();
        let s = self.queue.stats();
        p.sched_rebuilds = s.rebuilds;
        p.sched_cascades = s.cascades;
        p.sched_bucket_count = s.bucket_count;
        p.sched_bucket_width_ps = s.bucket_width_ps;
        p.wheel_occupancy = s.wheel_occupancy;
        let a = self.arena.stats();
        p.arena_allocated = a.allocated;
        p.arena_reused = a.reused;
        p.arena_recycled = a.recycled;
        Some(p)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Register a node; the returned id addresses it for connections and
    /// injections. `name` appears in diagnostics only.
    pub fn add_node(&mut self, name: impl Into<String>, node: impl Node + 'static) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(NodeSlot {
            node: Box::new(node),
            name: name.into(),
        }));
        if self.metrics.is_enabled() {
            if let Some(slot) = self.nodes[id.0 as usize].as_mut() {
                slot.node.on_attach_metrics(&self.metrics);
            }
        }
        // Registration is the cold path that sizes the profiler's dense
        // per-node rows, so dispatch-time recording is pure indexing.
        self.profiler.ensure_node(id.0);
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Diagnostic name of a node (`"<remote>"` for a node that lives on a
    /// different shard of a partitioned run).
    pub fn node_name(&self, id: NodeId) -> &str {
        match self.nodes[id.0 as usize].as_ref() {
            Some(slot) => &slot.name,
            None => "<remote>",
        }
    }

    /// Borrow a node by concrete type. Panics if the id is out of range;
    /// returns `None` if the type does not match (or the node lives on a
    /// different shard).
    pub fn node<T: Node + 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0 as usize]
            .as_ref()?
            .node
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutably borrow a node by concrete type.
    pub fn node_mut<T: Node + 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0 as usize]
            .as_mut()?
            .node
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Connect two ports bidirectionally with clones of `link`.
    #[deprecated(note = "use tn-fault's `connect_spec` (LinkSpec-based); \
                         `install_link` remains for already-built link models")]
    pub fn connect(
        &mut self,
        a: NodeId,
        a_port: PortId,
        b: NodeId,
        b_port: PortId,
        link: impl Link + Clone + 'static,
    ) {
        self.install_link(a, a_port, b, b_port, Box::new(link.clone()));
        self.install_link(b, b_port, a, a_port, Box::new(link));
    }

    /// Install a directional link from `(src, src_port)` to `(dst, dst_port)`.
    #[deprecated(note = "use tn-fault's `connect_directed_spec` (LinkSpec-based); \
                         `install_link` remains for already-built link models")]
    pub fn connect_directed(
        &mut self,
        src: NodeId,
        src_port: PortId,
        dst: NodeId,
        dst_port: PortId,
        link: Box<dyn Link>,
    ) {
        self.install_link(src, src_port, dst, dst_port, link);
    }

    /// Install a directional, already-built link model from
    /// `(src, src_port)` to `(dst, dst_port)` — the raw primitive behind
    /// `connect_directed_spec`. Most call sites should describe the link
    /// with tn-fault's `LinkSpec` and use `connect_spec` /
    /// `connect_directed_spec` instead; this remains public for link
    /// models a `LinkSpec` cannot express (hand-built `impl Link`
    /// instances). Panics if the source port already has a link (ports
    /// are point-to-point).
    pub fn install_link(
        &mut self,
        src: NodeId,
        src_port: PortId,
        dst: NodeId,
        dst_port: PortId,
        link: Box<dyn Link>,
    ) {
        let idx = self.links.len();
        self.links.push(Some(LinkSlot {
            link,
            dst,
            dst_port,
        }));
        if self.metrics.is_enabled() {
            if let Some(slot) = self.links[idx].as_mut() {
                slot.link.on_attach_metrics(&self.metrics);
            }
        }
        let prev = self.port_map.insert((src, src_port), idx);
        assert!(
            prev.is_none(),
            "port ({src:?}, {src_port:?}) already connected; ports are point-to-point"
        );
    }

    /// True if the port has an outgoing link.
    pub fn is_connected(&self, node: NodeId, port: PortId) -> bool {
        self.port_map.contains_key(&(node, port))
    }

    /// Start building a new frame born at the current time: the unified
    /// arena-first constructor for scenario drivers; nodes use
    /// [`Context::frame`]. The payload buffer is drawn from the
    /// [`FrameArena`] (in steady state a recycled buffer — no
    /// allocation).
    pub fn frame(&mut self) -> FrameBuilder<'_> {
        if self.flight.is_enabled() {
            let kind = if self.arena.will_reuse() {
                FlightKind::FrameReuse
            } else {
                FlightKind::FrameAlloc
            };
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind,
                node: u32::MAX,
                shard: 0,
                a: self.next_frame_id,
                b: 0,
            });
        }
        FrameBuilder::start(&mut self.arena, &mut self.next_frame_id, self.now)
    }

    /// Allocate a frame with a fresh id, born at the current time. For
    /// scenario drivers; nodes use [`Context::frame`].
    #[deprecated(note = "use `sim.frame()` (arena-first builder): \
                         `sim.frame().fill(|b| ...).build()`")]
    pub fn new_frame(&mut self, bytes: Vec<u8>) -> Frame {
        let id = FrameId(self.next_frame_id);
        self.next_frame_id += 1;
        Frame {
            bytes,
            id,
            born: self.now,
            meta: FrameMeta::default(),
        }
    }

    /// Allocate a frame of `len` zero bytes from the [`FrameArena`].
    #[deprecated(note = "use `sim.frame().zeroed(len)` (arena-first builder)")]
    pub fn new_frame_zeroed(&mut self, len: usize) -> Frame {
        self.frame().zeroed(len).build()
    }

    /// Allocate a frame carrying a copy of `bytes`, drawing the buffer
    /// from the [`FrameArena`].
    #[deprecated(note = "use `sim.frame().copy_from(bytes)` (arena-first builder)")]
    pub fn new_frame_copied(&mut self, bytes: &[u8]) -> Frame {
        self.frame().copy_from(bytes).build()
    }

    /// Return a finished frame's payload buffer to the [`FrameArena`] for
    /// reuse. Sinks that would otherwise drop frames should prefer this;
    /// the kernel recycles internally when it discards frames itself
    /// (unrouted ports, link drops).
    pub fn recycle_frame(&mut self, frame: Frame) {
        self.arena.give(frame.bytes);
    }

    /// Buffer-recycling counters for this simulator's arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Replace the frame arena with one parking at most `max_free`
    /// buffers (`0` disables pooling entirely: every frame build becomes
    /// a fresh allocation). Call before the first frame is built — the
    /// swap resets [`ArenaStats`]. Pooling is pure side-state, so runs
    /// with any cap produce bit-identical trace digests (pinned by
    /// `tn-audit divergence`).
    pub fn set_arena_max_free(&mut self, max_free: usize) {
        self.arena = FrameArena::with_max_free(max_free);
    }

    /// Schedule delivery of `frame` to `(node, port)` at absolute time `at`.
    pub fn inject_frame(&mut self, at: SimTime, node: NodeId, port: PortId, frame: Frame) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.bump_seq();
        self.push_event(QueuedEvent {
            at,
            seq,
            kind: EventKind::Frame { node, port, frame },
        });
    }

    /// Schedule a timer callback on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: TimerToken) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.bump_seq();
        self.push_event(QueuedEvent {
            at,
            seq,
            kind: EventKind::Timer { node, token },
        });
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Single funnel for every scheduler insertion. The profiler and
    /// flight recorder observe the stream here — pure side-state ahead
    /// of an unchanged `push`, so pop order cannot move.
    #[inline]
    fn push_event(&mut self, ev: QueuedEvent) {
        if self.profiler.is_enabled() {
            self.profiler
                .record_schedule(ev.at.as_ps(), self.queue.len() + 1);
        }
        if self.flight.is_enabled() {
            self.flight.record(FlightRecord {
                at_ps: ev.at.as_ps(),
                kind: FlightKind::Schedule,
                node: ev.target_node().0,
                shard: 0,
                a: ev.seq,
                b: self.now.as_ps(),
            });
        }
        self.queue.push(ev);
        self.note_sched_activity();
    }

    /// With the flight recorder on, turn scheduler-counter deltas since
    /// the last observation into records: calendar rebuilds and wheel
    /// cascades happen inside the scheduler, which has no recorder
    /// access, so the kernel watches the counters at its boundaries.
    fn note_sched_activity(&mut self) {
        if !self.flight.is_enabled() {
            return;
        }
        let s = self.queue.stats();
        if s.rebuilds > self.last_sched.rebuilds {
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind: FlightKind::CalendarRebuild,
                node: u32::MAX,
                shard: 0,
                a: s.bucket_count,
                b: s.bucket_width_ps,
            });
        }
        if s.cascades > self.last_sched.cascades {
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind: FlightKind::WheelCascade,
                node: u32::MAX,
                shard: 0,
                a: s.cascades,
                b: self.queue.len() as u64,
            });
        }
        self.last_sched = s;
    }

    /// Process the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events_processed += 1;
        // Pops (and the next_at probes between steps) are where the
        // wheel cascades and the calendar may rebuild; catch up on the
        // counter deltas before dispatching.
        self.note_sched_activity();
        if let Some(w) = self.wlog.as_mut() {
            // Window mode: open this dispatch's reconciliation block. The
            // popped seq is the block's tag — the merge leader orders
            // blocks across shards by `(at, translated tag)`, which is
            // exactly the serial kernel's pop order.
            let entry = match &ev.kind {
                EventKind::Frame { node, port, frame } => WEntry::Dispatch {
                    at: ev.at,
                    tag: ev.seq,
                    node: *node,
                    port: *port,
                    frame: frame.id.0,
                    timer: false,
                },
                EventKind::Timer { node, .. } => WEntry::Dispatch {
                    at: ev.at,
                    tag: ev.seq,
                    node: *node,
                    port: PortId(u16::MAX),
                    frame: u64::MAX,
                    timer: true,
                },
            };
            w.entries.push(entry);
        }
        match ev.kind {
            EventKind::Frame { node, port, frame } => self.dispatch_frame(node, port, frame),
            EventKind::Timer { node, token } => self.dispatch_timer(node, token),
        }
        true
    }

    /// Time of the next pending event, if any. Shard coordination probes
    /// this to compute the global safe window.
    pub(crate) fn peek_next_at(&mut self) -> Option<SimTime> {
        self.queue.next_at()
    }

    /// Window-mode run loop: process every pending event strictly before
    /// `h_excl` (the exclusive conservative-lookahead horizon), leaving
    /// later events queued. Returns the number of events processed.
    pub(crate) fn run_window(&mut self, h_excl: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.next_at() {
            if at >= h_excl {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    /// Push a cross-shard delivery routed by the merge leader. The seq was
    /// assigned by the leader's global counter (mirroring the serial
    /// kernel's assignment order), so local pops interleave it correctly.
    pub(crate) fn push_external(
        &mut self,
        at: SimTime,
        seq: u64,
        node: NodeId,
        port: PortId,
        frame: Frame,
    ) {
        debug_assert!(at >= self.now, "cross-shard delivery into the past");
        self.push_event(QueuedEvent {
            at,
            seq,
            kind: EventKind::Frame { node, port, frame },
        });
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or the next event is later than
    /// `deadline`. Events at exactly `deadline` are processed. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.next_at() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock to the deadline even if nothing was pending so
        // repeated run_until calls behave like wall-clock progression.
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch_frame(&mut self, node: NodeId, port: PortId, frame: Frame) {
        self.stats.frames_delivered += 1;
        self.metrics.inc("kernel", "deliver", Some(node.0));
        if self.wlog.is_none() {
            self.trace.record(TraceEvent {
                at: self.now,
                node,
                port,
                frame: frame.id,
                kind: TraceKind::Deliver,
            });
        }
        if self.profiler.is_enabled() {
            self.profiler.record_frame(self.now.as_ps(), node.0);
        }
        if self.flight.is_enabled() {
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind: FlightKind::Dispatch,
                node: node.0,
                shard: 0,
                a: frame.id.0,
                b: u64::from(port.0),
            });
        }
        let frames_before = self.next_frame_id;
        let Some(slot) = self.nodes[node.0 as usize].as_mut() else {
            unreachable!("frame dispatched to a node outside this shard")
        };
        let mut ctx = Context {
            now: self.now,
            me: node,
            actions: &mut self.scratch,
            rng: &mut self.rng,
            next_frame_id: &mut self.next_frame_id,
            arena: &mut self.arena,
            flight: &mut self.flight,
        };
        slot.node.on_frame(&mut ctx, port, frame);
        self.log_builds(frames_before);
        self.apply_actions(node);
    }

    fn dispatch_timer(&mut self, node: NodeId, token: TimerToken) {
        self.stats.timers_fired += 1;
        self.metrics.inc("kernel", "timer", Some(node.0));
        if self.wlog.is_none() {
            self.trace.record(TraceEvent {
                at: self.now,
                node,
                port: PortId(u16::MAX),
                frame: FrameId(u64::MAX),
                kind: TraceKind::Timer,
            });
        }
        if self.profiler.is_enabled() {
            self.profiler.record_timer(self.now.as_ps(), node.0);
        }
        if self.flight.is_enabled() {
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind: FlightKind::Dispatch,
                node: node.0,
                shard: 0,
                a: token.0,
                b: u64::MAX,
            });
        }
        let frames_before = self.next_frame_id;
        let Some(slot) = self.nodes[node.0 as usize].as_mut() else {
            unreachable!("timer dispatched to a node outside this shard")
        };
        let mut ctx = Context {
            now: self.now,
            me: node,
            actions: &mut self.scratch,
            rng: &mut self.rng,
            next_frame_id: &mut self.next_frame_id,
            arena: &mut self.arena,
            flight: &mut self.flight,
        };
        slot.node.on_timer(&mut ctx, token);
        self.log_builds(frames_before);
        self.apply_actions(node);
    }

    /// Window mode: record how many frame ids the just-returned callback
    /// allocated, so the merge leader can hand out the matching real ids
    /// in serial order.
    #[inline]
    fn log_builds(&mut self, frames_before: u64) {
        if let Some(w) = self.wlog.as_mut() {
            let built = self.next_frame_id - frames_before;
            if built > 0 {
                w.entries.push(WEntry::Builds(built as u32));
            }
        }
    }

    fn apply_actions(&mut self, src: NodeId) {
        // Drain into a local vec to keep borrowck happy while links and the
        // queue are touched; scratch is reused to avoid steady-state allocs.
        let mut actions = std::mem::take(&mut self.scratch);
        for action in actions.drain(..) {
            match action {
                Action::Send { port, frame } => self.transmit(src, port, frame),
                Action::Timer { delay, token } => {
                    let at = self.now + delay;
                    let seq = self.bump_seq();
                    self.push_event(QueuedEvent {
                        at,
                        seq,
                        kind: EventKind::Timer { node: src, token },
                    });
                    if let Some(w) = self.wlog.as_mut() {
                        w.entries.push(WEntry::LocalPush);
                    }
                }
                Action::DeliverLocal {
                    dst,
                    port,
                    delay,
                    frame,
                } => {
                    let at = self.now + delay;
                    if self.wlog.is_some() && self.nodes[dst.0 as usize].is_none() {
                        // Destination lives on another shard: hand the
                        // frame to the merge leader, which assigns the
                        // real seq and routes it (or panics, coldly, if
                        // the delivery lands inside the safe window).
                        if let Some(w) = self.wlog.as_mut() {
                            w.entries.push(WEntry::Remote {
                                arrival: at,
                                dst,
                                dst_port: port,
                            });
                            w.remote.push(frame);
                        }
                    } else {
                        let seq = self.bump_seq();
                        self.push_event(QueuedEvent {
                            at,
                            seq,
                            kind: EventKind::Frame {
                                node: dst,
                                port,
                                frame,
                            },
                        });
                        if let Some(w) = self.wlog.as_mut() {
                            w.entries.push(WEntry::LocalPush);
                        }
                    }
                }
            }
        }
        self.scratch = actions;
    }

    /// Accumulate provenance for a hop that will complete at `deliver_at`
    /// and record the new segments into the metrics registry. Pure
    /// side-state over `frame.meta`; the event schedule is untouched.
    fn record_hop_provenance(
        &mut self,
        src: NodeId,
        port: PortId,
        frame: &mut Frame,
        link_idx: usize,
        deliver_at: SimTime,
    ) {
        let born = frame.born;
        let len = frame.len();
        let Some(link_slot) = self.links[link_idx].as_ref() else {
            return;
        };
        let timing = link_slot.link.decompose(len, deliver_at - self.now);
        let prov = frame
            .meta
            .provenance
            // audit:allow(hotpath-alloc): lazy init, paid only when hop provenance is enabled (opt-in diagnostics)
            .get_or_insert_with(|| Box::new(tn_obs::Provenance::new(born.as_ps())));
        let before = prov.segments().len();
        // Time the frame spent inside `src` since its last recorded
        // movement (or since birth) is processing time at `src`.
        prov.record_process(src.0, port.0, self.now.as_ps());
        prov.record_hop(
            src.0,
            port.0,
            timing.queue.as_ps(),
            timing.serialize.as_ps(),
            timing.propagate.as_ps(),
        );
        if self.metrics.is_enabled() {
            for seg in &prov.segments()[before..] {
                self.metrics
                    .observe("hop", seg.kind.name(), Some(seg.node), seg.duration_ps());
            }
        }
    }

    fn transmit(&mut self, src: NodeId, port: PortId, mut frame: Frame) {
        let Some(&idx) = self.port_map.get(&(src, port)) else {
            self.stats.frames_unrouted += 1;
            self.metrics.inc("kernel", "unrouted", Some(src.0));
            if self.wlog.is_none() {
                self.trace.record(TraceEvent {
                    at: self.now,
                    node: src,
                    port,
                    frame: frame.id,
                    kind: TraceKind::Drop,
                });
            }
            if self.profiler.is_enabled() {
                self.profiler.record_drop(src.0);
            }
            if self.flight.is_enabled() {
                self.flight.record(FlightRecord {
                    at_ps: self.now.as_ps(),
                    kind: FlightKind::Drop,
                    node: src.0,
                    shard: 0,
                    a: frame.id.0,
                    b: u64::from(port.0),
                });
            }
            if let Some(w) = self.wlog.as_mut() {
                w.entries.push(WEntry::DropRec {
                    node: src,
                    port,
                    frame: frame.id.0,
                });
            }
            self.arena.give(frame.bytes);
            return;
        };
        let coin = self.rng.gen::<f64>();
        let Some(slot) = self.links[idx].as_mut() else {
            unreachable!("port_map routed to a link outside this shard")
        };
        match slot.link.transmit(self.now, frame.len(), coin) {
            LinkOutcome::Deliver(at) => {
                debug_assert!(at >= self.now);
                let (dst, dst_port) = (slot.dst, slot.dst_port);
                if self.provenance {
                    self.record_hop_provenance(src, port, &mut frame, idx, at);
                }
                if self.wlog.is_some() && self.nodes[dst.0 as usize].is_none() {
                    // Cross-shard hop: buffer the frame for the merge
                    // leader instead of pushing it locally. The leader
                    // assigns the real seq in serial order and routes it
                    // to the owning shard.
                    if let Some(w) = self.wlog.as_mut() {
                        w.entries.push(WEntry::Remote {
                            arrival: at,
                            dst,
                            dst_port,
                        });
                        w.remote.push(frame);
                    }
                } else {
                    let seq = self.bump_seq();
                    self.push_event(QueuedEvent {
                        at,
                        seq,
                        kind: EventKind::Frame {
                            node: dst,
                            port: dst_port,
                            frame,
                        },
                    });
                    if let Some(w) = self.wlog.as_mut() {
                        w.entries.push(WEntry::LocalPush);
                    }
                }
            }
            LinkOutcome::Drop(reason) => {
                self.stats.frames_dropped += 1;
                self.metrics.inc("kernel", "drop", Some(src.0));
                self.metrics.inc("link_drop", reason.name(), None);
                if self.wlog.is_none() {
                    self.trace.record(TraceEvent {
                        at: self.now,
                        node: src,
                        port,
                        frame: frame.id,
                        kind: TraceKind::Drop,
                    });
                }
                if self.profiler.is_enabled() {
                    self.profiler.record_drop(src.0);
                }
                if self.flight.is_enabled() {
                    self.flight.record(FlightRecord {
                        at_ps: self.now.as_ps(),
                        kind: FlightKind::Drop,
                        node: src.0,
                        shard: 0,
                        a: frame.id.0,
                        b: u64::from(port.0),
                    });
                }
                if let Some(w) = self.wlog.as_mut() {
                    w.entries.push(WEntry::DropRec {
                        node: src,
                        port,
                        frame: frame.id.0,
                    });
                }
                self.arena.give(frame.bytes);
            }
        }
    }
}

impl Drop for Simulator {
    /// Flight recorders exist for the moment everything else is gone:
    /// when the simulator unwinds during a panic with records in the
    /// ring, dump them to stderr so the crash report carries the last N
    /// kernel events. Quiet on normal drops and when the ring is off.
    fn drop(&mut self) {
        if std::thread::panicking() && !self.flight.is_empty() {
            eprintln!("{}", self.dump_flight());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::IdealLink;

    /// Forwards every frame out the same port after a modeled delay, and
    /// counts what it saw.
    struct Repeater {
        seen: Vec<(SimTime, FrameId)>,
        bounce: bool,
    }

    impl Node for Repeater {
        fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
            self.seen.push((ctx.now(), frame.id));
            if self.bounce {
                ctx.send(port, frame);
            }
        }
    }

    struct TimerNode {
        fired_at: Vec<(SimTime, u64)>,
        rearm: Option<SimTime>,
    }

    impl Node for TimerNode {
        fn on_frame(&mut self, _: &mut Context<'_>, _: PortId, _: Frame) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
            self.fired_at.push((ctx.now(), timer.0));
            if let Some(period) = self.rearm {
                if self.fired_at.len() < 5 {
                    ctx.set_timer(period, timer);
                }
            }
        }
    }

    #[test]
    fn frame_travels_and_time_advances() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: true,
            },
        );
        let b = sim.add_node(
            "b",
            Repeater {
                seen: vec![],
                bounce: false,
            },
        );
        let link = IdealLink::new(SimTime::from_ns(100));
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
        sim.install_link(b, PortId(0), a, PortId(0), Box::new(link));
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::from_ns(10), a, PortId(0), f);
        sim.run();
        let a_node = sim.node::<Repeater>(a).unwrap();
        let b_node = sim.node::<Repeater>(b).unwrap();
        assert_eq!(a_node.seen.len(), 1);
        assert_eq!(a_node.seen[0].0, SimTime::from_ns(10));
        assert_eq!(b_node.seen.len(), 1);
        assert_eq!(b_node.seen[0].0, SimTime::from_ns(110));
        assert_eq!(sim.now(), SimTime::from_ns(110));
        assert_eq!(sim.stats().frames_delivered, 2);
    }

    #[test]
    fn equal_time_events_preserve_schedule_order() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: false,
            },
        );
        let t = SimTime::from_ns(50);
        for i in 0..10 {
            let mut f = sim.frame().zeroed(64).build();
            f.id = FrameId(i);
            sim.inject_frame(t, a, PortId(0), f);
        }
        sim.run();
        let node = sim.node::<Repeater>(a).unwrap();
        let ids: Vec<u64> = node.seen.iter().map(|(_, id)| id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_and_rearm() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node(
            "t",
            TimerNode {
                fired_at: vec![],
                rearm: Some(SimTime::from_us(1)),
            },
        );
        sim.schedule_timer(SimTime::from_us(1), n, TimerToken(7));
        sim.run();
        let node = sim.node::<TimerNode>(n).unwrap();
        assert_eq!(node.fired_at.len(), 5);
        assert_eq!(node.fired_at[0], (SimTime::from_us(1), 7));
        assert_eq!(node.fired_at[4], (SimTime::from_us(5), 7));
        assert_eq!(sim.stats().timers_fired, 5);
    }

    #[test]
    fn unrouted_frames_are_counted_not_lost_silently() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: true,
            },
        );
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
        sim.run();
        assert_eq!(sim.stats().frames_unrouted, 1);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulator::new(1);
        let n = sim.add_node(
            "t",
            TimerNode {
                fired_at: vec![],
                rearm: Some(SimTime::from_ms(1)),
            },
        );
        sim.schedule_timer(SimTime::from_ms(1), n, TimerToken(0));
        let processed = sim.run_until(SimTime::from_ms(2));
        assert_eq!(processed, 2);
        assert_eq!(sim.now(), SimTime::from_ms(2));
        assert_eq!(sim.pending_events(), 1);
        // Deadline with no events still moves the clock.
        sim.run_until(SimTime::from_ms(2) + SimTime::from_ns(1));
        assert!(sim.now() >= SimTime::from_ms(2));
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> Vec<TraceEvent> {
            let mut sim = Simulator::new(seed);
            sim.trace.set_enabled(true);
            let a = sim.add_node(
                "a",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let b = sim.add_node(
                "b",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let link = IdealLink::new(SimTime::from_ns(13));
            sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
            sim.install_link(b, PortId(0), a, PortId(0), Box::new(link));
            let f = sim.frame().zeroed(100).build();
            sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
            sim.run_until(SimTime::from_us(1));
            sim.trace.events().to_vec()
        }
        assert_eq!(run(99), run(99));
        // Ping-pong between two bouncers runs forever; run_until bounded it.
        assert!(!run(99).is_empty());
    }

    #[test]
    fn identical_seeds_produce_identical_digests() {
        fn digest(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            // Storage off on purpose: the digest must not depend on it.
            let a = sim.add_node(
                "a",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let b = sim.add_node(
                "b",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let link = IdealLink::new(SimTime::from_ns(13));
            sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
            sim.install_link(b, PortId(0), a, PortId(0), Box::new(link));
            let f = sim.frame().zeroed(100).build();
            sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
            sim.run_until(SimTime::from_us(1));
            (sim.trace.digest(), sim.trace.recorded())
        }
        let (d1, n1) = digest(5);
        let (d2, n2) = digest(5);
        assert_eq!(d1, d2);
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        // A different injection time must shift the digest.
        let (d3, _) = digest(5); // same again, sanity
        assert_eq!(d1, d3);
    }

    #[test]
    fn schedulers_produce_identical_digests() {
        fn digest(kind: SchedulerKind) -> (u64, u64) {
            let mut sim = Simulator::with_scheduler(3, kind);
            assert_eq!(sim.scheduler_kind(), kind);
            let a = sim.add_node(
                "a",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let b = sim.add_node(
                "b",
                Repeater {
                    seen: vec![],
                    bounce: true,
                },
            );
            let link = IdealLink::new(SimTime::from_ns(13));
            sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
            sim.install_link(b, PortId(0), a, PortId(0), Box::new(link));
            let f = sim.frame().zeroed(100).build();
            sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
            sim.run_until(SimTime::from_us(1));
            (sim.trace.digest(), sim.trace.recorded())
        }
        let reference = digest(SchedulerKind::BinaryHeap);
        for kind in SchedulerKind::ALL {
            assert_eq!(reference, digest(kind), "{} diverged", kind.name());
        }
    }

    #[test]
    fn kernel_recycles_discarded_frames() {
        // Unrouted sends return their payload buffers to the arena.
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: true,
            },
        );
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
        sim.run();
        assert_eq!(sim.stats().frames_unrouted, 1);
        assert_eq!(sim.arena_stats().recycled, 1);
        // The next pooled frame reuses that buffer: no fresh allocation.
        let g = sim.frame().zeroed(64).build();
        assert_eq!(g.bytes, vec![0u8; 64]);
        assert_eq!(sim.arena_stats().reused, 1);
        assert_eq!(
            sim.arena_stats().allocated,
            1,
            "only the first frame's buffer was a real allocation"
        );
    }

    #[test]
    fn arena_allocations_go_flat_after_warmup() {
        // A steady produce/consume loop must reach allocation-free
        // steady state: after the first few frames prime the pool, every
        // build draws a recycled buffer.
        struct Producer;
        impl Node for Producer {
            fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
                ctx.recycle(f);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
                let f = ctx.frame().zeroed(128).build();
                ctx.send(PortId(0), f);
                ctx.set_timer(SimTime::from_ns(100), timer);
            }
        }
        struct Consumer;
        impl Node for Consumer {
            fn on_frame(&mut self, ctx: &mut Context<'_>, _p: PortId, f: Frame) {
                ctx.recycle(f);
            }
        }
        let mut sim = Simulator::new(5);
        let p = sim.add_node("p", Producer);
        let c = sim.add_node("c", Consumer);
        let link = IdealLink::new(SimTime::from_ns(10));
        sim.install_link(p, PortId(0), c, PortId(0), Box::new(link.clone()));
        sim.install_link(c, PortId(0), p, PortId(0), Box::new(link));
        sim.schedule_timer(SimTime::ZERO, p, TimerToken(0));
        sim.run_until(SimTime::from_us(1)); // warmup: ~10 frames
        let warm = sim.arena_stats();
        sim.run_until(SimTime::from_us(100));
        let done = sim.arena_stats();
        assert_eq!(
            done.allocated, warm.allocated,
            "steady state must not allocate: {warm:?} -> {done:?}"
        );
        assert!(
            done.reused > warm.reused + 500,
            "recycled buffers must carry the steady state: {done:?}"
        );
    }

    #[test]
    fn pooled_frame_ids_stay_monotonic_across_recycling() {
        let mut sim = Simulator::new(1);
        let mut last = None;
        for _ in 0..10 {
            let f = sim.frame().zeroed(32).build();
            if let Some(prev) = last {
                assert!(f.id > prev, "frame ids must grow despite buffer reuse");
            }
            last = Some(f.id);
            sim.recycle_frame(f);
        }
        let s = sim.arena_stats();
        assert_eq!(s.recycled, 10);
        assert_eq!(s.allocated, 1, "one real allocation feeds all ten frames");
    }

    #[test]
    fn node_downcast_checks_type() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: false,
            },
        );
        assert!(sim.node::<Repeater>(a).is_some());
        assert!(sim.node::<TimerNode>(a).is_none());
        assert_eq!(sim.node_name(a), "a");
        assert_eq!(sim.node_count(), 1);
    }

    /// A two-node ping-pong plant used by the flight/profile tests.
    fn bouncing_pair(sim: &mut Simulator) -> NodeId {
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: true,
            },
        );
        let b = sim.add_node(
            "b",
            Repeater {
                seen: vec![],
                bounce: true,
            },
        );
        let link = IdealLink::new(SimTime::from_ns(13));
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
        sim.install_link(b, PortId(0), a, PortId(0), Box::new(link));
        a
    }

    #[test]
    fn flight_ring_captures_kernel_events() {
        let mut sim = Simulator::new(7);
        sim.set_flight_capacity(16);
        assert!(sim.flight().is_enabled());
        let a = bouncing_pair(&mut sim);
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
        sim.run_until(SimTime::from_us(1));
        let flight = sim.flight();
        assert!(flight.total() > 16, "ping-pong overflows a 16-slot ring");
        assert_eq!(flight.len(), 16, "ring holds exactly its capacity");
        let kinds: Vec<FlightKind> = flight.records().map(|r| r.kind).collect();
        assert!(kinds.contains(&FlightKind::Schedule));
        assert!(kinds.contains(&FlightKind::Dispatch));
        // Oldest-first: record times never decrease.
        let times: Vec<u64> = flight.records().map(|r| r.at_ps).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let dump = sim.dump_flight();
        assert!(dump.starts_with("tn-flight dump @ "));
        assert!(dump.contains("schedule"));
    }

    #[test]
    fn profile_counts_match_kernel_stats() {
        let mut sim = Simulator::new(7);
        sim.set_profile(true);
        let a = bouncing_pair(&mut sim);
        let f = sim.frame().zeroed(64).build();
        sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
        sim.run_until(SimTime::from_us(1));
        let p = sim.profile().expect("profiler is on");
        let stats = sim.stats();
        assert_eq!(p.frames, stats.frames_delivered);
        assert_eq!(p.timers, stats.timers_fired);
        assert_eq!(p.drops, stats.frames_dropped + stats.frames_unrouted);
        assert!(p.schedules > 0);
        assert!(p.max_queue_depth >= 1);
        assert_eq!(p.per_node.len(), 2);
        let by_node: u64 = p.per_node.iter().map(|n| n.dispatches()).sum();
        assert_eq!(by_node, p.dispatches());
        // The arena section is folded in from the simulator.
        assert_eq!(p.arena_allocated, sim.arena_stats().allocated);
        assert!(sim.profile().is_some(), "snapshot is repeatable");
        sim.set_profile(false);
        assert!(sim.profile().is_none());
    }

    #[test]
    fn flight_and_profile_leave_digests_unchanged() {
        fn digest(flight: bool) -> (u64, u64) {
            let mut sim = Simulator::new(3);
            if flight {
                sim.set_flight_capacity(32);
                sim.set_profile(true);
            }
            let a = bouncing_pair(&mut sim);
            let f = sim.frame().zeroed(100).build();
            sim.inject_frame(SimTime::ZERO, a, PortId(0), f);
            sim.run_until(SimTime::from_us(1));
            (sim.trace.digest(), sim.trace.recorded())
        }
        assert_eq!(digest(false), digest(true));
        assert!(digest(true).1 > 0);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Repeater {
                seen: vec![],
                bounce: false,
            },
        );
        let b = sim.add_node(
            "b",
            Repeater {
                seen: vec![],
                bounce: false,
            },
        );
        let link = IdealLink::new(SimTime::ZERO);
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(link.clone()));
        sim.install_link(a, PortId(0), b, PortId(1), Box::new(link));
    }
}
