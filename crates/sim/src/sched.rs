//! Pluggable event schedulers: the pending-event set behind the kernel.
//!
//! The kernel pops events in strict `(time, seq)` order — time first, then
//! insertion sequence so equal-time events replay in schedule order. That
//! total order *is* the determinism contract: any two [`Scheduler`]
//! implementations must pop the exact same sequence for the exact same
//! pushes, which `tests/scheduler_equivalence.rs` and the tn-audit
//! divergence corpus pin bit-for-bit via trace digests.
//!
//! Two implementations ship:
//!
//! * [`BinaryHeapScheduler`] — the reference `O(log n)` min-heap. Default.
//! * [`CalendarQueue`] — Brown's calendar queue (CACM '88), `O(1)`
//!   amortized for the dense, near-future event horizons that link and
//!   switch latencies produce. Selected per scenario via
//!   [`SchedulerKind::CalendarQueue`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::context::TimerToken;
use crate::frame::Frame;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;

/// What a queued event does when it fires.
pub(crate) enum EventKind {
    /// Deliver `frame` to `(node, port)`.
    Frame {
        node: NodeId,
        port: PortId,
        frame: Frame,
    },
    /// Fire `token` on `node`.
    Timer { node: NodeId, token: TimerToken },
}

/// One pending event. Ordered by `(at, seq)`; `seq` is the kernel's global
/// insertion counter, so ordering is total and deterministic.
///
/// Public so [`Scheduler`] is nameable outside the crate, but fields and
/// construction are kernel-internal.
pub struct QueuedEvent {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl QueuedEvent {
    /// `(time, seq)` sort key.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    /// Reverse ordering so a `BinaryHeap` becomes a min-heap on
    /// `(time, seq)`; the `seq` tiebreak keeps equal-time events in
    /// schedule order, which is what makes runs reproducible.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// The pending-event set. Implementations must pop in ascending
/// `(time, seq)` order — the same total order as the reference
/// [`BinaryHeapScheduler`] — or trace digests diverge and the
/// equivalence suite fails.
pub trait Scheduler {
    /// Insert an event.
    fn push(&mut self, ev: QueuedEvent);
    /// Remove and return the `(time, seq)`-minimal event.
    fn pop(&mut self) -> Option<QueuedEvent>;
    /// Timestamp of the event [`Scheduler::pop`] would return, without
    /// removing it. Takes `&mut self` so implementations may cache the
    /// search.
    fn next_at(&mut self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Short implementation name for diagnostics and bench output.
    fn name(&self) -> &'static str;
}

/// Which [`Scheduler`] a simulator uses. Selectable per scenario via
/// `ScenarioConfig::scheduler` in `tn-core`; the default stays the
/// reference heap so existing runs are untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Reference `O(log n)` binary min-heap.
    #[default]
    BinaryHeap,
    /// Brown's `O(1)`-amortized calendar queue.
    CalendarQueue,
}

impl SchedulerKind {
    /// Both kinds, for differential test sweeps.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::BinaryHeap, SchedulerKind::CalendarQueue];

    /// Construct the scheduler this kind names.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::BinaryHeap => Box::new(BinaryHeapScheduler::new()),
            SchedulerKind::CalendarQueue => Box::new(CalendarQueue::new()),
        }
    }

    /// Stable name, matching [`Scheduler::name`].
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::BinaryHeap => "binary-heap",
            SchedulerKind::CalendarQueue => "calendar-queue",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "binary-heap" | "heap" => Ok(SchedulerKind::BinaryHeap),
            "calendar-queue" | "calendar" => Ok(SchedulerKind::CalendarQueue),
            other => Err(format!(
                "unknown scheduler {other:?} (expected binary-heap or calendar-queue)"
            )),
        }
    }
}

/// Reference scheduler: `std::collections::BinaryHeap` turned into a
/// min-heap by [`QueuedEvent`]'s reversed `Ord`.
#[derive(Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<QueuedEvent>,
}

impl BinaryHeapScheduler {
    /// An empty heap.
    pub fn new() -> Self {
        BinaryHeapScheduler::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn push(&mut self, ev: QueuedEvent) {
        self.heap.push(ev);
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    fn next_at(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "binary-heap"
    }
}

/// Smallest bucket count; the queue starts here and never shrinks below.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count; growth stops here regardless of population.
const MAX_BUCKETS: usize = 1 << 16;
/// Initial bucket-width shift (2^10 ps ≈ 1 ns) until the first resize
/// measures the real inter-event gap. Widths are always powers of two so
/// the day of a timestamp is a shift, not a division — `day_of` runs on
/// every push, pop, and scan probe.
const INITIAL_WIDTH_SHIFT: u32 = 10;

/// Brown's calendar queue: a bucket ring indexed by `time / width`, like a
/// desk calendar — one bucket per "day", one lap of the ring per "year".
///
/// Each bucket is kept sorted ascending by `(time, seq)`, so a bucket's
/// front is its minimum and `pop` is a front removal. The scan from the
/// current day therefore probes one front per bucket: the first bucket
/// whose front belongs to the day being visited holds the global minimum
/// (later "years" hash to the same bucket but sort behind the current
/// day). If a whole year of days is empty the queue falls back to a
/// direct minimum over bucket fronts, which also fast-forwards the
/// calendar. Resizes re-derive the bucket width from the median non-zero
/// gap between pending events — the mean is useless here because this
/// kernel's workloads mix equal-time cohorts with millisecond dead zones.
/// All decisions are pure functions of the queue contents, so the
/// schedule stays deterministic.
pub struct CalendarQueue {
    /// `buckets.len()` is a power of two; `mask = len - 1`. Each bucket is
    /// sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<QueuedEvent>>,
    mask: usize,
    /// Bucket width is `1 << shift` picoseconds. An event at `t` lives in
    /// bucket `(t >> shift) & mask` — `t >> shift` is its absolute "day".
    shift: u32,
    /// Day of the most recent pop; scans resume here.
    cursor: u64,
    len: usize,
    /// Bucket whose front is the global minimum, cached between
    /// [`Scheduler::next_at`] and [`Scheduler::pop`].
    cached_min: Option<usize>,
    /// Searches since the last rebuild that fell off the calendar into
    /// the direct-minimum fallback. A high count means the width no
    /// longer matches the event horizon (it is only re-derived on
    /// resize), so [`Scheduler::pop`] forces a re-derivation. Purely a
    /// function of the push/pop history, so determinism is preserved.
    fallbacks: u32,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty calendar with [`MIN_BUCKETS`] days of [`INITIAL_WIDTH_PS`].
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS - 1,
            shift: INITIAL_WIDTH_SHIFT,
            cursor: 0,
            len: 0,
            cached_min: None,
            fallbacks: 0,
        }
    }

    /// Current bucket count (test / diagnostic visibility).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in picoseconds (test / diagnostic visibility).
    pub fn bucket_width_ps(&self) -> u64 {
        1u64 << self.shift
    }

    #[inline]
    fn day_of(&self, at: SimTime) -> u64 {
        at.as_ps() >> self.shift
    }

    /// Locate the bucket whose front is the `(time, seq)`-minimal event:
    /// one lap of the calendar from the cursor peeking only at fronts,
    /// then a direct minimum over fronts when the year ahead is empty.
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        for i in 0..self.buckets.len() as u64 {
            let day = self.cursor.wrapping_add(i);
            let b = (day as usize) & self.mask;
            if let Some(front) = self.buckets[b].front() {
                // The front is the bucket minimum; it belongs to `day`
                // exactly when this bucket has anything this "year".
                if self.day_of(front.at) == day {
                    return Some(b);
                }
            }
        }
        self.fallbacks += 1;
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                let key = front.key();
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((b, key));
                }
            }
        }
        best.map(|(b, _)| b)
    }

    /// Re-bucket every event into `new_nb` buckets, re-deriving the width
    /// as a power of two near the *smaller* of ≈3× the median non-zero
    /// inter-event gap and ≈3× the mean gap (`span / len`). The median
    /// keeps equal-time cohorts — which drag the mean to zero — from
    /// collapsing the width; the mean keeps dense horizons (many live
    /// timers in a short span) from over-filling each day, which would
    /// turn the sorted-bucket inserts into large memmoves. Deterministic:
    /// inputs are the queue contents only.
    fn rebuild(&mut self, new_nb: usize) {
        let new_nb = new_nb.clamp(MIN_BUCKETS, MAX_BUCKETS);
        // audit:allow(hotpath-alloc): rebuild is an occupancy-triggered resize, amortized across many pushes
        let mut evs: Vec<QueuedEvent> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            evs.extend(bucket.drain(..));
        }
        evs.sort_unstable_by_key(QueuedEvent::key);
        if evs.len() >= 2 {
            let mut gaps: Vec<u64> = evs
                .windows(2)
                .map(|w| w[1].at.as_ps() - w[0].at.as_ps())
                .filter(|&g| g > 0)
                .collect();
            if !gaps.is_empty() {
                gaps.sort_unstable();
                let median = gaps[gaps.len() / 2];
                let span = evs[evs.len() - 1].at.as_ps() - evs[0].at.as_ps();
                let mean = span / evs.len() as u64;
                let target = median.min(mean.max(1)).saturating_mul(3).max(1);
                self.shift = 63 - target.next_power_of_two().leading_zeros();
            }
        }
        if let Some(first) = evs.first() {
            self.cursor = self.day_of(first.at);
        }
        self.buckets = (0..new_nb).map(|_| VecDeque::new()).collect();
        self.mask = new_nb - 1;
        for ev in evs {
            // Ascending feed: appending keeps every bucket sorted.
            let b = (self.day_of(ev.at) as usize) & self.mask;
            self.buckets[b].push_back(ev);
        }
        self.cached_min = None;
        self.fallbacks = 0;
    }
}

impl Scheduler for CalendarQueue {
    fn push(&mut self, ev: QueuedEvent) {
        if self.len + 1 > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
        let day = self.day_of(ev.at);
        if day < self.cursor {
            // The kernel never schedules into the past, but a standalone
            // scheduler must still honor it: rewind so the scan sees it.
            self.cursor = day;
        }
        let b = (day as usize) & self.mask;
        let key = ev.key();
        let bucket = &mut self.buckets[b];
        // Binary search for the sorted slot. The common shapes are cheap:
        // an equal-time cohort appends at the back, and VecDeque::insert
        // rotates whichever side is shorter.
        let (mut lo, mut hi) = (0usize, bucket.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if bucket[mid].key() < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bucket.insert(lo, ev);
        self.len += 1;
        if let Some(cb) = self.cached_min {
            // A key below the cached global minimum is the new minimum,
            // and is therefore at the front of its own bucket.
            // audit:allow(hotpath-unwrap): cached_min always points at a non-empty bucket; it is cleared when its bucket drains
            if key < self.buckets[cb].front().expect("cached bucket empty").key() {
                self.cached_min = Some(b);
            }
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        let b = match self.cached_min.take() {
            Some(b) => b,
            None => self.find_min()?,
        };
        let ev = self.buckets[b].pop_front()?;
        self.len -= 1;
        self.cursor = self.day_of(ev.at);
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        } else if self.fallbacks >= 64 {
            // The width has drifted away from the live horizon; same
            // bucket count, fresh width.
            self.rebuild(self.buckets.len());
        }
        Some(ev)
    }

    fn next_at(&mut self) -> Option<SimTime> {
        if self.cached_min.is_none() {
            self.cached_min = self.find_min();
        }
        self.cached_min
            .and_then(|b| self.buckets[b].front())
            .map(|ev| ev.at)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "calendar-queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn timer(at: SimTime, seq: u64) -> QueuedEvent {
        QueuedEvent {
            at,
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(0),
            },
        }
    }

    /// Feed both schedulers the same pushes (interleaved with pops) and
    /// assert identical pop sequences.
    fn differential(pushes: &[(u64, usize)]) {
        let mut heap: Box<dyn Scheduler> = SchedulerKind::BinaryHeap.build();
        let mut cal: Box<dyn Scheduler> = SchedulerKind::CalendarQueue.build();
        for (seq, &(at_ps, pops)) in pushes.iter().enumerate() {
            let at = SimTime::from_ps(at_ps);
            heap.push(timer(at, seq as u64));
            cal.push(timer(at, seq as u64));
            for _ in 0..pops {
                assert_eq!(heap.next_at(), cal.next_at());
                let (h, c) = (heap.pop(), cal.pop());
                match (h, c) {
                    (None, None) => {}
                    (Some(h), Some(c)) => {
                        assert_eq!((h.at, h.seq), (c.at, c.seq));
                    }
                    _ => panic!("schedulers disagreed on emptiness"),
                }
            }
        }
        while let Some(h) = heap.pop() {
            let c = cal.pop().expect("calendar drained early");
            assert_eq!((h.at, h.seq), (c.at, c.seq));
        }
        assert!(cal.pop().is_none());
        assert!(cal.is_empty());
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            s.push(timer(SimTime::from_ns(30), 0));
            s.push(timer(SimTime::from_ns(10), 1));
            s.push(timer(SimTime::from_ns(10), 2));
            s.push(timer(SimTime::from_ns(20), 3));
            let order: Vec<(u64, u64)> = std::iter::from_fn(|| s.pop())
                .map(|e| (e.at.as_ps(), e.seq))
                .collect();
            assert_eq!(
                order,
                vec![(10_000, 1), (10_000, 2), (20_000, 3), (30_000, 0)],
                "{} broke (time, seq) order",
                kind.name()
            );
        }
    }

    #[test]
    fn equal_time_bursts_stay_in_schedule_order() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            for seq in 0..100 {
                s.push(timer(SimTime::from_us(1), seq));
            }
            let seqs: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|e| e.seq).collect();
            assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "{}", kind.name());
        }
    }

    #[test]
    fn calendar_matches_heap_on_dense_near_future_events() {
        // The workload shape the calendar is built for: tight horizon,
        // lots of ties.
        let mut rng = SmallRng::seed_from_u64(7);
        let pushes: Vec<(u64, usize)> = (0..2_000u64)
            .map(|i| {
                (
                    1_000 * (i / 4) + rng.gen_range(0..5_000u64),
                    rng.gen_range(0..2),
                )
            })
            .collect();
        differential(&pushes);
    }

    #[test]
    fn calendar_matches_heap_on_sparse_far_future_events() {
        // Sparse horizon: most laps are empty, exercising the direct-search
        // fallback and width re-derivation on resize.
        let mut rng = SmallRng::seed_from_u64(8);
        let pushes: Vec<(u64, usize)> = (0..500)
            .map(|_| (rng.gen_range(0..1_000_000_000_000u64), rng.gen_range(0..3)))
            .collect();
        differential(&pushes);
    }

    #[test]
    fn calendar_matches_heap_through_grow_and_shrink() {
        // Fill far past the grow threshold, then drain past the shrink
        // threshold, twice.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut pushes: Vec<(u64, usize)> = Vec::new();
        for round in 0..2u64 {
            let base = round * 10_000_000;
            pushes.extend((0..300u64).map(|i| (base + i * 7 + rng.gen_range(0..50u64), 0)));
            pushes.extend((0..290).map(|_| (base + 5_000_000, 2)));
        }
        differential(&pushes);
    }

    #[test]
    fn calendar_resizes_and_reports_geometry() {
        let mut cal = CalendarQueue::new();
        assert_eq!(cal.bucket_count(), MIN_BUCKETS);
        for seq in 0..200 {
            cal.push(timer(SimTime::from_ns(seq * 13), seq));
        }
        assert!(cal.bucket_count() > MIN_BUCKETS, "queue never grew");
        assert!(cal.bucket_width_ps() >= 1);
        while cal.pop().is_some() {}
        assert_eq!(cal.bucket_count(), MIN_BUCKETS, "queue never shrank back");
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn next_at_matches_pop_without_consuming() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            assert_eq!(s.next_at(), None);
            s.push(timer(SimTime::from_ns(40), 0));
            s.push(timer(SimTime::from_ns(15), 1));
            assert_eq!(s.next_at(), Some(SimTime::from_ns(15)));
            assert_eq!(s.len(), 2);
            // A smaller push must displace the cached minimum.
            s.push(timer(SimTime::from_ns(5), 2));
            assert_eq!(s.next_at(), Some(SimTime::from_ns(5)));
            assert_eq!(s.pop().map(|e| e.seq), Some(2));
        }
    }

    #[test]
    fn kind_parses_and_names_round_trip() {
        for kind in SchedulerKind::ALL {
            let parsed: SchedulerKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(
            "heap".parse::<SchedulerKind>(),
            Ok(SchedulerKind::BinaryHeap)
        );
        assert!("fifo".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::default(), SchedulerKind::BinaryHeap);
    }
}
