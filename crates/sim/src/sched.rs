//! Pluggable event schedulers: the pending-event set behind the kernel.
//!
//! The kernel pops events in strict `(time, seq)` order — time first, then
//! insertion sequence so equal-time events replay in schedule order. That
//! total order *is* the determinism contract: any two [`Scheduler`]
//! implementations must pop the exact same sequence for the exact same
//! pushes, which `tests/scheduler_equivalence.rs` and the tn-audit
//! divergence corpus pin bit-for-bit via trace digests.
//!
//! Three implementations ship:
//!
//! * [`BinaryHeapScheduler`] — the reference `O(log n)` min-heap. Default.
//! * [`CalendarQueue`] — Brown's calendar queue (CACM '88), `O(1)`
//!   amortized for the dense, near-future event horizons that link and
//!   switch latencies produce. Selected per scenario via
//!   [`SchedulerKind::CalendarQueue`].
//! * [`TimingWheel`] — a hierarchical timing wheel (Varghese & Lauck,
//!   SOSP '87): 64-slot levels at 6 bits per level, nanosecond ticks at
//!   level 0. Near events pay an array index; far events park in coarse
//!   upper levels and cascade down only when the cursor reaches them.
//!   Selected via [`SchedulerKind::TimingWheel`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::context::TimerToken;
use crate::frame::Frame;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;

/// What a queued event does when it fires.
pub(crate) enum EventKind {
    /// Deliver `frame` to `(node, port)`.
    Frame {
        node: NodeId,
        port: PortId,
        frame: Frame,
    },
    /// Fire `token` on `node`.
    Timer { node: NodeId, token: TimerToken },
}

/// One pending event. Ordered by `(at, seq)`; `seq` is the kernel's global
/// insertion counter, so ordering is total and deterministic.
///
/// Public so [`Scheduler`] is nameable outside the crate, but fields and
/// construction are kernel-internal.
pub struct QueuedEvent {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl QueuedEvent {
    /// `(time, seq)` sort key.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }

    /// Node the event will dispatch to (flight-recorder attribution).
    #[inline]
    pub(crate) fn target_node(&self) -> NodeId {
        match &self.kind {
            EventKind::Frame { node, .. } | EventKind::Timer { node, .. } => *node,
        }
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    /// Reverse ordering so a `BinaryHeap` becomes a min-heap on
    /// `(time, seq)`; the `seq` tiebreak keeps equal-time events in
    /// schedule order, which is what makes runs reproducible.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Structural statistics a scheduler exposes to the kernel profiler:
/// plain counters, `Copy`, cheap enough to snapshot per event when the
/// flight recorder is watching for rebuilds and cascades.
///
/// Implementations fill only the fields that apply to them (the heap has
/// none); everything defaults to zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Calendar-queue bucket-array rebuilds since construction.
    pub rebuilds: u64,
    /// Timing-wheel upper-level cascades since construction.
    pub cascades: u64,
    /// Calendar-queue bucket count right now.
    pub bucket_count: u64,
    /// Calendar-queue bucket width right now, picoseconds.
    pub bucket_width_ps: u64,
    /// Timing-wheel occupied slots per level right now.
    pub wheel_occupancy: [u64; WHEEL_LEVELS],
}

/// The pending-event set. Implementations must pop in ascending
/// `(time, seq)` order — the same total order as the reference
/// [`BinaryHeapScheduler`] — or trace digests diverge and the
/// equivalence suite fails. `Send` is a supertrait so per-shard
/// schedulers can live on per-shard threads.
pub trait Scheduler: Send {
    /// Insert an event.
    fn push(&mut self, ev: QueuedEvent);
    /// Remove and return the `(time, seq)`-minimal event.
    fn pop(&mut self) -> Option<QueuedEvent>;
    /// Timestamp of the event [`Scheduler::pop`] would return, without
    /// removing it. Takes `&mut self` so implementations may cache the
    /// search.
    fn next_at(&mut self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Short implementation name for diagnostics and bench output.
    fn name(&self) -> &'static str;
    /// Structural counters for the profiler. Pure observation: calling
    /// this must not change future pop order.
    fn stats(&self) -> SchedStats {
        SchedStats::default()
    }
}

/// Which [`Scheduler`] a simulator uses. Selectable per scenario via
/// `ScenarioConfig::scheduler` in `tn-core`; the default stays the
/// reference heap so existing runs are untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Reference `O(log n)` binary min-heap.
    #[default]
    BinaryHeap,
    /// Brown's `O(1)`-amortized calendar queue.
    CalendarQueue,
    /// Hierarchical timing wheel (64-slot levels, nanosecond ticks).
    TimingWheel,
}

impl SchedulerKind {
    /// Every kind, for differential test sweeps.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::BinaryHeap,
        SchedulerKind::CalendarQueue,
        SchedulerKind::TimingWheel,
    ];

    /// Construct the scheduler this kind names.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::BinaryHeap => Box::new(BinaryHeapScheduler::new()),
            SchedulerKind::CalendarQueue => Box::new(CalendarQueue::new()),
            SchedulerKind::TimingWheel => Box::new(TimingWheel::new()),
        }
    }

    /// Stable name, matching [`Scheduler::name`].
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::BinaryHeap => "binary-heap",
            SchedulerKind::CalendarQueue => "calendar-queue",
            SchedulerKind::TimingWheel => "timing-wheel",
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "binary-heap" | "heap" => Ok(SchedulerKind::BinaryHeap),
            "calendar-queue" | "calendar" => Ok(SchedulerKind::CalendarQueue),
            "timing-wheel" | "wheel" => Ok(SchedulerKind::TimingWheel),
            other => Err(format!(
                "unknown scheduler {other:?} (expected binary-heap, calendar-queue, or timing-wheel)"
            )),
        }
    }
}

/// Reference scheduler: `std::collections::BinaryHeap` turned into a
/// min-heap by [`QueuedEvent`]'s reversed `Ord`.
#[derive(Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<QueuedEvent>,
}

impl BinaryHeapScheduler {
    /// An empty heap.
    pub fn new() -> Self {
        BinaryHeapScheduler::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn push(&mut self, ev: QueuedEvent) {
        self.heap.push(ev);
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop()
    }

    fn next_at(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "binary-heap"
    }
}

/// Smallest bucket count; the queue starts here and never shrinks below.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count; growth stops here regardless of population.
const MAX_BUCKETS: usize = 1 << 16;
/// Initial bucket-width shift (2^10 ps ≈ 1 ns) until the first resize
/// measures the real inter-event gap. Widths are always powers of two so
/// the day of a timestamp is a shift, not a division — `day_of` runs on
/// every push, pop, and scan probe.
const INITIAL_WIDTH_SHIFT: u32 = 10;

/// Brown's calendar queue: a bucket ring indexed by `time / width`, like a
/// desk calendar — one bucket per "day", one lap of the ring per "year".
///
/// Each bucket is kept sorted ascending by `(time, seq)`, so a bucket's
/// front is its minimum and `pop` is a front removal. The scan from the
/// current day therefore probes one front per bucket: the first bucket
/// whose front belongs to the day being visited holds the global minimum
/// (later "years" hash to the same bucket but sort behind the current
/// day). If a whole year of days is empty the queue falls back to a
/// direct minimum over bucket fronts, which also fast-forwards the
/// calendar. Resizes re-derive the bucket width from the median non-zero
/// gap between pending events — the mean is useless here because this
/// kernel's workloads mix equal-time cohorts with millisecond dead zones.
/// All decisions are pure functions of the queue contents, so the
/// schedule stays deterministic.
pub struct CalendarQueue {
    /// `buckets.len()` is a power of two; `mask = len - 1`. Each bucket is
    /// sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<QueuedEvent>>,
    mask: usize,
    /// Bucket width is `1 << shift` picoseconds. An event at `t` lives in
    /// bucket `(t >> shift) & mask` — `t >> shift` is its absolute "day".
    shift: u32,
    /// Day of the most recent pop; scans resume here.
    cursor: u64,
    len: usize,
    /// Bucket whose front is the global minimum, cached between
    /// [`Scheduler::next_at`] and [`Scheduler::pop`].
    cached_min: Option<usize>,
    /// Searches since the last rebuild that fell off the calendar into
    /// the direct-minimum fallback. A high count means the width no
    /// longer matches the event horizon (it is only re-derived on
    /// resize), so [`Scheduler::pop`] forces a re-derivation. Purely a
    /// function of the push/pop history, so determinism is preserved.
    fallbacks: u32,
    /// Shift-based exponential average of the push horizon (how far
    /// ahead of the cursor events land, in picoseconds). Cheap to keep
    /// per push; drives the width auto-tune below.
    horizon_ema_ps: u64,
    /// Pushes since the width was last checked against the horizon.
    pushes_since_tune: u32,
    /// Rebuilds since construction, for [`SchedStats`].
    rebuilds: u64,
}

/// Pushes between width auto-tune checks. Checking is cheap but a
/// triggered rebuild is not, so it is rate-limited; amortized over this
/// many pushes the tune costs nothing.
const TUNE_INTERVAL: u32 = 4096;

impl Default for CalendarQueue {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty calendar with [`MIN_BUCKETS`] days of [`INITIAL_WIDTH_PS`].
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS - 1,
            shift: INITIAL_WIDTH_SHIFT,
            cursor: 0,
            len: 0,
            cached_min: None,
            fallbacks: 0,
            horizon_ema_ps: 0,
            pushes_since_tune: 0,
            rebuilds: 0,
        }
    }

    /// Current bucket count (test / diagnostic visibility).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in picoseconds (test / diagnostic visibility).
    pub fn bucket_width_ps(&self) -> u64 {
        1u64 << self.shift
    }

    #[inline]
    fn day_of(&self, at: SimTime) -> u64 {
        at.as_ps() >> self.shift
    }

    /// Locate the bucket whose front is the `(time, seq)`-minimal event:
    /// one lap of the calendar from the cursor peeking only at fronts,
    /// then a direct minimum over fronts when the year ahead is empty.
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        for i in 0..self.buckets.len() as u64 {
            let day = self.cursor.wrapping_add(i);
            let b = (day as usize) & self.mask;
            if let Some(front) = self.buckets[b].front() {
                // The front is the bucket minimum; it belongs to `day`
                // exactly when this bucket has anything this "year".
                if self.day_of(front.at) == day {
                    return Some(b);
                }
            }
        }
        self.fallbacks += 1;
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                let key = front.key();
                if best.is_none_or(|(_, k)| key < k) {
                    best = Some((b, key));
                }
            }
        }
        best.map(|(b, _)| b)
    }

    /// Re-bucket every event into `new_nb` buckets, re-deriving the width
    /// as a power of two near the *smaller* of ≈3× the median non-zero
    /// inter-event gap and ≈3× the mean gap (`span / len`). The median
    /// keeps equal-time cohorts — which drag the mean to zero — from
    /// collapsing the width; the mean keeps dense horizons (many live
    /// timers in a short span) from over-filling each day, which would
    /// turn the sorted-bucket inserts into large memmoves. Deterministic:
    /// inputs are the queue contents only.
    fn rebuild(&mut self, new_nb: usize) {
        self.rebuild_with(new_nb, None);
    }

    /// [`CalendarQueue::rebuild`] with an optionally imposed width shift:
    /// the horizon auto-tune passes the shift its EMA implies (the queue
    /// may be near-empty at tune time, leaving nothing to re-derive
    /// from); occupancy resizes pass `None` and re-derive from contents.
    fn rebuild_with(&mut self, new_nb: usize, forced_shift: Option<u32>) {
        self.rebuilds += 1;
        let new_nb = new_nb.clamp(MIN_BUCKETS, MAX_BUCKETS);
        let cursor_ps = self.cursor << self.shift;
        // audit:allow(hotpath-alloc): rebuild is an occupancy-triggered resize, amortized across many pushes
        let mut evs: Vec<QueuedEvent> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            evs.extend(bucket.drain(..));
        }
        evs.sort_unstable_by_key(QueuedEvent::key);
        if let Some(shift) = forced_shift {
            self.shift = shift;
        } else if evs.len() >= 2 {
            let mut gaps: Vec<u64> = evs
                .windows(2)
                .map(|w| w[1].at.as_ps() - w[0].at.as_ps())
                .filter(|&g| g > 0)
                .collect();
            if !gaps.is_empty() {
                gaps.sort_unstable();
                let median = gaps[gaps.len() / 2];
                let span = evs[evs.len() - 1].at.as_ps() - evs[0].at.as_ps();
                let mean = span / evs.len() as u64;
                let target = median.min(mean.max(1)).saturating_mul(3).max(1);
                self.shift = 63 - target.next_power_of_two().leading_zeros();
            }
        }
        // Rescale the cursor to the (possibly new) width; the first
        // pending event pins it exactly when there is one.
        self.cursor = cursor_ps >> self.shift;
        if let Some(first) = evs.first() {
            self.cursor = self.day_of(first.at);
        }
        self.buckets = (0..new_nb).map(|_| VecDeque::new()).collect();
        self.mask = new_nb - 1;
        for ev in evs {
            // Ascending feed: appending keeps every bucket sorted.
            let b = (self.day_of(ev.at) as usize) & self.mask;
            self.buckets[b].push_back(ev);
        }
        self.cached_min = None;
        self.fallbacks = 0;
    }
}

impl Scheduler for CalendarQueue {
    fn push(&mut self, ev: QueuedEvent) {
        // Width auto-tune: track how far ahead of the calendar events
        // land (EMA over pushes, 1/16 gain) and, every TUNE_INTERVAL
        // pushes, compare the width that horizon implies (≈3× the mean
        // gap, matching `rebuild`'s derivation) against the current one.
        // More than two octaves of drift forces a same-size rebuild,
        // which re-derives the width from the live contents. Inputs are
        // the push history only, so the schedule stays deterministic.
        let horizon = ev.at.as_ps().saturating_sub(self.cursor << self.shift);
        self.horizon_ema_ps = self.horizon_ema_ps - self.horizon_ema_ps / 16 + horizon / 16;
        self.pushes_since_tune += 1;
        if self.pushes_since_tune >= TUNE_INTERVAL {
            self.pushes_since_tune = 0;
            let target = (self.horizon_ema_ps / self.len.max(1) as u64)
                .saturating_mul(3)
                .max(1);
            let ideal = 63 - target.next_power_of_two().leading_zeros();
            if ideal.abs_diff(self.shift) > 2 {
                self.rebuild_with(self.buckets.len(), Some(ideal));
            }
        }
        if self.len + 1 > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
        let day = self.day_of(ev.at);
        if day < self.cursor {
            // The kernel never schedules into the past, but a standalone
            // scheduler must still honor it: rewind so the scan sees it.
            self.cursor = day;
        }
        let b = (day as usize) & self.mask;
        let key = ev.key();
        let bucket = &mut self.buckets[b];
        // Binary search for the sorted slot. The common shapes are cheap:
        // an equal-time cohort appends at the back, and VecDeque::insert
        // rotates whichever side is shorter.
        let (mut lo, mut hi) = (0usize, bucket.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if bucket[mid].key() < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bucket.insert(lo, ev);
        self.len += 1;
        if let Some(cb) = self.cached_min {
            // A key below the cached global minimum is the new minimum,
            // and is therefore at the front of its own bucket.
            // audit:allow(hotpath-unwrap): cached_min always points at a non-empty bucket; it is cleared when its bucket drains
            if key < self.buckets[cb].front().expect("cached bucket empty").key() {
                self.cached_min = Some(b);
            }
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        let b = match self.cached_min.take() {
            Some(b) => b,
            None => self.find_min()?,
        };
        let ev = self.buckets[b].pop_front()?;
        self.len -= 1;
        self.cursor = self.day_of(ev.at);
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        } else if self.fallbacks >= 64 {
            // The width has drifted away from the live horizon; same
            // bucket count, fresh width.
            self.rebuild(self.buckets.len());
        }
        Some(ev)
    }

    fn next_at(&mut self) -> Option<SimTime> {
        if self.cached_min.is_none() {
            self.cached_min = self.find_min();
        }
        self.cached_min
            .and_then(|b| self.buckets[b].front())
            .map(|ev| ev.at)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "calendar-queue"
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            rebuilds: self.rebuilds,
            bucket_count: self.buckets.len() as u64,
            bucket_width_ps: self.bucket_width_ps(),
            ..SchedStats::default()
        }
    }
}

/// Slots per wheel level; `2^WHEEL_GROUP_BITS`.
const WHEEL_SLOTS: usize = 64;
/// Bits of the tick consumed per level.
const WHEEL_GROUP_BITS: u32 = 6;
/// Level-0 tick granularity: `2^10` ps ≈ 1 ns, matching the sub-ns link
/// latencies the kernel schedules at. Coarser ticks would merge distinct
/// deadlines into one slot; finer ones waste levels on empty space.
const WHEEL_TICK_SHIFT: u32 = 10;
/// Levels needed to cover the full 54 usable tick bits (`64 - 10`), six
/// bits at a time: no slot index ever wraps, so upper-level positions
/// are absolute and the cursor scan never revisits a lap.
const WHEEL_LEVELS: usize = 9;

/// Hierarchical timing wheel (Varghese & Lauck, SOSP '87).
///
/// Time is quantized into ~1 ns ticks. Level `L` slices bits
/// `[6L, 6L+6)` of the tick: an event lives at the *highest* level where
/// its tick still differs from the cursor's, so the 64 level-0 slots
/// hold the next 64 ticks in exact order and each coarser level holds
/// exponentially wider "someday" bands. Popping scans at most 64
/// level-0 fronts; when the current 64-tick window drains, the nearest
/// occupied upper slot *cascades* — its events are re-placed relative to
/// the advanced cursor, landing one level (or more) lower. Each event
/// cascades at most [`WHEEL_LEVELS`] times, so the amortized cost per
/// event is O(levels) with no comparisons against unrelated events —
/// the win over the heap's O(log n) on timer-churn workloads.
///
/// Level-0 slots are kept sorted by `(time, seq)` (events sharing a
/// 1 ns tick); upper slots are append-only and sort implicitly by
/// re-placement during the cascade. All decisions are pure functions of
/// the push/pop history, so any run replays bit-identically.
pub struct TimingWheel {
    /// Slot `(L, s)` lives at `slots[L * 64 + s]`, one contiguous slab
    /// for locality: level 0 sorted ascending by key, upper levels in
    /// arrival order.
    slots: Vec<VecDeque<QueuedEvent>>,
    /// Occupancy bitmask per level (bit `s` set iff slot `(L, s)` holds
    /// events): the min scan and the cascade search are single
    /// `trailing_zeros` instructions instead of 64-slot walks.
    occ: [u64; WHEEL_LEVELS],
    /// Tick of the most recent pop (or of the earliest push since
    /// empty): the wheel's notion of "now".
    cursor: u64,
    len: usize,
    /// Level-0 slot holding the global minimum, cached between
    /// [`Scheduler::next_at`] and [`Scheduler::pop`].
    cached_min: Option<usize>,
    /// Cascades since construction, for [`SchedStats`].
    cascades: u64,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl TimingWheel {
    /// An empty wheel with its cursor at tick zero.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| VecDeque::new())
                .collect(),
            occ: [0; WHEEL_LEVELS],
            cursor: 0,
            len: 0,
            cached_min: None,
            cascades: 0,
        }
    }

    #[inline]
    fn tick_of(at: SimTime) -> u64 {
        at.as_ps() >> WHEEL_TICK_SHIFT
    }

    /// Highest 6-bit group where `tick` differs from the cursor — the
    /// level the event belongs to *right now*.
    #[inline]
    fn level_of(&self, tick: u64) -> usize {
        let diff = tick ^ self.cursor;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / WHEEL_GROUP_BITS) as usize
        }
    }

    #[inline]
    fn slot_of(tick: u64, level: usize) -> usize {
        ((tick >> (WHEEL_GROUP_BITS * level as u32)) as usize) & (WHEEL_SLOTS - 1)
    }

    /// File `ev` at its level/slot relative to the current cursor.
    fn place(&mut self, ev: QueuedEvent) {
        let tick = Self::tick_of(ev.at);
        debug_assert!(tick >= self.cursor, "place below cursor");
        let level = self.level_of(tick);
        let slot = Self::slot_of(tick, level);
        self.occ[level] |= 1 << slot;
        let bucket = &mut self.slots[(level << WHEEL_GROUP_BITS) | slot];
        if level == 0 {
            // A level-0 slot is a single tick; order the (rare) sub-tick
            // ties by `(time, seq)`. Equal-time cohorts append.
            let key = ev.key();
            let (mut lo, mut hi) = (0usize, bucket.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if bucket[mid].key() < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            bucket.insert(lo, ev);
        } else {
            // Upper slots sort lazily, at cascade time.
            bucket.push_back(ev);
        }
    }

    /// Move the cursor back to `tick` and re-place everything. The
    /// kernel never schedules into the past, so this is a correctness
    /// backstop for standalone users, not a hot path.
    fn rewind(&mut self, tick: u64) {
        // audit:allow(hotpath-alloc): rewind only fires on into-the-past pushes, which the kernel never issues
        let mut evs: Vec<QueuedEvent> = Vec::with_capacity(self.len);
        for slot in &mut self.slots {
            evs.extend(slot.drain(..));
        }
        self.occ = [0; WHEEL_LEVELS];
        self.cursor = tick;
        for ev in evs {
            self.place(ev);
        }
        self.cached_min = None;
    }

    /// Drain the nearest occupied upper slot into the levels below,
    /// advancing the cursor to that slot's base tick. Returns false when
    /// every upper level is empty. Lower levels are exhausted whenever
    /// this runs, so draining the lowest, nearest occupied slot is
    /// always the correct next window.
    fn cascade(&mut self) -> bool {
        for level in 1..WHEEL_LEVELS {
            if self.occ[level] == 0 {
                continue;
            }
            let shift = WHEEL_GROUP_BITS * level as u32;
            let cur_idx = ((self.cursor >> shift) as usize) & (WHEEL_SLOTS - 1);
            // Slot `cur_idx` is empty by construction (its events differ
            // from the cursor at this level, so they'd be stored lower),
            // and earlier slots would be in the past — every set bit is
            // strictly after `cur_idx`, so the lowest one is the target.
            debug_assert_eq!(
                self.occ[level] & ((1u64 << cur_idx) | ((1u64 << cur_idx) - 1)),
                0,
                "occupied slot at or before the cursor"
            );
            let s = self.occ[level].trailing_zeros() as usize;
            self.occ[level] &= !(1u64 << s);
            self.cascades += 1;
            // Take the deque out, re-place its events, hand the
            // (now empty) buffer back: no allocation on the cascade.
            let mut drained = std::mem::take(&mut self.slots[(level << WHEEL_GROUP_BITS) | s]);
            // Jump the cursor to the slot's earliest tick rather than the
            // slot's base: everything outside this slot is strictly
            // later, and the earliest drained event then re-files
            // directly into level 0 — one cascade per pop instead of one
            // per level.
            let min_tick = drained
                .iter()
                .map(|e| Self::tick_of(e.at))
                .min()
                // audit:allow(hotpath-unwrap): an occupancy bit is only set while its slot holds events
                .expect("occupied slot was empty");
            self.cursor = min_tick;
            for ev in drained.drain(..) {
                self.place(ev);
            }
            self.slots[(level << WHEEL_GROUP_BITS) | s] = drained;
            return true;
        }
        false
    }

    /// Level-0 slot of the `(time, seq)`-minimal event, cascading upper
    /// levels down as needed.
    fn find_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Within the current 64-tick window, slot index == tick
            // order, and every upper-level event is strictly later, so
            // the first occupied slot holds the global minimum. Slots
            // before the cursor are empty by invariant, so the lowest
            // set bit is it.
            if self.occ[0] != 0 {
                return Some(self.occ[0].trailing_zeros() as usize);
            }
            if !self.cascade() {
                debug_assert_eq!(self.len, 0, "events lost off the wheel");
                return None;
            }
        }
    }
}

impl Scheduler for TimingWheel {
    fn push(&mut self, ev: QueuedEvent) {
        let tick = Self::tick_of(ev.at);
        if self.len == 0 {
            // Empty wheel: snap the cursor to the event so long idle
            // gaps don't leave it parked in the distant past.
            self.cursor = tick;
        } else if tick < self.cursor {
            self.rewind(tick);
        }
        let key = ev.key();
        self.place(ev);
        self.len += 1;
        if let Some(s) = self.cached_min {
            // audit:allow(hotpath-unwrap): cached_min always points at a non-empty level-0 slot; it is cleared when that slot drains
            if key < self.slots[s].front().expect("cached slot empty").key() {
                self.cached_min = None;
            }
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        let s = match self.cached_min.take() {
            Some(s) => s,
            None => self.find_min()?,
        };
        let ev = self.slots[s].pop_front()?;
        self.len -= 1;
        self.cursor = Self::tick_of(ev.at);
        if self.slots[s].is_empty() {
            self.occ[0] &= !(1u64 << s);
        } else {
            // Same tick, later seq: still the global minimum.
            self.cached_min = Some(s);
        }
        Some(ev)
    }

    fn next_at(&mut self) -> Option<SimTime> {
        if self.cached_min.is_none() {
            self.cached_min = self.find_min();
        }
        self.cached_min
            .and_then(|s| self.slots[s].front())
            .map(|ev| ev.at)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "timing-wheel"
    }

    fn stats(&self) -> SchedStats {
        let mut s = SchedStats {
            cascades: self.cascades,
            ..SchedStats::default()
        };
        for (level, occ) in self.occ.iter().enumerate() {
            s.wheel_occupancy[level] = u64::from(occ.count_ones());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn timer(at: SimTime, seq: u64) -> QueuedEvent {
        QueuedEvent {
            at,
            seq,
            kind: EventKind::Timer {
                node: NodeId(0),
                token: TimerToken(0),
            },
        }
    }

    /// Feed the reference heap and every other scheduler the same pushes
    /// (interleaved with pops) and assert identical pop sequences.
    fn differential(pushes: &[(u64, usize)]) {
        for kind in SchedulerKind::ALL {
            if kind == SchedulerKind::BinaryHeap {
                continue;
            }
            let mut heap: Box<dyn Scheduler> = SchedulerKind::BinaryHeap.build();
            let mut other: Box<dyn Scheduler> = kind.build();
            for (seq, &(at_ps, pops)) in pushes.iter().enumerate() {
                let at = SimTime::from_ps(at_ps);
                heap.push(timer(at, seq as u64));
                other.push(timer(at, seq as u64));
                for _ in 0..pops {
                    assert_eq!(heap.next_at(), other.next_at(), "{}", kind.name());
                    let (h, c) = (heap.pop(), other.pop());
                    match (h, c) {
                        (None, None) => {}
                        (Some(h), Some(c)) => {
                            assert_eq!((h.at, h.seq), (c.at, c.seq), "{}", kind.name());
                        }
                        _ => panic!("{} disagreed on emptiness", kind.name()),
                    }
                }
            }
            while let Some(h) = heap.pop() {
                let c = other.pop().unwrap_or_else(|| {
                    panic!("{} drained early", kind.name());
                });
                assert_eq!((h.at, h.seq), (c.at, c.seq), "{}", kind.name());
            }
            assert!(other.pop().is_none());
            assert!(other.is_empty());
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            s.push(timer(SimTime::from_ns(30), 0));
            s.push(timer(SimTime::from_ns(10), 1));
            s.push(timer(SimTime::from_ns(10), 2));
            s.push(timer(SimTime::from_ns(20), 3));
            let order: Vec<(u64, u64)> = std::iter::from_fn(|| s.pop())
                .map(|e| (e.at.as_ps(), e.seq))
                .collect();
            assert_eq!(
                order,
                vec![(10_000, 1), (10_000, 2), (20_000, 3), (30_000, 0)],
                "{} broke (time, seq) order",
                kind.name()
            );
        }
    }

    #[test]
    fn equal_time_bursts_stay_in_schedule_order() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            for seq in 0..100 {
                s.push(timer(SimTime::from_us(1), seq));
            }
            let seqs: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|e| e.seq).collect();
            assert_eq!(seqs, (0..100).collect::<Vec<_>>(), "{}", kind.name());
        }
    }

    #[test]
    fn calendar_matches_heap_on_dense_near_future_events() {
        // The workload shape the calendar is built for: tight horizon,
        // lots of ties.
        let mut rng = SmallRng::seed_from_u64(7);
        let pushes: Vec<(u64, usize)> = (0..2_000u64)
            .map(|i| {
                (
                    1_000 * (i / 4) + rng.gen_range(0..5_000u64),
                    rng.gen_range(0..2),
                )
            })
            .collect();
        differential(&pushes);
    }

    #[test]
    fn calendar_matches_heap_on_sparse_far_future_events() {
        // Sparse horizon: most laps are empty, exercising the direct-search
        // fallback and width re-derivation on resize.
        let mut rng = SmallRng::seed_from_u64(8);
        let pushes: Vec<(u64, usize)> = (0..500)
            .map(|_| (rng.gen_range(0..1_000_000_000_000u64), rng.gen_range(0..3)))
            .collect();
        differential(&pushes);
    }

    #[test]
    fn calendar_matches_heap_through_grow_and_shrink() {
        // Fill far past the grow threshold, then drain past the shrink
        // threshold, twice.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut pushes: Vec<(u64, usize)> = Vec::new();
        for round in 0..2u64 {
            let base = round * 10_000_000;
            pushes.extend((0..300u64).map(|i| (base + i * 7 + rng.gen_range(0..50u64), 0)));
            pushes.extend((0..290).map(|_| (base + 5_000_000, 2)));
        }
        differential(&pushes);
    }

    #[test]
    fn calendar_resizes_and_reports_geometry() {
        let mut cal = CalendarQueue::new();
        assert_eq!(cal.bucket_count(), MIN_BUCKETS);
        for seq in 0..200 {
            cal.push(timer(SimTime::from_ns(seq * 13), seq));
        }
        assert!(cal.bucket_count() > MIN_BUCKETS, "queue never grew");
        assert!(cal.bucket_width_ps() >= 1);
        while cal.pop().is_some() {}
        assert_eq!(cal.bucket_count(), MIN_BUCKETS, "queue never shrank back");
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn wheel_cascades_across_levels() {
        // Deadlines spanning ns to tens of ms park events at several
        // wheel levels; draining in order exercises every cascade path.
        let mut wheel = TimingWheel::new();
        let spans_ps = [
            1_000u64,          // level 0: 1 ns
            50_000,            // level 0 window edge: 50 ns
            100_000,           // level 1: 100 ns
            7_000_000,         // level 2: 7 us
            300_000_000,       // level 3: 300 us
            20_000_000_000,    // level 4: 20 ms
            1_500_000_000_000, // level 6: 1.5 s
        ];
        let mut seq = 0u64;
        for &base in &spans_ps {
            for i in 0..8u64 {
                wheel.push(timer(SimTime::from_ps(base + i * 977), seq));
                seq += 1;
            }
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0usize;
        while let Some(ev) = wheel.pop() {
            assert!(ev.key() >= last, "wheel popped out of order");
            last = ev.key();
            popped += 1;
        }
        assert_eq!(popped, spans_ps.len() * 8);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_rewinds_on_past_push() {
        // The kernel never schedules into the past, but the wheel must
        // still honor it standalone.
        let mut wheel = TimingWheel::new();
        wheel.push(timer(SimTime::from_us(10), 0));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(0));
        wheel.push(timer(SimTime::from_us(9), 1)); // behind the cursor
        wheel.push(timer(SimTime::from_us(11), 2));
        assert_eq!(wheel.next_at(), Some(SimTime::from_us(9)));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(1));
        assert_eq!(wheel.pop().map(|e| e.seq), Some(2));
    }

    #[test]
    fn calendar_width_autotune_follows_the_horizon() {
        // Start the calendar on a nanosecond-scale horizon, then feed a
        // millisecond-scale one: the EMA-triggered rebuild must widen
        // the buckets without waiting for an occupancy resize.
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for i in 0..64u64 {
            cal.push(timer(SimTime::from_ns(i), seq));
            seq += 1;
        }
        for _ in 0..64 {
            cal.pop();
        }
        let narrow = cal.bucket_width_ps();
        for i in 0..2 * TUNE_INTERVAL as u64 {
            cal.push(timer(SimTime::from_us(10 + i * 500), seq));
            seq += 1;
            if !seq.is_multiple_of(3) {
                cal.pop();
            }
        }
        assert!(
            cal.bucket_width_ps() > narrow,
            "width never widened: {} -> {}",
            narrow,
            cal.bucket_width_ps()
        );
    }

    #[test]
    fn next_at_matches_pop_without_consuming() {
        for kind in SchedulerKind::ALL {
            let mut s = kind.build();
            assert_eq!(s.next_at(), None);
            s.push(timer(SimTime::from_ns(40), 0));
            s.push(timer(SimTime::from_ns(15), 1));
            assert_eq!(s.next_at(), Some(SimTime::from_ns(15)));
            assert_eq!(s.len(), 2);
            // A smaller push must displace the cached minimum.
            s.push(timer(SimTime::from_ns(5), 2));
            assert_eq!(s.next_at(), Some(SimTime::from_ns(5)));
            assert_eq!(s.pop().map(|e| e.seq), Some(2));
        }
    }

    #[test]
    fn stats_report_rebuilds_cascades_and_occupancy() {
        // The reference heap has no structure to report.
        let mut heap = BinaryHeapScheduler::new();
        heap.push(timer(SimTime::from_ns(1), 0));
        assert_eq!(heap.stats(), SchedStats::default());

        // Growing the calendar far enough forces at least one rebuild.
        let mut cal = CalendarQueue::new();
        assert_eq!(cal.stats().rebuilds, 0);
        for seq in 0..200 {
            cal.push(timer(SimTime::from_ns(seq * 13), seq));
        }
        let cs = cal.stats();
        assert!(cs.rebuilds > 0, "grow never rebuilt");
        assert_eq!(cs.bucket_count, cal.bucket_count() as u64);
        assert_eq!(cs.bucket_width_ps, cal.bucket_width_ps());
        assert_eq!(cs.cascades, 0);

        // Far-future events park in upper wheel levels, then cascade
        // down when drained.
        let mut wheel = TimingWheel::new();
        wheel.push(timer(SimTime::from_ps(1_000), 0));
        wheel.push(timer(SimTime::from_us(7), 1));
        wheel.push(timer(SimTime::from_ms(20), 2));
        let ws = wheel.stats();
        assert_eq!(ws.cascades, 0);
        assert_eq!(ws.wheel_occupancy.iter().sum::<u64>(), 3);
        assert!(
            ws.wheel_occupancy[1..].iter().sum::<u64>() >= 2,
            "far events should park above level 0: {:?}",
            ws.wheel_occupancy
        );
        while wheel.pop().is_some() {}
        assert!(wheel.stats().cascades > 0, "drain never cascaded");
        assert_eq!(wheel.stats().wheel_occupancy, [0; WHEEL_LEVELS]);
    }

    #[test]
    fn kind_parses_and_names_round_trip() {
        for kind in SchedulerKind::ALL {
            let parsed: SchedulerKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(
            "heap".parse::<SchedulerKind>(),
            Ok(SchedulerKind::BinaryHeap)
        );
        assert!("fifo".parse::<SchedulerKind>().is_err());
        assert_eq!(SchedulerKind::default(), SchedulerKind::BinaryHeap);
    }
}
