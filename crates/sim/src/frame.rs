//! The unit of data exchanged between nodes.

use crate::time::SimTime;

/// Identity of a frame, stable across hops and multicast replication.
///
/// Replicas made by switches keep the original `FrameId`, which is what lets
/// capture taps correlate a frame observed at different points in the
/// network and compute per-hop latency — exactly how trading firms measure
/// with timestamped taps (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// Out-of-band metadata carried with a frame.
///
/// None of this exists on the wire; it models the knowledge an observer
/// with a perfect capture fabric would have, and is used exclusively for
/// measurement and assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Application-level tag (e.g. market-data event sequence, order id).
    pub tag: u64,
    /// Simulation time of the application-level event this frame carries
    /// (for market data: when the matching engine produced the update).
    /// Zero when unset.
    pub event_time: SimTime,
    /// Per-hop latency provenance, accumulated by the kernel when
    /// [`crate::Simulator::set_provenance`] is on. Boxed so the disabled
    /// (`None`) case costs one pointer; middleboxes that copy metadata
    /// onto rewritten frames carry the journey forward with it.
    pub provenance: Option<Box<tn_obs::Provenance>>,
}

/// A frame in flight: owned bytes plus measurement metadata.
///
/// Wire-format crates parse and build `bytes` with zero-copy views; the
/// kernel and devices treat it as opaque payload of length `len()`.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The on-the-wire bytes (for Ethernet models: the full L2 frame,
    /// excluding preamble and FCS — lengths match Table 1's convention of
    /// counting Ethernet + IP + UDP headers).
    pub bytes: Vec<u8>,
    /// Stable identity across hops and replication.
    pub id: FrameId,
    /// Time the frame was first created (first transmission onto any wire).
    pub born: SimTime,
    /// Measurement metadata.
    pub meta: FrameMeta,
}

impl Frame {
    /// Length in bytes, as counted on the wire.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the payload is empty (never the case for valid frames; kept
    /// for API completeness and clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Replace the payload bytes, keeping identity and metadata. Used by
    /// middleboxes that rewrite frames (normalizers, FPGA filters) when the
    /// rewritten frame should still be correlated with its input.
    pub fn with_bytes(mut self, bytes: Vec<u8>) -> Frame {
        self.bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_basics() {
        let f = Frame {
            bytes: vec![1, 2, 3],
            id: FrameId(7),
            born: SimTime::from_ns(5),
            meta: FrameMeta::default(),
        };
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        let g = f.clone().with_bytes(vec![9; 10]);
        assert_eq!(g.len(), 10);
        assert_eq!(g.id, FrameId(7));
        assert_eq!(g.born, SimTime::from_ns(5));
    }
}
