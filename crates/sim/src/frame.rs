//! The unit of data exchanged between nodes.

use crate::time::SimTime;

/// Identity of a frame, stable across hops and multicast replication.
///
/// Replicas made by switches keep the original `FrameId`, which is what lets
/// capture taps correlate a frame observed at different points in the
/// network and compute per-hop latency — exactly how trading firms measure
/// with timestamped taps (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// Out-of-band metadata carried with a frame.
///
/// None of this exists on the wire; it models the knowledge an observer
/// with a perfect capture fabric would have, and is used exclusively for
/// measurement and assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Application-level tag (e.g. market-data event sequence, order id).
    pub tag: u64,
    /// Simulation time of the application-level event this frame carries
    /// (for market data: when the matching engine produced the update).
    /// Zero when unset.
    pub event_time: SimTime,
    /// Per-hop latency provenance, accumulated by the kernel when
    /// [`crate::Simulator::set_provenance`] is on. Boxed so the disabled
    /// (`None`) case costs one pointer; middleboxes that copy metadata
    /// onto rewritten frames carry the journey forward with it.
    pub provenance: Option<Box<tn_obs::Provenance>>,
}

/// A frame in flight: owned bytes plus measurement metadata.
///
/// Wire-format crates parse and build `bytes` with zero-copy views; the
/// kernel and devices treat it as opaque payload of length `len()`.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The on-the-wire bytes (for Ethernet models: the full L2 frame,
    /// excluding preamble and FCS — lengths match Table 1's convention of
    /// counting Ethernet + IP + UDP headers).
    pub bytes: Vec<u8>,
    /// Stable identity across hops and replication.
    pub id: FrameId,
    /// Time the frame was first created (first transmission onto any wire).
    pub born: SimTime,
    /// Measurement metadata.
    pub meta: FrameMeta,
}

impl Frame {
    /// Length in bytes, as counted on the wire.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the payload is empty (never the case for valid frames; kept
    /// for API completeness and clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Replace the payload bytes, keeping identity and metadata. Used by
    /// middleboxes that rewrite frames (normalizers, FPGA filters) when the
    /// rewritten frame should still be correlated with its input.
    pub fn with_bytes(mut self, bytes: Vec<u8>) -> Frame {
        self.bytes = bytes;
        self
    }
}

/// In-flight construction of a new [`Frame`], started by
/// `Context::frame()` or `Simulator::frame()`.
///
/// The unified arena-first constructor API: the payload buffer is drawn
/// from the kernel's [`FrameArena`] the moment the builder is created (in
/// steady state a recycled buffer — no allocation), the combinators fill
/// it in place, and [`FrameBuilder::build`] stamps the frame with a fresh
/// monotonic [`FrameId`] and the current simulation time. Replaces the
/// four `new_frame` / `new_frame_with_meta` / `new_frame_zeroed` /
/// `new_frame_copied` variants.
///
/// ```
/// # use tn_sim::{Simulator, SimTime};
/// let mut sim = Simulator::new(1);
/// let f = sim
///     .frame()
///     .fill(|b| b.extend_from_slice(b"payload"))
///     .tag(42)
///     .build();
/// assert_eq!(f.bytes, b"payload");
/// assert_eq!(f.meta.tag, 42);
/// ```
pub struct FrameBuilder<'h> {
    bytes: Vec<u8>,
    meta: FrameMeta,
    born: SimTime,
    next_frame_id: &'h mut u64,
}

impl<'h> FrameBuilder<'h> {
    pub(crate) fn start(
        arena: &mut FrameArena,
        next_frame_id: &'h mut u64,
        born: SimTime,
    ) -> FrameBuilder<'h> {
        FrameBuilder {
            bytes: arena.take(),
            meta: FrameMeta::default(),
            born,
            next_frame_id,
        }
    }

    /// Extend the payload to `len` zero bytes (replaces
    /// `new_frame_zeroed`).
    pub fn zeroed(mut self, len: usize) -> Self {
        self.bytes.resize(len, 0);
        self
    }

    /// Append a copy of `src` to the payload (replaces
    /// `new_frame_copied`).
    pub fn copy_from(mut self, src: &[u8]) -> Self {
        self.bytes.extend_from_slice(src);
        self
    }

    /// Emit payload bytes directly into the arena buffer — the zero-copy
    /// companion of the wire crate's `emit_into` builders.
    pub fn fill(mut self, f: impl FnOnce(&mut Vec<u8>)) -> Self {
        f(&mut self.bytes);
        self
    }

    /// Replace the frame's metadata wholesale (replaces
    /// `new_frame_with_meta`).
    pub fn meta(mut self, meta: FrameMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Set the application-level tag.
    pub fn tag(mut self, tag: u64) -> Self {
        self.meta.tag = tag;
        self
    }

    /// Set the application-level event time.
    pub fn event_time(mut self, t: SimTime) -> Self {
        self.meta.event_time = t;
        self
    }

    /// Finish: assign the next monotonic [`FrameId`] and birth time.
    pub fn build(self) -> Frame {
        let id = FrameId(*self.next_frame_id);
        *self.next_frame_id += 1;
        Frame {
            bytes: self.bytes,
            id,
            born: self.born,
            meta: self.meta,
        }
    }
}

/// Counters describing how well buffer recycling is working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out that had to be freshly allocated.
    pub allocated: u64,
    /// Buffers handed out from the free slab (no allocation).
    pub reused: u64,
    /// Buffers returned to the slab.
    pub recycled: u64,
}

/// Upper bound on parked buffers before [`FrameArena::give`] starts
/// letting them drop; steady-state scenarios recycle far below this.
const DEFAULT_MAX_FREE: usize = 1024;

/// A slab of reusable payload buffers.
///
/// The kernel owns one and hands its buffers out through
/// `Simulator::new_frame_zeroed` / `Context::new_frame_zeroed` (and the
/// `_copied` variants); buffers come back via `recycle` or when the kernel
/// itself discards a frame (unrouted ports, link drops). This kills the
/// per-frame `Vec<u8>` allocation on the hot path that tn-audit's
/// `hotpath-alloc` lint flags — in steady state every frame reuses a
/// previously freed buffer.
///
/// The arena is pure side-state: it never touches the PRNG, the event
/// queue, or the trace, so pooled and non-pooled runs of the same scenario
/// produce identical digests (buffers are handed out logically empty, and
/// filled identically either way).
#[derive(Debug)]
pub struct FrameArena {
    free: Vec<Vec<u8>>,
    max_free: usize,
    stats: ArenaStats,
}

impl Default for FrameArena {
    fn default() -> Self {
        FrameArena::new()
    }
}

impl FrameArena {
    /// An empty arena parking at most [`DEFAULT_MAX_FREE`] buffers.
    pub fn new() -> Self {
        FrameArena::with_max_free(DEFAULT_MAX_FREE)
    }

    /// An empty arena parking at most `max_free` buffers.
    pub fn with_max_free(max_free: usize) -> Self {
        FrameArena {
            free: Vec::new(),
            max_free,
            stats: ArenaStats::default(),
        }
    }

    /// True when the next [`FrameArena::take`] will hand out a recycled
    /// buffer rather than allocate. Lets the flight recorder classify a
    /// frame build as reuse vs. allocation *before* the builder borrows
    /// the arena.
    #[inline]
    pub fn will_reuse(&self) -> bool {
        !self.free.is_empty()
    }

    /// Hand out an empty buffer: the most recently recycled one when the
    /// slab has any (its capacity is kept, its length is zero), a fresh
    /// allocation otherwise.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "recycled buffers are length-reset");
                self.stats.reused += 1;
                buf
            }
            None => {
                self.stats.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer to the slab. Its contents are cleared (length 0,
    /// capacity kept). Capacity-less buffers and overflow beyond the slab
    /// cap are dropped instead of parked.
    pub fn give(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < self.max_free {
            buf.clear();
            self.free.push(buf);
            self.stats.recycled += 1;
        }
    }

    /// Buffers currently parked in the slab.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Recycling counters so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Fold another arena into this one: counters are summed and parked
    /// buffers adopted up to this arena's cap. Used when a sharded run
    /// reassembles per-shard arenas into the unified kernel.
    pub(crate) fn absorb(&mut self, other: FrameArena) {
        self.stats.allocated += other.stats.allocated;
        self.stats.reused += other.stats.reused;
        self.stats.recycled += other.stats.recycled;
        for buf in other.free {
            if self.free.len() == self.max_free {
                break;
            }
            self.free.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_basics() {
        let f = Frame {
            bytes: vec![1, 2, 3],
            id: FrameId(7),
            born: SimTime::from_ns(5),
            meta: FrameMeta::default(),
        };
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        let g = f.clone().with_bytes(vec![9; 10]);
        assert_eq!(g.len(), 10);
        assert_eq!(g.id, FrameId(7));
        assert_eq!(g.born, SimTime::from_ns(5));
    }

    #[test]
    fn arena_reuses_buffers_and_resets_length() {
        let mut arena = FrameArena::new();
        let mut buf = arena.take();
        assert_eq!(arena.stats().allocated, 1);
        buf.extend_from_slice(&[1, 2, 3, 4]);
        let cap = buf.capacity();
        arena.give(buf);
        assert_eq!(arena.free_buffers(), 1);
        let again = arena.take();
        // Recycled: zero-length reset, capacity (and thus the allocation)
        // retained.
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
        let s = arena.stats();
        assert_eq!((s.allocated, s.reused, s.recycled), (1, 1, 1));
    }

    #[test]
    fn arena_drops_capacityless_and_overflow_buffers() {
        let mut arena = FrameArena::with_max_free(2);
        arena.give(Vec::new()); // no capacity: nothing worth parking
        assert_eq!(arena.free_buffers(), 0);
        for _ in 0..5 {
            arena.give(vec![0u8; 8]);
        }
        assert_eq!(arena.free_buffers(), 2, "slab cap respected");
        assert_eq!(arena.stats().recycled, 2);
    }
}
