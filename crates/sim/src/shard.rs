//! Sharded execution: conservative-lookahead parallel simulation.
//!
//! A [`ShardedSimulator`] partitions a built [`Simulator`] into K shards,
//! each owning a disjoint subset of the nodes (and every link whose
//! *source* it owns) with its own [`crate::Scheduler`] instance, and runs
//! them window-by-window under a conservative-lookahead protocol:
//!
//! 1. **Safe window.** Each round the leader computes one global horizon
//!    `H = min over shards j with pending events of (T_j + L_j)`, where
//!    `T_j` is shard j's next event time and `L_j` is the minimum
//!    [`crate::Link::min_delay`] over *cut* links leaving j (infinite when
//!    j has none). Every event strictly before `H` is causally closed:
//!    no cross-shard frame sent at or after `T_j` can arrive before
//!    `T_j + L_j ≥ H`. Shards process their sub-window independently —
//!    on scoped OS threads when enough work is pending, inline otherwise
//!    (both paths execute identical code, so the digest cannot depend on
//!    the policy).
//!
//! 2. **Provisional ids.** Shards assign event seqs and frame ids from a
//!    per-shard counter with bit 63 set (`(1 << 63) | shard << 48 | n`),
//!    so real (serial-order) ids — always below `2^63` — are
//!    distinguishable. Within one shard, provisional order equals the
//!    eventual real order.
//!
//! 3. **Window log merge.** Each shard logs one [`WEntry::Dispatch`]
//!    block per dispatched event (pushes, drops and cross-shard sends it
//!    caused, in exact apply order). The leader K-way merges the blocks
//!    by `(time, translated tag)` — exactly the serial kernel's pop
//!    order — assigning real seqs and frame ids from global counters at
//!    the positions the serial kernel would have, reconstructing the
//!    trace records in serial order, and routing cross-shard frames
//!    (with their ids rewritten to real ids) into the owning shard's
//!    queue. By induction over windows the merged record stream is
//!    bit-for-bit the serial one, so the trace digest is too.
//!
//! The protocol refuses topologies it cannot reproduce exactly: a cut
//! link with zero `min_delay` (no lookahead) or one whose outcome
//! consumes the kernel coin (per-shard PRNG streams differ from the
//! serial stream).

use std::collections::BTreeMap;

use crate::frame::{Frame, FrameId};
use crate::kernel::{SimStats, Simulator};
use crate::node::{NodeId, PortId};
use crate::sched::SchedulerKind;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceKind, TraceLog};
use tn_obs::{FlightRecorder, KernelProfiler};

/// High bit marking a shard-provisional id (event seq or frame id).
/// Real ids assigned by the serial kernel or the merge leader stay
/// below `2^63`.
const PROV_BIT: u64 = 1 << 63;
/// Low bits of a provisional id holding the shard-local counter.
const PROV_IDX_MASK: u64 = (1 << 48) - 1;

/// Base value for shard `s`'s provisional counters.
#[inline]
fn prov_base(shard: usize) -> u64 {
    PROV_BIT | ((shard as u64) << 48)
}

/// One entry in a shard's per-window reconciliation log. A window's log
/// is a sequence of blocks, each opened by a [`WEntry::Dispatch`] and
/// followed by what that dispatch caused, in exact apply order.
pub(crate) enum WEntry {
    /// An event was popped and dispatched. `tag` is its (possibly
    /// provisional) seq — the merge key. Timer dispatches use
    /// `port = u16::MAX`, `frame = u64::MAX` (the serial trace's timer
    /// sentinel).
    Dispatch {
        at: SimTime,
        tag: u64,
        node: NodeId,
        port: PortId,
        frame: u64,
        timer: bool,
    },
    /// The dispatch callback built `n` frames (ids from the shard's
    /// provisional counter); the leader assigns the matching real ids.
    Builds(u32),
    /// A shard-local event was pushed (timer, local delivery, or local
    /// link delivery); the shard consumed one provisional seq and the
    /// leader assigns the matching real one.
    LocalPush,
    /// A frame was dropped (unrouted port or link drop) — becomes a
    /// serial-order `Drop` trace record.
    DropRec {
        node: NodeId,
        port: PortId,
        frame: u64,
    },
    /// A frame left the shard: the leader assigns its real seq, rewrites
    /// its id, and routes it. The n-th `Remote` entry pairs with the
    /// n-th frame in [`WindowState::remote`].
    Remote {
        arrival: SimTime,
        dst: NodeId,
        dst_port: PortId,
    },
}

/// Per-shard window log: reconciliation entries plus the cross-shard
/// frames awaiting routing, buffers reused across windows.
pub(crate) struct WindowState {
    pub(crate) entries: Vec<WEntry>,
    pub(crate) remote: Vec<Frame>,
}

/// Why a topology cannot be sharded with a given assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A cut link has zero minimum delay: the conservative lookahead
    /// collapses and the protocol cannot make progress.
    ZeroDelayCut { src: NodeId, dst: NodeId },
    /// A cut-adjacent link consumes the kernel coin (e.g. i.i.d. loss):
    /// per-shard PRNG streams differ from the serial stream, so outcomes
    /// would diverge from the golden run.
    CoinLink { src: NodeId, dst: NodeId },
    /// The manual assignment does not cover the topology.
    BadAssignment(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroDelayCut { src, dst } => write!(
                f,
                "cross-shard link {} -> {} has zero min_delay; \
                 conservative lookahead needs every cut delay > 0",
                src.0, dst.0
            ),
            ShardError::CoinLink { src, dst } => write!(
                f,
                "link {} -> {} consumes the kernel coin (random loss); \
                 sharded runs cannot reproduce the serial PRNG stream",
                src.0, dst.0
            ),
            ShardError::BadAssignment(msg) => write!(f, "bad shard assignment: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A node-to-shard assignment, either computed (cut-minimizing) or
/// supplied manually.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `assignment[node] = shard` for every node id.
    pub assignment: Vec<u32>,
    /// Number of shards (max assignment + 1; empty shards allowed).
    pub shards: u16,
}

impl ShardPlan {
    /// A manual assignment. Validated against a concrete topology by
    /// [`ShardPlan::validate`].
    pub fn manual(assignment: Vec<u32>) -> ShardPlan {
        let shards = assignment.iter().max().map_or(1, |&m| m + 1) as u16;
        ShardPlan { assignment, shards }
    }

    /// Compute a cut-minimizing assignment into at most `k` shards:
    /// Kruskal-style ascending-delay edge contraction (heaviest-traffic,
    /// shortest-delay neighborhoods merge first; zero-delay and
    /// coin-consuming links merge unconditionally since they can never
    /// be cut), stopping when `k` components remain, then greedy
    /// packing of components into `k` bins by descending node count.
    /// Deterministic: inputs are the topology only.
    pub fn auto(sim: &Simulator, k: u16) -> ShardPlan {
        let n = sim.nodes.len();
        let k = usize::from(k.max(1)).min(n.max(1));
        // Undirected pairwise constraints: minimum cut delay per pair,
        // and whether the pair can be cut at all.
        let mut pair_delay: BTreeMap<(u32, u32), (SimTime, bool)> = BTreeMap::new();
        for (&(src, _port), &idx) in &sim.port_map {
            let Some(slot) = sim.links[idx].as_ref() else {
                continue;
            };
            let (a, b) = (src.0.min(slot.dst.0), src.0.max(slot.dst.0));
            if a == b {
                continue; // self-loop: never a cut
            }
            let d = slot.link.min_delay();
            let uncuttable = d == SimTime::ZERO || slot.link.uses_kernel_coin();
            let e = pair_delay.entry((a, b)).or_insert((d, false));
            if d < e.0 {
                e.0 = d;
            }
            e.1 |= uncuttable;
        }
        // Union-find over nodes.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut components = n;
        // Mandatory merges first: edges that can never be cut.
        for (&(a, b), &(_, uncuttable)) in &pair_delay {
            if uncuttable {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[rb as usize] = ra;
                    components -= 1;
                }
            }
        }
        // Ascending-delay contraction until k components remain. Equal
        // delays are processed in (delay, a, b) order — deterministic.
        let mut edges: Vec<(SimTime, u32, u32)> = pair_delay
            .iter()
            .filter(|(_, &(_, unc))| !unc)
            .map(|(&(a, b), &(d, _))| (d, a, b))
            .collect();
        edges.sort_unstable();
        for (_, a, b) in edges {
            if components <= k {
                break;
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[rb as usize] = ra;
                components -= 1;
            }
        }
        // Pack components into k bins: descending node count, each to
        // the least-loaded bin (ties to the lowest bin index).
        let mut members: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for v in 0..n as u32 {
            let r = find(&mut parent, v);
            members.entry(r).or_default().push(v);
        }
        let mut comps: Vec<Vec<u32>> = members.into_values().collect();
        comps.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        let bins = k.min(comps.len()).max(1);
        let mut load = vec![0usize; bins];
        let mut assignment = vec![0u32; n];
        for comp in comps {
            let mut best = 0;
            for (i, &l) in load.iter().enumerate() {
                if l < load[best] {
                    best = i;
                }
            }
            load[best] += comp.len();
            for v in comp {
                assignment[v as usize] = best as u32;
            }
        }
        ShardPlan {
            assignment,
            shards: bins as u16,
        }
    }

    /// Check this plan against a built topology: coverage, and the two
    /// protocol preconditions on every cut link (positive lookahead, no
    /// kernel-coin consumption).
    pub fn validate(&self, sim: &Simulator) -> Result<(), ShardError> {
        if self.assignment.len() != sim.nodes.len() {
            return Err(ShardError::BadAssignment(format!(
                "assignment covers {} nodes, topology has {}",
                self.assignment.len(),
                sim.nodes.len()
            )));
        }
        if self.shards == 0 {
            return Err(ShardError::BadAssignment("zero shards".into()));
        }
        for &s in &self.assignment {
            if s >= u32::from(self.shards) {
                return Err(ShardError::BadAssignment(format!(
                    "shard id {s} out of range (shards = {})",
                    self.shards
                )));
            }
        }
        for (&(src, _port), &idx) in &sim.port_map {
            let Some(slot) = sim.links[idx].as_ref() else {
                continue;
            };
            if self.assignment[src.0 as usize] == self.assignment[slot.dst.0 as usize] {
                continue;
            }
            if slot.link.uses_kernel_coin() {
                return Err(ShardError::CoinLink { src, dst: slot.dst });
            }
            if slot.link.min_delay() == SimTime::ZERO {
                return Err(ShardError::ZeroDelayCut { src, dst: slot.dst });
            }
        }
        Ok(())
    }
}

/// Aggregate statistics of a sharded run, for reports and benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Number of shards (including idle ones).
    pub shards: u16,
    /// Safe windows executed.
    pub windows: u64,
    /// Events dispatched per shard.
    pub events_per_shard: Vec<u64>,
    /// Nodes owned per shard.
    pub nodes_per_shard: Vec<u64>,
    /// Frames that crossed a shard boundary.
    pub cross_shard_frames: u64,
}

/// Pending-event threshold at or above which a window runs on scoped OS
/// threads rather than inline on the leader. Tiny windows are cheaper
/// to run inline than to fan out.
const DEFAULT_PARALLEL_THRESHOLD: usize = 256;

/// A [`Simulator`] split into per-shard kernels running under the
/// conservative-lookahead protocol. See the module docs for the
/// determinism argument.
pub struct ShardedSimulator {
    shards: Vec<Simulator>,
    assignment: Vec<u32>,
    /// Per shard: minimum `min_delay` over cut links leaving it
    /// (`None` = no cut links, i.e. infinite lookahead).
    out_look: Vec<Option<SimTime>>,
    /// Global (serial-order) event seq counter, continued from the
    /// parent kernel.
    seq: u64,
    /// Global (serial-order) frame id counter.
    next_frame_id: u64,
    /// The unified trace: the parent's log, fed reconstructed records in
    /// merged (serial) order.
    trace: TraceLog,
    /// The parent's pre-split flight ring (shard stamp 0).
    flight_base: FlightRecorder,
    /// The parent's pre-split profiler; per-shard profilers fold in at
    /// reassembly.
    profiler_base: KernelProfiler,
    metrics: tn_obs::Metrics,
    sched_kind: SchedulerKind,
    provenance: bool,
    stats_base: SimStats,
    now: SimTime,
    /// Per-shard translation: provisional seq index -> real seq.
    /// Persistent across windows (queued events outlive their window).
    seq_map: Vec<Vec<u64>>,
    /// Per-shard translation: provisional frame-id index -> real id.
    frame_map: Vec<Vec<u64>>,
    parallel_threshold: usize,
    windows: u64,
    cross_shard_frames: u64,
    /// Scratch buffer for the post-merge rekey pass (reused every
    /// window to keep the leader loop allocation-free).
    rekey_buf: Vec<crate::sched::QueuedEvent>,
}

impl ShardedSimulator {
    /// Split a built simulator into shards under `plan`. Fails (dropping
    /// the simulator) when the plan violates a protocol precondition;
    /// call [`ShardPlan::validate`] first to keep the simulator on error.
    pub fn split(mut sim: Simulator, plan: &ShardPlan) -> Result<ShardedSimulator, ShardError> {
        plan.validate(&sim)?;
        let k = usize::from(plan.shards);
        let n_nodes = sim.nodes.len();
        let n_links = sim.links.len();

        // Cross-shard lookahead per source shard.
        let mut out_look: Vec<Option<SimTime>> = vec![None; k];
        for (&(src, _port), &idx) in &sim.port_map {
            let Some(slot) = sim.links[idx].as_ref() else {
                continue;
            };
            let (ss, ds) = (
                plan.assignment[src.0 as usize] as usize,
                plan.assignment[slot.dst.0 as usize] as usize,
            );
            if ss != ds {
                let d = slot.link.min_delay();
                if out_look[ss].is_none_or(|cur| d < cur) {
                    out_look[ss] = Some(d);
                }
            }
        }

        let mut shards: Vec<Simulator> = (0..k)
            .map(|s| {
                // The shard seed is arbitrary: validation guarantees no
                // link consumes the kernel coin, and no workspace node
                // draws from the dispatch RNG, so the stream is dead.
                let mut sh = Simulator::with_scheduler(0x5eed ^ s as u64, sim.sched_kind);
                sh.now = sim.now;
                sh.seq = prov_base(s);
                sh.next_frame_id = prov_base(s);
                sh.nodes = (0..n_nodes).map(|_| None).collect();
                sh.links = (0..n_links).map(|_| None).collect();
                sh.provenance = sim.provenance;
                sh.metrics = sim.metrics.clone();
                if sim.flight.is_enabled() {
                    let mut ring = FlightRecorder::with_capacity(sim.flight.capacity());
                    ring.set_shard(s as u16 + 1);
                    sh.flight = ring;
                }
                if sim.profiler.is_enabled() {
                    let mut p = KernelProfiler::enabled();
                    p.set_shard(s as u16 + 1);
                    if let Some(last) = n_nodes.checked_sub(1) {
                        p.ensure_node(last as u32);
                    }
                    sh.profiler = p;
                }
                sh.wlog = Some(Box::new(WindowState {
                    entries: Vec::with_capacity(1024),
                    remote: Vec::with_capacity(64),
                }));
                sh
            })
            .collect();

        // Distribute nodes; links and their port-map entries follow the
        // *source* node (transmit runs on the source's shard).
        for (i, slot) in sim.nodes.iter_mut().enumerate() {
            let s = plan.assignment[i] as usize;
            shards[s].nodes[i] = slot.take();
        }
        for (&(src, port), &idx) in &sim.port_map {
            let s = plan.assignment[src.0 as usize] as usize;
            shards[s].links[idx] = sim.links[idx].take();
            shards[s].port_map.insert((src, port), idx);
        }
        // Pending events (pre-split injections carry real seqs) go to the
        // target node's shard. Direct queue pushes: their Schedule
        // telemetry was already recorded by the parent at injection.
        while let Some(ev) = sim.queue.pop() {
            let s = plan.assignment[ev.target_node().0 as usize] as usize;
            shards[s].queue.push(ev);
        }
        // The parent's arena seeds shard 0; reassembly absorbs them all.
        shards[0].arena = std::mem::take(&mut sim.arena);

        Ok(ShardedSimulator {
            assignment: plan.assignment.clone(),
            out_look,
            seq: sim.seq,
            next_frame_id: sim.next_frame_id,
            trace: std::mem::take(&mut sim.trace),
            flight_base: std::mem::replace(&mut sim.flight, FlightRecorder::disabled()),
            profiler_base: std::mem::replace(&mut sim.profiler, KernelProfiler::disabled()),
            metrics: sim.metrics.clone(),
            sched_kind: sim.sched_kind,
            provenance: sim.provenance,
            stats_base: sim.stats,
            now: sim.now,
            seq_map: (0..k).map(|_| Vec::new()).collect(),
            frame_map: (0..k).map(|_| Vec::new()).collect(),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            windows: 0,
            cross_shard_frames: 0,
            rekey_buf: Vec::new(),
            shards,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u16 {
        self.shards.len() as u16
    }

    /// Set the pending-event count at or above which a window fans out
    /// to scoped OS threads (`0` forces threads for every window; both
    /// paths run identical code, so the digest cannot move).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold;
    }

    /// Statistics of the run so far.
    pub fn run_stats(&self) -> ShardRunStats {
        let mut nodes_per_shard = vec![0u64; self.shards.len()];
        for &s in &self.assignment {
            nodes_per_shard[s as usize] += 1;
        }
        ShardRunStats {
            shards: self.shards.len() as u16,
            windows: self.windows,
            events_per_shard: self
                .shards
                .iter()
                .map(|sh| sh.stats().events_processed)
                .collect(),
            nodes_per_shard,
            cross_shard_frames: self.cross_shard_frames,
        }
    }

    /// Translate a possibly-provisional id through a shard's map. The
    /// timer sentinel passes through untouched.
    #[inline]
    fn translate(map: &[u64], raw: u64) -> u64 {
        if raw == u64::MAX || raw & PROV_BIT == 0 {
            return raw;
        }
        map[(raw & PROV_IDX_MASK) as usize]
    }

    /// Run every shard up to `deadline` (inclusive, matching
    /// [`Simulator::run_until`] semantics), window by window. Returns
    /// the number of events processed across all shards.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before: u64 = self.shards.iter().map(|s| s.stats().events_processed).sum();
        let bound_excl = SimTime::from_ps(deadline.as_ps().saturating_add(1));
        loop {
            // One global safe window: H = min(T_j + L_j) over shards
            // with pending events; shards with no events contribute
            // nothing (they cannot send anything).
            let mut min_t: Option<SimTime> = None;
            let mut horizon: Option<SimTime> = None;
            for s in 0..self.shards.len() {
                let Some(t) = self.shards[s].peek_next_at() else {
                    continue;
                };
                if min_t.is_none_or(|m| t < m) {
                    min_t = Some(t);
                }
                if let Some(look) = self.out_look[s] {
                    let h = SimTime::from_ps(t.as_ps().saturating_add(look.as_ps()));
                    if horizon.is_none_or(|cur| h < cur) {
                        horizon = Some(h);
                    }
                }
            }
            let Some(min_t) = min_t else {
                break; // every queue is empty
            };
            if min_t > deadline {
                break;
            }
            let h_excl = match horizon {
                Some(h) if h < bound_excl => h,
                _ => bound_excl,
            };
            debug_assert!(
                h_excl > min_t,
                "lookahead stalled: horizon {} <= next event {}",
                h_excl.as_ps(),
                min_t.as_ps()
            );
            self.windows += 1;
            let pending: usize = self.shards.iter().map(|s| s.pending_events()).sum();
            if pending >= self.parallel_threshold && self.shards.len() > 1 {
                std::thread::scope(|scope| {
                    for sh in self.shards.iter_mut() {
                        scope.spawn(move || {
                            sh.run_window(h_excl);
                        });
                    }
                });
            } else {
                for sh in self.shards.iter_mut() {
                    sh.run_window(h_excl);
                }
            }
            self.merge_window(h_excl);
        }
        // Serial run_until advances the clock to the deadline even when
        // idle; mirror that on every shard and the leader.
        for sh in self.shards.iter_mut() {
            if sh.now < deadline {
                sh.now = deadline;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        let after: u64 = self.shards.iter().map(|s| s.stats().events_processed).sum();
        after - before
    }

    /// K-way merge of the window logs: reconstruct the serial record
    /// stream, assign real ids, route cross-shard frames.
    fn merge_window(&mut self, h_excl: SimTime) {
        let k = self.shards.len();
        // Take the logs out so the shards stay mutably borrowable for
        // routing; buffers are handed back (cleared) at the end.
        let mut logs: Vec<WindowState> = Vec::with_capacity(k);
        for sh in self.shards.iter_mut() {
            match sh.wlog.as_mut() {
                Some(w) => logs.push(WindowState {
                    entries: std::mem::take(&mut w.entries),
                    remote: std::mem::take(&mut w.remote),
                }),
                None => unreachable!("shard lost its window log"),
            }
        }
        let mut cursor = vec![0usize; k];
        let mut remote: Vec<std::vec::IntoIter<Frame>> = Vec::with_capacity(k);
        let mut entries: Vec<Vec<WEntry>> = Vec::with_capacity(k);
        for w in logs {
            entries.push(w.entries);
            remote.push(w.remote.into_iter());
        }
        loop {
            // Head of each shard's log is always a Dispatch block (the
            // shard appends one before anything the dispatch causes);
            // pick the (at, translated tag) minimum — serial pop order.
            // A provisional head tag always translates: its LocalPush
            // was logged earlier in the *same* shard's log (intra-shard
            // push) or in a previous window, so its map entry exists.
            let mut best: Option<(SimTime, u64, usize)> = None;
            for s in 0..k {
                if let Some(WEntry::Dispatch { at, tag, .. }) = entries[s].get(cursor[s]) {
                    let real = Self::translate(&self.seq_map[s], *tag);
                    if best.is_none_or(|(ba, bt, _)| (*at, real) < (ba, bt)) {
                        best = Some((*at, real, s));
                    }
                }
            }
            let Some((_, _, s)) = best else {
                break;
            };
            // Consume the block: the Dispatch entry plus everything up
            // to the next Dispatch (or end of log).
            let Some(WEntry::Dispatch {
                at,
                node,
                port,
                frame,
                timer,
                ..
            }) = entries[s].get(cursor[s])
            else {
                unreachable!("merge cursor left a block boundary");
            };
            self.trace.record(TraceEvent {
                at: *at,
                node: *node,
                port: *port,
                frame: FrameId(Self::translate(&self.frame_map[s], *frame)),
                kind: if *timer {
                    TraceKind::Timer
                } else {
                    TraceKind::Deliver
                },
            });
            cursor[s] += 1;
            while let Some(e) = entries[s].get(cursor[s]) {
                match e {
                    WEntry::Dispatch { .. } => break,
                    WEntry::Builds(n) => {
                        for _ in 0..*n {
                            self.frame_map[s].push(self.next_frame_id);
                            self.next_frame_id += 1;
                        }
                    }
                    WEntry::LocalPush => {
                        self.seq_map[s].push(self.seq);
                        self.seq += 1;
                    }
                    WEntry::DropRec { node, port, frame } => {
                        self.trace.record(TraceEvent {
                            at: *at,
                            node: *node,
                            port: *port,
                            frame: FrameId(Self::translate(&self.frame_map[s], *frame)),
                            kind: TraceKind::Drop,
                        });
                    }
                    WEntry::Remote {
                        arrival,
                        dst,
                        dst_port,
                    } => {
                        // The serial kernel bumped its seq here too.
                        let real_seq = self.seq;
                        self.seq += 1;
                        self.cross_shard_frames += 1;
                        let Some(mut f) = remote[s].next() else {
                            unreachable!("Remote entry without a buffered frame");
                        };
                        f.id = FrameId(Self::translate(&self.frame_map[s], f.id.0));
                        if *arrival < h_excl {
                            // Cold path: a link advertised a min_delay
                            // larger than a delivery it produced. The
                            // shard kernels' Drop impls dump their
                            // flight rings during this unwind.
                            panic!(
                                "cross-shard delivery into the past: frame {} arrives at {} ps \
                                 inside the already-executed window (horizon {} ps); \
                                 a link's min_delay() overstates its guarantee",
                                f.id.0,
                                arrival.as_ps(),
                                h_excl.as_ps()
                            );
                        }
                        let ds = self.assignment[dst.0 as usize] as usize;
                        self.shards[ds].push_external(*arrival, real_seq, *dst, *dst_port, f);
                    }
                }
                cursor[s] += 1;
            }
        }
        // Hand the (cleared) buffers back for the next window.
        for (sh, mut ents) in self.shards.iter_mut().zip(entries) {
            if let Some(w) = sh.wlog.as_mut() {
                ents.clear();
                w.entries = ents;
            }
        }
        // Rekey pass: rewrite every pending provisional seq to the real
        // seq the merge just assigned. A provisional key compares as
        // "newest possible" inside the shard's scheduler, which breaks
        // same-timestamp ties the moment a cross-shard arrival (small
        // real seq) lands next to an older local push (huge provisional
        // seq) — the external event would jump the queue. After the
        // merge every pending push has its real seq in `seq_map`, so the
        // drain-translate-reinsert leaves each shard ordering ties in
        // exact serial push order. Single-shard runs have no external
        // arrivals and skip the pass.
        if k > 1 {
            for (s, sh) in self.shards.iter_mut().enumerate() {
                while let Some(mut ev) = sh.queue.pop() {
                    ev.seq = Self::translate(&self.seq_map[s], ev.seq);
                    self.rekey_buf.push(ev);
                }
                for ev in self.rekey_buf.drain(..) {
                    sh.queue.push(ev);
                }
            }
        }
    }

    /// Reassemble the shards into one serial [`Simulator`] carrying the
    /// unified trace, summed statistics, merged telemetry, and every
    /// node — so post-run harvesting (reports, downcasts) is identical
    /// to the serial path.
    pub fn finish(mut self) -> Simulator {
        let k = self.shards.len();
        let mut sim = Simulator::with_scheduler(0, self.sched_kind);
        sim.now = self.now;
        sim.seq = self.seq;
        sim.next_frame_id = self.next_frame_id;
        sim.provenance = self.provenance;
        sim.metrics = self.metrics.clone();
        sim.stats = self.stats_base;
        let n_nodes = self.shards.first().map_or(0, |s| s.nodes.len());
        let n_links = self.shards.first().map_or(0, |s| s.links.len());
        sim.nodes = (0..n_nodes).map(|_| None).collect();
        sim.links = (0..n_links).map(|_| None).collect();
        let mut rings: Vec<&FlightRecorder> = Vec::with_capacity(k + 1);
        for (s, sh) in self.shards.iter_mut().enumerate() {
            sh.wlog = None; // leave window mode before the final drain
            for (i, slot) in sh.nodes.iter_mut().enumerate() {
                if let Some(slot) = slot.take() {
                    sim.nodes[i] = Some(slot);
                }
            }
            for (i, slot) in sh.links.iter_mut().enumerate() {
                if let Some(slot) = slot.take() {
                    sim.links[i] = Some(slot);
                }
            }
            sim.port_map.append(&mut sh.port_map);
            // Residual events (beyond the deadline) rejoin the unified
            // queue with their ids translated to serial order.
            while let Some(mut ev) = sh.queue.pop() {
                ev.seq = Self::translate(&self.seq_map[s], ev.seq);
                if let crate::sched::EventKind::Frame { frame, .. } = &mut ev.kind {
                    frame.id = FrameId(Self::translate(&self.frame_map[s], frame.id.0));
                }
                sim.queue.push(ev);
            }
            let st = sh.stats();
            sim.stats.events_processed += st.events_processed;
            sim.stats.frames_delivered += st.frames_delivered;
            sim.stats.frames_dropped += st.frames_dropped;
            sim.stats.frames_unrouted += st.frames_unrouted;
            sim.stats.timers_fired += st.timers_fired;
            let arena = std::mem::take(&mut sh.arena);
            if s == 0 {
                sim.arena = arena;
            } else {
                sim.arena.absorb(arena);
            }
            self.profiler_base.merge_from(&sh.profiler);
        }
        sim.trace = self.trace;
        sim.profiler = self.profiler_base;
        if self.flight_base.is_enabled() {
            rings.push(&self.flight_base);
            for sh in &self.shards {
                rings.push(&sh.flight);
            }
            sim.flight = FlightRecorder::merged(&rings, self.flight_base.capacity());
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, TimerToken};
    use crate::link::{IdealLink, Link, LinkOutcome};
    use crate::node::Node;
    use crate::sched::SchedulerKind;

    /// Bounces frames back out the arrival port for a while.
    struct Bouncer {
        hops_left: u32,
    }

    impl Node for Bouncer {
        fn on_frame(&mut self, ctx: &mut Context<'_>, port: PortId, frame: Frame) {
            if self.hops_left > 0 {
                self.hops_left -= 1;
                ctx.send(port, frame);
            } else {
                ctx.recycle(frame);
            }
        }
    }

    /// Fires a periodic timer and sprays a frame each tick.
    struct Ticker {
        period: SimTime,
        ticks_left: u32,
    }

    impl Node for Ticker {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
            ctx.recycle(frame);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
            let f = ctx
                .frame()
                .zeroed(64)
                .tag(u64::from(self.ticks_left))
                .build();
            ctx.send(PortId(0), f);
            if self.ticks_left > 0 {
                self.ticks_left -= 1;
                ctx.set_timer(self.period, timer);
            }
        }
    }

    /// Four nodes in a line, mixed delays, cross traffic and timers.
    fn build_line(kind: SchedulerKind) -> Simulator {
        let mut sim = Simulator::with_scheduler(11, kind);
        let a = sim.add_node(
            "a",
            Ticker {
                period: SimTime::from_ns(70),
                ticks_left: 40,
            },
        );
        let b = sim.add_node("b", Bouncer { hops_left: 6 });
        let c = sim.add_node("c", Bouncer { hops_left: 9 });
        let d = sim.add_node(
            "d",
            Ticker {
                period: SimTime::from_ns(110),
                ticks_left: 25,
            },
        );
        let short = IdealLink::new(SimTime::from_ns(5));
        let long = IdealLink::new(SimTime::from_ns(400));
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(short.clone()));
        sim.install_link(b, PortId(0), a, PortId(0), Box::new(short.clone()));
        sim.install_link(b, PortId(1), c, PortId(1), Box::new(long.clone()));
        sim.install_link(c, PortId(1), b, PortId(1), Box::new(long));
        sim.install_link(c, PortId(0), d, PortId(0), Box::new(short.clone()));
        sim.install_link(d, PortId(0), c, PortId(0), Box::new(short));
        sim.schedule_timer(SimTime::ZERO, a, TimerToken(1));
        sim.schedule_timer(SimTime::from_ns(33), d, TimerToken(2));
        sim
    }

    fn serial_signature(kind: SchedulerKind, deadline: SimTime) -> (u64, u64, SimStats) {
        let mut sim = build_line(kind);
        sim.run_until(deadline);
        (sim.trace.digest(), sim.trace.recorded(), sim.stats())
    }

    #[test]
    fn sharded_line_matches_serial_for_every_count_and_scheduler() {
        let deadline = SimTime::from_us(20);
        for kind in SchedulerKind::ALL {
            let want = serial_signature(kind, deadline);
            for k in 1..=4u16 {
                let sim = build_line(kind);
                let plan = ShardPlan::auto(&sim, k);
                let mut sharded = ShardedSimulator::split(sim, &plan).expect("plan is valid");
                sharded.run_until(deadline);
                let merged = sharded.finish();
                let got = (
                    merged.trace.digest(),
                    merged.trace.recorded(),
                    merged.stats(),
                );
                assert_eq!(got, want, "k={k} kind={}", kind.name());
            }
        }
    }

    #[test]
    fn manual_plan_round_trips_and_counts_cross_shard_traffic() {
        let deadline = SimTime::from_us(20);
        let want = serial_signature(SchedulerKind::BinaryHeap, deadline);
        let sim = build_line(SchedulerKind::BinaryHeap);
        // Interleaved assignment: the busy a<->b and c<->d links are cut.
        let plan = ShardPlan::manual(vec![0, 1, 0, 1]);
        plan.validate(&sim).expect("every cut has 5ns lookahead");
        let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
        sharded.run_until(deadline);
        let stats = sharded.run_stats();
        assert_eq!(stats.shards, 2);
        assert!(stats.windows > 1, "multi-window run expected");
        assert!(
            stats.cross_shard_frames > 0,
            "a<->b traffic crosses the cut"
        );
        assert_eq!(stats.nodes_per_shard, vec![2, 2]);
        let merged = sharded.finish();
        assert_eq!(
            (
                merged.trace.digest(),
                merged.trace.recorded(),
                merged.stats()
            ),
            want
        );
    }

    #[test]
    fn auto_plan_contracts_zero_delay_edges() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Bouncer { hops_left: 0 });
        let b = sim.add_node("b", Bouncer { hops_left: 0 });
        let c = sim.add_node("c", Bouncer { hops_left: 0 });
        let _ = c;
        sim.install_link(
            a,
            PortId(0),
            b,
            PortId(0),
            Box::new(IdealLink::new(SimTime::ZERO)),
        );
        let plan = ShardPlan::auto(&sim, 3);
        assert_eq!(
            plan.assignment[a.0 as usize], plan.assignment[b.0 as usize],
            "zero-delay neighbors must share a shard"
        );
        plan.validate(&sim).expect("auto plans always validate");
    }

    #[test]
    fn zero_delay_cut_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Bouncer { hops_left: 0 });
        let b = sim.add_node("b", Bouncer { hops_left: 0 });
        sim.install_link(
            a,
            PortId(0),
            b,
            PortId(0),
            Box::new(IdealLink::new(SimTime::ZERO)),
        );
        let plan = ShardPlan::manual(vec![0, 1]);
        assert_eq!(
            plan.validate(&sim),
            Err(ShardError::ZeroDelayCut { src: a, dst: b })
        );
        assert!(ShardedSimulator::split(sim, &plan).is_err());
    }

    /// Deterministic link that *lies* about its lookahead: it advertises
    /// a large min_delay but delivers almost immediately.
    #[derive(Clone)]
    struct LyingLink;
    impl Link for LyingLink {
        fn transmit(&mut self, now: SimTime, _len: usize, _coin: f64) -> LinkOutcome {
            LinkOutcome::Deliver(now + SimTime::from_ns(1))
        }
        fn propagation(&self) -> SimTime {
            SimTime::from_ns(1)
        }
        fn min_delay(&self) -> SimTime {
            SimTime::from_ms(10) // wildly overstated guarantee
        }
    }

    /// Coin-consuming link for validation tests; never actually run.
    #[derive(Clone)]
    struct CoinLink;
    impl Link for CoinLink {
        fn transmit(&mut self, now: SimTime, _len: usize, coin: f64) -> LinkOutcome {
            if coin < 0.5 {
                LinkOutcome::Deliver(now + SimTime::from_ns(10))
            } else {
                LinkOutcome::Drop(crate::link::DropReason::RandomLoss)
            }
        }
        fn propagation(&self) -> SimTime {
            SimTime::from_ns(10)
        }
        fn uses_kernel_coin(&self) -> bool {
            true
        }
    }

    #[test]
    fn coin_consuming_cut_is_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a", Bouncer { hops_left: 0 });
        let b = sim.add_node("b", Bouncer { hops_left: 0 });
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(CoinLink));
        let plan = ShardPlan::manual(vec![0, 1]);
        assert_eq!(
            plan.validate(&sim),
            Err(ShardError::CoinLink { src: a, dst: b })
        );
        // Auto planning contracts the pair instead of cutting it.
        let auto = ShardPlan::auto(&sim, 2);
        assert_eq!(auto.assignment[0], auto.assignment[1]);
    }

    #[test]
    #[should_panic(expected = "cross-shard delivery into the past")]
    fn lying_lookahead_panics_instead_of_corrupting_the_run() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(
            "a",
            Ticker {
                period: SimTime::from_ns(100),
                ticks_left: 50,
            },
        );
        let b = sim.add_node("b", Bouncer { hops_left: 100 });
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(LyingLink));
        sim.install_link(b, PortId(0), a, PortId(0), Box::new(LyingLink));
        sim.schedule_timer(SimTime::ZERO, a, TimerToken(0));
        let plan = ShardPlan::manual(vec![0, 1]);
        plan.validate(&sim).expect("min_delay looks positive");
        let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
        sharded.run_until(SimTime::from_us(100));
    }

    #[test]
    fn bad_assignments_are_rejected() {
        let mut sim = Simulator::new(1);
        sim.add_node("a", Bouncer { hops_left: 0 });
        sim.add_node("b", Bouncer { hops_left: 0 });
        assert!(matches!(
            ShardPlan::manual(vec![0]).validate(&sim),
            Err(ShardError::BadAssignment(_))
        ));
        let mut plan = ShardPlan::manual(vec![0, 1]);
        plan.shards = 1; // id 1 now out of range
        assert!(matches!(
            plan.validate(&sim),
            Err(ShardError::BadAssignment(_))
        ));
    }

    #[test]
    fn imbalanced_partition_terminates_and_makes_progress() {
        // One hot shard (a fast ticker spraying frames across a cut) next
        // to four completely idle shards: the window loop must neither
        // deadlock (idle shards contribute no horizon) nor livelock
        // (every window advances past at least one event), with every
        // window forced onto real OS threads. Forward progress is
        // asserted from the kernel self-profiler's dispatch counts and
        // the per-shard event tallies.
        let ticks = 2_000u32;
        let build = || {
            let mut sim = Simulator::new(9);
            sim.set_profile(true);
            let h = sim.add_node(
                "hot",
                Ticker {
                    period: SimTime::from_ns(10),
                    ticks_left: ticks,
                },
            );
            let r = sim.add_node("sink", Bouncer { hops_left: 0 });
            for i in 0..4 {
                sim.add_node(format!("idle{i}"), Bouncer { hops_left: 0 });
            }
            let cut = IdealLink::new(SimTime::from_ns(50));
            sim.install_link(h, PortId(0), r, PortId(0), Box::new(cut));
            sim.schedule_timer(SimTime::ZERO, h, TimerToken(1));
            sim
        };
        let deadline = SimTime::from_us(100);
        let mut serial = build();
        serial.run_until(deadline);
        let want = (serial.trace.digest(), serial.trace.recorded());

        let sim = build();
        let plan = ShardPlan::manual(vec![0, 1, 2, 3, 4, 5]);
        let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
        sharded.set_parallel_threshold(0); // every window on real threads
        sharded.run_until(deadline);
        let stats = sharded.run_stats();
        assert!(stats.windows > 1, "hot shard must be window-bounded");
        let expected = u64::from(ticks) + 1; // timer dispatches (ticks_left hits 0 on the last)
        assert_eq!(stats.events_per_shard[0], expected, "{stats:?}");
        assert_eq!(stats.events_per_shard[1], expected, "every frame crossed");
        assert_eq!(
            &stats.events_per_shard[2..],
            [0, 0, 0, 0],
            "idle stays idle"
        );
        let merged = sharded.finish();
        let profile = merged.profile().expect("profiler was on");
        assert_eq!(
            profile.dispatches(),
            2 * expected,
            "profiler must account for every dispatch"
        );
        assert_eq!((merged.trace.digest(), merged.trace.recorded()), want);
    }

    #[test]
    fn forced_threading_matches_inline_execution() {
        let deadline = SimTime::from_us(20);
        let want = serial_signature(SchedulerKind::BinaryHeap, deadline);
        let sim = build_line(SchedulerKind::BinaryHeap);
        let plan = ShardPlan::manual(vec![0, 0, 1, 1]);
        let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
        sharded.set_parallel_threshold(0); // every window on real threads
        sharded.run_until(deadline);
        let merged = sharded.finish();
        assert_eq!(
            (
                merged.trace.digest(),
                merged.trace.recorded(),
                merged.stats()
            ),
            want
        );
    }
}
