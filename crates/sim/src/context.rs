//! The API surface a node sees while handling an event.

use rand::rngs::SmallRng;
use rand::Rng;

use tn_obs::{FlightKind, FlightRecord, FlightRecorder};

use crate::frame::{Frame, FrameArena, FrameBuilder, FrameId, FrameMeta};
use crate::node::{NodeId, PortId};
use crate::time::SimTime;

/// Opaque user-defined timer identifier; the node that set the timer
/// decides what the value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Deferred actions a node requests while handling an event; the kernel
/// applies them after the handler returns.
#[derive(Debug)]
pub(crate) enum Action {
    Send {
        port: PortId,
        frame: Frame,
    },
    Timer {
        delay: SimTime,
        token: TimerToken,
    },
    /// Deliver a frame to another node directly, bypassing links. Used for
    /// intra-host delivery between co-resident components with an explicit
    /// modeled delay (e.g. strategy process to kernel-bypass NIC queue).
    DeliverLocal {
        dst: NodeId,
        port: PortId,
        delay: SimTime,
        frame: Frame,
    },
}

/// Handle through which a node interacts with the simulation while
/// processing an event.
///
/// Borrow-wise, the context owns scratch state disjoint from the node
/// itself, so handlers can freely mutate their own fields while calling
/// context methods.
pub struct Context<'a> {
    pub(crate) now: SimTime,
    pub(crate) me: NodeId,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) next_frame_id: &'a mut u64,
    pub(crate) arena: &'a mut FrameArena,
    pub(crate) flight: &'a mut FlightRecorder,
}

impl Context<'_> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node handling this event.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Transmit `frame` out of `port`. If the port is unconnected the frame
    /// is counted as dropped by the kernel.
    #[inline]
    pub fn send(&mut self, port: PortId, frame: Frame) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Start building a new frame born now: the unified arena-first
    /// constructor. The payload buffer is drawn from the kernel's
    /// [`FrameArena`] (in steady state a recycled buffer — no
    /// allocation); fill it with [`FrameBuilder::fill`] /
    /// [`FrameBuilder::copy_from`] / [`FrameBuilder::zeroed`] and finish
    /// with [`FrameBuilder::build`].
    pub fn frame(&mut self) -> FrameBuilder<'_> {
        if self.flight.is_enabled() {
            let kind = if self.arena.will_reuse() {
                FlightKind::FrameReuse
            } else {
                FlightKind::FrameAlloc
            };
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind,
                node: self.me.0,
                shard: 0,
                a: *self.next_frame_id,
                b: 0,
            });
        }
        FrameBuilder::start(self.arena, self.next_frame_id, self.now)
    }

    /// Duplicate a frame for replication (switch fan-out, A/B feed
    /// copies): the payload buffer comes from the [`FrameArena`], while
    /// identity, birth time, and metadata are preserved — replicas keep
    /// the original [`FrameId`] so capture taps can correlate them.
    pub fn clone_frame(&mut self, frame: &Frame) -> Frame {
        let mut bytes = self.arena.take();
        bytes.extend_from_slice(&frame.bytes);
        Frame {
            bytes,
            id: frame.id,
            born: frame.born,
            meta: frame.meta.clone(),
        }
    }

    /// Create a brand-new frame born now, with a fresh [`FrameId`].
    #[deprecated(note = "use `ctx.frame()` (arena-first builder): \
                         `ctx.frame().fill(|b| ...).build()`")]
    pub fn new_frame(&mut self, bytes: Vec<u8>) -> Frame {
        let id = FrameId(*self.next_frame_id);
        *self.next_frame_id += 1;
        Frame {
            bytes,
            id,
            born: self.now,
            meta: FrameMeta::default(),
        }
    }

    /// Create a new frame carrying application metadata.
    #[deprecated(note = "use `ctx.frame().meta(meta)` (arena-first builder)")]
    pub fn new_frame_with_meta(&mut self, bytes: Vec<u8>, meta: FrameMeta) -> Frame {
        #[allow(deprecated)]
        let mut f = self.new_frame(bytes);
        f.meta = meta;
        f
    }

    /// Create a new frame of `len` zero bytes, drawing the payload buffer
    /// from the kernel's [`FrameArena`].
    #[deprecated(note = "use `ctx.frame().zeroed(len)` (arena-first builder)")]
    pub fn new_frame_zeroed(&mut self, len: usize) -> Frame {
        self.frame().zeroed(len).build()
    }

    /// Create a new frame carrying a copy of `bytes`, drawing the payload
    /// buffer from the kernel's [`FrameArena`].
    #[deprecated(note = "use `ctx.frame().copy_from(bytes)` (arena-first builder)")]
    pub fn new_frame_copied(&mut self, bytes: &[u8]) -> Frame {
        self.frame().copy_from(bytes).build()
    }

    /// Return a finished frame's payload buffer to the [`FrameArena`].
    /// Terminal consumers (sinks, handlers that fully decode and discard)
    /// should prefer this over dropping the frame, closing the recycling
    /// loop that keeps the hot path allocation-free.
    #[inline]
    pub fn recycle(&mut self, frame: Frame) {
        self.arena.give(frame.bytes);
    }

    /// Arrange for [`crate::Node::on_timer`] to be called on this node
    /// after `delay`.
    #[inline]
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.actions.push(Action::Timer { delay, token });
    }

    /// Deliver `frame` to another node after `delay`, without traversing a
    /// link. Models intra-host transfers (shared memory, PCIe) whose cost
    /// the caller accounts for explicitly in `delay`.
    #[inline]
    pub fn deliver_local(&mut self, dst: NodeId, port: PortId, delay: SimTime, frame: Frame) {
        self.actions.push(Action::DeliverLocal {
            dst,
            port,
            delay,
            frame,
        });
    }

    /// Uniform random value in `[0, 1)` from the scenario PRNG.
    #[inline]
    pub fn coin(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Access the scenario PRNG for richer sampling.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Drop an application-level note into the kernel's flight recorder
    /// (no-op when the ring is off). `kind` should be a semantically
    /// matching [`FlightKind`] — e.g. [`FlightKind::RecoveryGap`] when a
    /// receiver detects a sequence gap — with `a` / `b` carrying whatever
    /// two details the application wants in the crash dump. Pure
    /// side-state; cannot affect scheduling or the digest.
    #[inline]
    pub fn flight_note(&mut self, kind: FlightKind, a: u64, b: u64) {
        if self.flight.is_enabled() {
            self.flight.record(FlightRecord {
                at_ps: self.now.as_ps(),
                kind,
                node: self.me.0,
                shard: 0,
                a,
                b,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx<'a>(
        actions: &'a mut Vec<Action>,
        rng: &'a mut SmallRng,
        next: &'a mut u64,
        arena: &'a mut FrameArena,
        flight: &'a mut FlightRecorder,
    ) -> Context<'a> {
        Context {
            now: SimTime::from_ns(5),
            me: NodeId(3),
            actions,
            rng,
            next_frame_id: next,
            arena,
            flight,
        }
    }

    #[test]
    fn new_frames_get_distinct_ids_and_birth_time() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next = 10;
        let mut arena = FrameArena::new();
        let mut flight = FlightRecorder::disabled();
        let mut c = ctx(&mut actions, &mut rng, &mut next, &mut arena, &mut flight);
        let a = c.frame().copy_from(&[0]).build();
        let b = c.frame().copy_from(&[1]).build();
        assert_eq!(a.id, FrameId(10));
        assert_eq!(b.id, FrameId(11));
        assert_eq!(a.born, SimTime::from_ns(5));
        assert_eq!(next, 12);
    }

    #[test]
    fn actions_are_recorded_in_order() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next = 0;
        let mut arena = FrameArena::new();
        let mut flight = FlightRecorder::disabled();
        let mut c = ctx(&mut actions, &mut rng, &mut next, &mut arena, &mut flight);
        let f = c.frame().copy_from(&[0]).build();
        c.send(PortId(2), f.clone());
        c.set_timer(SimTime::from_us(1), TimerToken(9));
        c.deliver_local(NodeId(1), PortId(0), SimTime::from_ns(1), f);
        assert_eq!(actions.len(), 3);
        assert!(matches!(
            actions[0],
            Action::Send {
                port: PortId(2),
                ..
            }
        ));
        assert!(matches!(
            actions[1],
            Action::Timer {
                token: TimerToken(9),
                ..
            }
        ));
        assert!(matches!(
            actions[2],
            Action::DeliverLocal { dst: NodeId(1), .. }
        ));
    }

    #[test]
    fn pooled_frames_recycle_without_aliasing_or_id_reuse() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next = 0;
        let mut arena = FrameArena::new();
        let mut flight = FlightRecorder::disabled();
        let mut c = ctx(&mut actions, &mut rng, &mut next, &mut arena, &mut flight);
        let a = c.frame().zeroed(64).build();
        let b = c.frame().copy_from(&[7, 7, 7]).build();
        assert_eq!(a.bytes, vec![0u8; 64]);
        assert_eq!(b.bytes, vec![7, 7, 7]);
        // Live frames never alias: the arena hands each out a distinct
        // buffer, so writing one cannot disturb the other.
        assert_ne!(a.bytes.as_ptr(), b.bytes.as_ptr());
        let a_id = a.id;
        c.recycle(a);
        // Recycled storage comes back zero-length-reset and re-filled…
        let reused = c.frame().zeroed(16).build();
        assert_eq!(reused.bytes, vec![0u8; 16]);
        // …under a fresh id: frame-id monotonicity survives recycling.
        assert!(reused.id > a_id && reused.id > b.id);
        assert_eq!(c.arena.stats().reused, 1);
    }

    #[test]
    fn flight_notes_and_frame_builds_reach_the_ring() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut next = 0;
        let mut arena = FrameArena::new();
        let mut flight = FlightRecorder::with_capacity(8);
        let mut c = ctx(&mut actions, &mut rng, &mut next, &mut arena, &mut flight);
        let f = c.frame().zeroed(16).build();
        c.recycle(f);
        let _reused = c.frame().zeroed(8).build();
        c.flight_note(FlightKind::RecoveryGap, 100, 3);
        let recs: Vec<FlightRecord> = flight.records().copied().collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].kind, FlightKind::FrameAlloc);
        assert_eq!(recs[1].kind, FlightKind::FrameReuse);
        assert_eq!(recs[2].kind, FlightKind::RecoveryGap);
        assert_eq!(recs[2].node, 3, "note carries the handling node");
        assert_eq!((recs[2].a, recs[2].b), (100, 3));
    }

    #[test]
    fn coin_is_unit_interval() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut next = 0;
        let mut arena = FrameArena::new();
        let mut flight = FlightRecorder::disabled();
        let mut c = ctx(&mut actions, &mut rng, &mut next, &mut arena, &mut flight);
        for _ in 0..1000 {
            let v = c.coin();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
