//! Lightweight kernel-level tracing.
//!
//! The kernel records frame deliveries and drops when tracing is enabled.
//! This is deliberately coarse: fine-grained, timestamped measurement is
//! the job of capture taps in `tn-netdev`, mirroring how real trading
//! plants instrument with optical taps rather than switch counters.

use crate::frame::FrameId;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Frame handed to a node's `on_frame`.
    Deliver,
    /// Frame dropped in flight (link loss / queue overflow / no link).
    Drop,
    /// Timer fired.
    Timer,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Node involved (receiver for delivers, transmitter for drops).
    pub node: NodeId,
    /// Port involved.
    pub port: PortId,
    /// Frame involved (`FrameId(u64::MAX)` for timers).
    pub frame: FrameId,
    /// Event class.
    pub kind: TraceKind,
}

/// FNV-1a 64-bit offset basis: the digest of an empty event stream.
pub const EMPTY_DIGEST: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Fold `bytes` into an FNV-1a 64-bit digest. This is the same function
/// the kernel trace digest uses; exposed so non-kernel artifacts (packet
/// byte streams, merged sweep documents) can be content-hashed with the
/// identical algorithm and compared in the divergence registry.
#[inline]
pub fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An append-only in-memory trace log with an always-on run digest.
///
/// Event *storage* is gated on `enabled` (it costs memory proportional to
/// the run), but the [`digest`](TraceLog::digest) — an FNV-1a hash folded
/// over every `(time, node, port, frame, kind)` the kernel records — is
/// maintained unconditionally. Two runs of the same scenario with the same
/// seed must produce identical digests; `tn-audit divergence` checks
/// exactly that, which turns the kernel's "deterministic" promise into an
/// enforced invariant rather than a comment.
#[derive(Debug)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
    digest: u64,
    recorded: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::disabled()
    }
}

impl TraceLog {
    /// A disabled log (hashes, but stores nothing).
    pub fn disabled() -> Self {
        TraceLog {
            enabled: false,
            events: Vec::new(),
            digest: EMPTY_DIGEST,
            recorded: 0,
        }
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        TraceLog {
            enabled: true,
            ..TraceLog::disabled()
        }
    }

    /// Turn event storage on or off (the digest is always maintained).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether event storage is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        let mut h = self.digest;
        h = fnv1a_fold(h, &ev.at.as_ps().to_le_bytes());
        h = fnv1a_fold(h, &ev.node.0.to_le_bytes());
        h = fnv1a_fold(h, &ev.port.0.to_le_bytes());
        h = fnv1a_fold(h, &ev.frame.0.to_le_bytes());
        h = fnv1a_fold(h, &[ev.kind as u8]);
        self.digest = h;
        self.recorded += 1;
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// The run digest: FNV-1a folded over every event recorded so far,
    /// including those recorded while storage was disabled. Equal inputs
    /// (scenario + seed) must yield equal digests.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total events folded into the digest (stored or not).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Count of records with the given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Drop all records and reset the digest (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
        self.digest = EMPTY_DIGEST;
        self.recorded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            node: NodeId(0),
            port: PortId(0),
            frame: FrameId(0),
            kind,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(ev(TraceKind::Deliver));
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn digest_covers_events_even_when_storage_is_off() {
        let mut on = TraceLog::enabled();
        let mut off = TraceLog::disabled();
        assert_eq!(on.digest(), EMPTY_DIGEST);
        for kind in [TraceKind::Deliver, TraceKind::Drop, TraceKind::Timer] {
            on.record(ev(kind));
            off.record(ev(kind));
        }
        assert_eq!(on.digest(), off.digest());
        assert_ne!(on.digest(), EMPTY_DIGEST);
        assert_eq!(off.recorded(), 3);
        assert!(off.events().is_empty());
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut a = TraceLog::disabled();
        a.record(ev(TraceKind::Deliver));
        a.record(ev(TraceKind::Drop));
        let mut b = TraceLog::disabled();
        b.record(ev(TraceKind::Drop));
        b.record(ev(TraceKind::Deliver));
        assert_ne!(
            a.digest(),
            b.digest(),
            "swapped order must change the digest"
        );
        let mut c = TraceLog::disabled();
        c.record(ev(TraceKind::Deliver));
        c.record(TraceEvent {
            at: SimTime::from_ns(1),
            ..ev(TraceKind::Drop)
        });
        assert_ne!(
            a.digest(),
            c.digest(),
            "changed timestamp must change the digest"
        );
    }

    #[test]
    fn clear_resets_digest() {
        let mut log = TraceLog::enabled();
        log.record(ev(TraceKind::Deliver));
        log.clear();
        assert_eq!(log.digest(), EMPTY_DIGEST);
        assert_eq!(log.recorded(), 0);
    }

    #[test]
    fn enabled_log_records_and_counts() {
        let mut log = TraceLog::enabled();
        log.record(ev(TraceKind::Deliver));
        log.record(ev(TraceKind::Drop));
        log.record(ev(TraceKind::Deliver));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.count(TraceKind::Deliver), 2);
        assert_eq!(log.count(TraceKind::Drop), 1);
        log.clear();
        assert!(log.events().is_empty());
        assert!(log.is_enabled());
    }
}
