//! Lightweight kernel-level tracing.
//!
//! The kernel records frame deliveries and drops when tracing is enabled.
//! This is deliberately coarse: fine-grained, timestamped measurement is
//! the job of capture taps in `tn-netdev`, mirroring how real trading
//! plants instrument with optical taps rather than switch counters.

use crate::frame::FrameId;
use crate::node::{NodeId, PortId};
use crate::time::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Frame handed to a node's `on_frame`.
    Deliver,
    /// Frame dropped in flight (link loss / queue overflow / no link).
    Drop,
    /// Timer fired.
    Timer,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Node involved (receiver for delivers, transmitter for drops).
    pub node: NodeId,
    /// Port involved.
    pub port: PortId,
    /// Frame involved (`FrameId(u64::MAX)` for timers).
    pub frame: FrameId,
    /// Event class.
    pub kind: TraceKind,
}

/// An append-only in-memory trace log.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        TraceLog { enabled: false, events: Vec::new() }
    }

    /// An enabled log.
    pub fn enabled() -> Self {
        TraceLog { enabled: true, events: Vec::new() }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Count of records with the given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Drop all records (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            node: NodeId(0),
            port: PortId(0),
            frame: FrameId(0),
            kind,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(ev(TraceKind::Deliver));
        assert!(log.events().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_records_and_counts() {
        let mut log = TraceLog::enabled();
        log.record(ev(TraceKind::Deliver));
        log.record(ev(TraceKind::Drop));
        log.record(ev(TraceKind::Deliver));
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.count(TraceKind::Deliver), 2);
        assert_eq!(log.count(TraceKind::Drop), 1);
        log.clear();
        assert!(log.events().is_empty());
        assert!(log.is_enabled());
    }
}
