//! Property tests on the simulation kernel: determinism, causality, and
//! conservation under arbitrary random topologies and traffic.

use proptest::prelude::*;

use tn_sim::{Context, Frame, IdealLink, Node, NodeId, PortId, SimTime, Simulator, TimerToken};

/// Forwards every frame out a fixed port after a per-node delay, up to a
/// TTL carried in the first payload byte (prevents infinite ping-pong).
struct Hopper {
    out: PortId,
    arrivals: Vec<(SimTime, u64)>,
}

impl Node for Hopper {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, mut frame: Frame) {
        self.arrivals.push((ctx.now(), frame.id.0));
        if frame.bytes[0] > 0 {
            frame.bytes[0] -= 1;
            ctx.send(self.out, frame);
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[derive(Debug, Clone)]
struct Plan {
    nodes: usize,
    edges: Vec<(usize, usize)>,
    injections: Vec<(usize, u64, u8)>, // (node, time ns, ttl)
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (2usize..8).prop_flat_map(|nodes| {
        let edges = proptest::collection::vec((0..nodes, 0..nodes), 1..nodes * 2);
        let injections = proptest::collection::vec((0..nodes, 0u64..10_000, 0u8..12), 1..20);
        (Just(nodes), edges, injections).prop_map(|(nodes, edges, injections)| Plan {
            nodes,
            edges,
            injections,
        })
    })
}

fn run_plan(plan: &Plan, seed: u64) -> (Vec<Vec<(SimTime, u64)>>, tn_sim::SimStats, SimTime) {
    let mut sim = Simulator::new(seed);
    let ids: Vec<NodeId> = (0..plan.nodes)
        .map(|i| {
            sim.add_node(
                format!("n{i}"),
                Hopper {
                    out: PortId(0),
                    arrivals: vec![],
                },
            )
        })
        .collect();
    // Wire each node's port 0 to the first edge target listed for it;
    // extra edges use ascending port numbers (point-to-point constraint).
    let mut next_port = vec![0u16; plan.nodes];
    for &(a, b) in &plan.edges {
        if a == b {
            continue;
        }
        let (pa, pb) = (next_port[a], next_port[b] + 1_000);
        // Skip if port 0 on `a` already used AND we only forward out port
        // 0 — extra links still carry reverse traffic legitimately.
        if sim.is_connected(ids[a], PortId(pa)) || sim.is_connected(ids[b], PortId(pb)) {
            continue;
        }
        let link = IdealLink::new(SimTime::from_ns(7));
        sim.install_link(
            ids[a],
            PortId(pa),
            ids[b],
            PortId(pb),
            Box::new(link.clone()),
        );
        sim.install_link(ids[b], PortId(pb), ids[a], PortId(pa), Box::new(link));
        next_port[a] += 1;
        next_port[b] += 1;
    }
    for &(n, t_ns, ttl) in &plan.injections {
        let mut f = sim.frame().fill(|b| b.resize(8, ttl)).build();
        f.meta.tag = u64::from(ttl);
        sim.inject_frame(SimTime::from_ns(t_ns), ids[n], PortId(0), f);
    }
    sim.run_until(SimTime::from_ms(1));
    let arrivals = ids
        .iter()
        .map(|&id| sim.node::<Hopper>(id).unwrap().arrivals.clone())
        .collect();
    (arrivals, sim.stats(), sim.now())
}

proptest! {
    /// Identical plans and seeds produce bit-identical histories.
    #[test]
    fn kernel_is_deterministic(plan in arb_plan()) {
        let a = run_plan(&plan, 42);
        let b = run_plan(&plan, 42);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Time never goes backwards at any observer, and every delivered
    /// frame was either injected or forwarded (conservation: deliveries
    /// ≤ injections × (ttl + 1)).
    #[test]
    fn causality_and_conservation(plan in arb_plan()) {
        let (arrivals, stats, _) = run_plan(&plan, 7);
        for node_arrivals in &arrivals {
            for w in node_arrivals.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards at an observer");
            }
        }
        let max_deliveries: u64 = plan
            .injections
            .iter()
            .map(|&(_, _, ttl)| u64::from(ttl) + 1)
            .sum();
        prop_assert!(stats.frames_delivered <= max_deliveries);
        // Nothing vanishes silently: delivered + dropped + unrouted
        // accounts for every transmission attempt.
        prop_assert_eq!(stats.frames_dropped, 0); // ideal links never drop
    }
}
