#!/usr/bin/env sh
# The full CI gauntlet. Everything runs offline (deps are vendored in
# vendor/); any failure fails the script.
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo run --release --offline -q -p tn-audit -- check
# Fault-injection determinism: dual-run the degraded scenarios explicitly
# (check already covers the registry; this keeps the fault paths loud).
run cargo run --release --offline -q -p tn-audit -- divergence --filter fault

echo "==> ci: all green"
