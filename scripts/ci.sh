#!/usr/bin/env sh
# The full CI gauntlet. Everything runs offline (deps are vendored in
# vendor/); any failure fails the script.
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
# Static analysis + divergence, gated against the committed baseline:
# any finding not in AUDIT_BASELINE.json — suppressed or not — fails CI,
# so suppression creep is visible in review. The JSON report must lead
# with the registered tn-audit/v1 marker and validate against it.
audit_report=target/audit-report.json
run cargo run --release --offline -q -p tn-audit -- check \
    --json "$audit_report" --baseline AUDIT_BASELINE.json
head -1 "$audit_report" | grep -q '"schema":"tn-audit/v1"'
run cargo run --release --offline -q -p tn-audit -- schema --json "$audit_report"
# Fault-injection determinism: dual-run the degraded scenarios explicitly
# (check already covers the registry; this keeps the fault paths loud).
run cargo run --release --offline -q -p tn-audit -- divergence --filter fault
# Telemetry determinism: full observability must not move any digest.
run cargo run --release --offline -q -p tn-audit -- divergence --filter obs
run cargo run --release --offline -q -p tn-audit -- divergence --filter latency-decomposition
# tn-trace/v1 smoke: E21's JSONL leads with the schema marker.
echo "==> exp_latency_decomposition --json (tn-trace/v1 schema check)"
trace_out=target/e21-trace.jsonl
cargo run --release --offline -q -p tn-bench --bin exp_latency_decomposition -- --json \
    > "$trace_out"
head -1 "$trace_out" | grep -q '"schema":"tn-trace/v1"'
rm -f "$trace_out"
# Scheduler equivalence: a reduced-case differential sweep (the full
# 64-case sweep runs with the workspace tests above).
echo "==> scheduler_equivalence (reduced proptest sweep)"
PROPTEST_CASES=8 cargo test -q --offline --test scheduler_equivalence
# BENCH smoke: both schedulers on the small scales, digests asserted
# equal inside the harness, and the artifact parses as tn-bench/v1.
run cargo run --release --offline -q -p tn-bench --bin bench_kernel -- --smoke
head -1 BENCH_kernel.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_kernel.json: tn-bench/v1 ok"
# Lab determinism: parallel batches must be byte-identical to serial and
# reproduce the standalone golden digests (registry scenarios).
run cargo run --release --offline -q -p tn-audit -- divergence --filter lab
# Lab smoke: expand the smoke grid, run it on 2 workers, and check the
# report leads with the tn-lab/v1 schema marker.
echo "==> tn-lab expand + run --threads 2 (tn-lab/v1 schema check)"
lab_out=target/ci-lab-smoke.json
cargo run --release --offline -q -p tn-lab -- expand --preset smoke > /dev/null
cargo run --release --offline -q -p tn-lab -- run --preset smoke --threads 2 \
    --out "$lab_out" > /dev/null
head -1 "$lab_out" | grep -q '"schema":"tn-lab/v1"'
rm -f "$lab_out"
# BENCH lab smoke: serial-vs-parallel wall clock with byte-identity
# asserted inside the harness.
run cargo run --release --offline -q -p tn-bench --bin bench_lab -- --smoke
head -1 BENCH_lab.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_lab.json: tn-bench/v1 ok"

echo "==> ci: all green"
