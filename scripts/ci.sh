#!/usr/bin/env sh
# The full CI gauntlet. Everything runs offline (deps are vendored in
# vendor/); any failure fails the script.
set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo fmt --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
# Static analysis + divergence, gated against the committed baseline:
# any finding not in AUDIT_BASELINE.json — suppressed or not — fails CI,
# so suppression creep is visible in review. The JSON report must lead
# with the registered tn-audit/v1 marker and validate against it.
audit_report=target/audit-report.json
run cargo run --release --offline -q -p tn-audit -- check \
    --json "$audit_report" --baseline AUDIT_BASELINE.json
head -1 "$audit_report" | grep -q '"schema":"tn-audit/v1"'
run cargo run --release --offline -q -p tn-audit -- schema --json "$audit_report"
# Fault-injection determinism: dual-run the degraded scenarios explicitly
# (check already covers the registry; this keeps the fault paths loud).
run cargo run --release --offline -q -p tn-audit -- divergence --filter fault
# Telemetry determinism: full observability must not move any digest.
run cargo run --release --offline -q -p tn-audit -- divergence --filter obs
# Flight-recorder determinism: recorder + profiler fully on must
# reproduce the golden quickstart digest, bit for bit.
run cargo run --release --offline -q -p tn-audit -- divergence --filter flight
run cargo run --release --offline -q -p tn-audit -- divergence --filter latency-decomposition
# tn-trace/v1 smoke: E21's JSONL leads with the schema marker.
echo "==> exp_latency_decomposition --json (tn-trace/v1 schema check)"
trace_out=target/e21-trace.jsonl
cargo run --release --offline -q -p tn-bench --bin exp_latency_decomposition -- --json \
    > "$trace_out"
head -1 "$trace_out" | grep -q '"schema":"tn-trace/v1"'
# tn-flight/v1 smoke: the timeline export of the same trace leads with
# its schema marker, and the folded-stacks rendering is byte-stable
# across two summarize runs.
echo "==> tn-obs summarize --timeline/--folded (tn-flight/v1 + stability)"
flight_out=target/e21-flight.json
cargo run --release --offline -q -p tn-obs -- summarize --timeline "$trace_out" \
    > "$flight_out"
head -1 "$flight_out" | grep -q '"schema":"tn-flight/v1"'
cargo run --release --offline -q -p tn-obs -- summarize --folded "$trace_out" \
    > target/e21-folded-1.txt
cargo run --release --offline -q -p tn-obs -- summarize --folded "$trace_out" \
    > target/e21-folded-2.txt
cmp target/e21-folded-1.txt target/e21-folded-2.txt
rm -f "$trace_out" "$flight_out" target/e21-folded-1.txt target/e21-folded-2.txt
# Scheduler equivalence: a reduced-case differential sweep (the full
# 64-case sweep runs with the workspace tests above).
echo "==> scheduler_equivalence (reduced proptest sweep)"
PROPTEST_CASES=8 cargo test -q --offline --test scheduler_equivalence
# Shard equivalence: sharded execution must reproduce the serial kernel
# bit-for-bit — a reduced random-topology sweep here, plus the registry
# scenarios pinning the golden quickstart digest through the sharded
# path for every shard count 1..=8 under all three schedulers.
echo "==> shard_equivalence (reduced proptest sweep)"
PROPTEST_CASES=8 cargo test -q --offline --test shard_equivalence
run cargo run --release --offline -q -p tn-audit -- divergence --filter shard
# BENCH shard smoke: serial-vs-sharded with digests asserted equal
# inside the harness. Smoke mode never writes BENCH_shard.json, so the
# committed full-scale numbers stay untouched.
run cargo run --release --offline -q -p tn-bench --bin bench_shard -- --smoke
head -1 BENCH_shard.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_shard.json: tn-bench/v1 ok"
# BENCH smoke + regression gate: all three schedulers on the small
# scales, digests asserted equal inside the harness, and the artifact
# parses as tn-bench/v1. The committed full-run summary is captured
# BEFORE the smoke run overwrites the artifact; the gate then requires
# (a) the smoke geomean within tolerance of the committed one — smoke is
# one rep at the smallest scales, so the bar catches a scheduler
# collapsing, not single-digit drift — and (b) the scheduler-bound
# timer-churn row still beating the reference heap. The committed
# artifact is restored afterwards so CI leaves the tree clean.
committed_bench=target/ci-bench-committed.json
cp BENCH_kernel.json "$committed_bench"
committed_geo=$(sed -n 's/.*"geomean_speedup":\([0-9.]*\).*/\1/p' "$committed_bench")
run cargo run --release --offline -q -p tn-bench --bin bench_kernel -- --smoke
head -1 BENCH_kernel.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_kernel.json: tn-bench/v1 ok"
smoke_geo=$(sed -n 's/.*"geomean_speedup":\([0-9.]*\).*/\1/p' BENCH_kernel.json)
churn_wheel=$(grep -o '"speedup_wheel":[0-9.]*' BENCH_kernel.json | tail -1 | cut -d: -f2)
mv "$committed_bench" BENCH_kernel.json
awk -v s="$smoke_geo" -v c="$committed_geo" -v w="$churn_wheel" 'BEGIN {
    if (s + 0 < c - 0.25) {
        printf "bench gate FAIL: smoke geomean %.4f below committed %.4f - 0.25\n", s, c
        exit 1
    }
    if (w + 0 < 1.0) {
        printf "bench gate FAIL: timer-churn wheel speedup %.4f < 1.0\n", w
        exit 1
    }
    printf "==> bench gate: smoke geomean %.4f (committed %.4f), churn wheel %.2fx\n", s, c, w
}'
# Suppression-creep gate for the zero-alloc hot path: the retired
# hotpath-alloc suppressions must stay retired. 19 remain by design
# (cold paths: scheduler rebuilds and rewinds, session setup, telemetry
# buffers); anything above that means an alloc crept back onto the hot
# path and was re-suppressed instead of fixed.
alloc_suppressions=$(grep -o '"lint":"hotpath-alloc"' AUDIT_BASELINE.json | wc -l)
if [ "$alloc_suppressions" -gt 19 ]; then
    echo "audit gate FAIL: $alloc_suppressions hotpath-alloc suppressions in baseline (ceiling 19)"
    exit 1
fi
echo "==> audit gate: $alloc_suppressions hotpath-alloc suppressions (ceiling 19)"
# Cloud fairness determinism: the zero-knob spec must be bit-transparent,
# the enabled mechanism set must dual-run, and the frontier point must
# reproduce the digest committed in BENCH_cloud.json (all asserted inside
# the registry runners; "cloud" also re-covers shootout-cloud).
run cargo run --release --offline -q -p tn-audit -- divergence --filter cloud
# Cloud property tests: exactly-zero spread / exact arrival-order release
# with every stochastic knob zeroed — a reduced sweep here, the full one
# runs with the workspace tests above.
echo "==> cloud_properties (reduced proptest sweep)"
PROPTEST_CASES=8 cargo test -q --offline --test cloud_properties
# E22 smoke: the fairness frontier sweep asserts its claims internally
# (cloud beats L1 only by paying >= hold; zero-hold leaks) and the JSON
# leads with the tn-exp/v1 schema marker.
echo "==> exp_cloud_fairness --smoke --json (tn-exp/v1 schema check)"
cloud_exp=target/ci-cloud-fairness.json
cargo run --release --offline -q -p tn-bench --bin exp_cloud_fairness -- --smoke --json \
    > "$cloud_exp"
head -1 "$cloud_exp" | grep -q '"schema":"tn-exp/v1"'
rm -f "$cloud_exp"
# BENCH cloud smoke: rep-determinism and the frontier claim asserted
# inside the harness; smoke never writes BENCH_cloud.json, so the
# committed frontier table stays untouched.
run cargo run --release --offline -q -p tn-bench --bin bench_cloud -- --smoke
head -1 BENCH_cloud.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_cloud.json: tn-bench/v1 ok"
# Lab determinism: parallel batches must be byte-identical to serial and
# reproduce the standalone golden digests (registry scenarios).
run cargo run --release --offline -q -p tn-audit -- divergence --filter lab
# Lab smoke: expand the smoke grid, run it on 2 workers, and check the
# report leads with the tn-lab/v1 schema marker.
echo "==> tn-lab expand + run --threads 2 (tn-lab/v1 schema check)"
lab_out=target/ci-lab-smoke.json
cargo run --release --offline -q -p tn-lab -- expand --preset smoke > /dev/null
cargo run --release --offline -q -p tn-lab -- run --preset smoke --threads 2 \
    --out "$lab_out" > /dev/null
head -1 "$lab_out" | grep -q '"schema":"tn-lab/v1"'
rm -f "$lab_out"
# BENCH lab smoke: serial-vs-parallel wall clock with byte-identity
# asserted inside the harness.
run cargo run --release --offline -q -p tn-bench --bin bench_lab -- --smoke
head -1 BENCH_lab.json | grep -q '"schema":"tn-bench/v1"'
echo "==> BENCH_lab.json: tn-bench/v1 ok"

echo "==> ci: all green"
