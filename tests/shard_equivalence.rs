//! Differential property tests for sharded execution: over random
//! fan-out topologies — mixed link speeds, store-and-forward hops,
//! optional fault-degraded links — a [`ShardedSimulator`] split into any
//! number of shards, under any scheduler, must reproduce the serial
//! kernel bit-for-bit: identical trace digests, event counts, and
//! per-sink delivery tallies. Random manual assignments must either be
//! rejected up front (zero-delay cut) or reproduce the serial run too.
//!
//! This is the contract that makes `ScenarioConfig::shards` a pure
//! performance knob: no partition may ever change a result. A fixed
//! design-level test extends the same claim to the full `DesignReport`
//! JSON document.

use proptest::prelude::*;

use trading_networks::core::{
    ScenarioConfig, ShardSpec, TradingNetworkDesign, TraditionalSwitches,
};
use trading_networks::fault::{FaultLink, FaultSpec};
use trading_networks::netdev::EtherLink;
use trading_networks::sim::{
    Context, Frame, IdealLink, Link, Node, PortId, SchedulerKind, ShardError, ShardPlan,
    ShardedSimulator, SimTime, Simulator, TimerToken,
};

const TICK: TimerToken = TimerToken(1);

/// Emits `count` pooled frames, one per timer firing, cycling across
/// `branches` output ports — the fan-out root.
struct FanSource {
    interval: SimTime,
    count: u32,
    payload: usize,
    branches: u32,
    sent: u32,
}

impl Node for FanSource {
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        let frame = ctx.frame().zeroed(self.payload).build();
        ctx.send(PortId((self.sent % self.branches) as u16), frame);
        self.sent += 1;
        if self.sent < self.count {
            ctx.set_timer(self.interval, TICK);
        }
    }
}

/// A middle hop: either cut-through (forward immediately) or
/// store-and-forward (hold each frame for a fixed service time).
struct Hop {
    hold: Option<SimTime>,
    held: std::collections::VecDeque<Frame>,
}

impl Node for Hop {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        match self.hold {
            None => ctx.send(PortId(1), frame),
            Some(service) => {
                self.held.push_back(frame);
                ctx.set_timer(service, TICK);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        if let Some(frame) = self.held.pop_front() {
            ctx.send(PortId(1), frame);
        }
    }
}

/// Counts deliveries and recycles every payload into the frame arena.
#[derive(Default)]
struct Sink {
    delivered: u64,
    bytes: u64,
}

impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.delivered += 1;
        self.bytes += frame.bytes.len() as u64;
        ctx.recycle(frame);
    }
}

/// One link of a branch, as drawn by proptest.
#[derive(Debug, Clone, Copy)]
struct LinkPlan {
    /// `None` is an ideal link; `Some(bps)` serializes.
    rate_bps: Option<u64>,
    prop_ns: u64,
}

impl LinkPlan {
    /// Build the link, optionally behind a [`FaultLink`] with `loss`
    /// iid drop probability (seeded off this link's position). The
    /// fault layer draws from its own PRNG, never the kernel coin, so
    /// every partition replays the same drop decisions.
    fn build(&self, fault: Option<(u64, f64)>) -> Box<dyn Link> {
        let prop = SimTime::from_ns(self.prop_ns);
        match (self.rate_bps, fault) {
            (None, None) => Box::new(IdealLink::new(prop)),
            (Some(bps), None) => Box::new(EtherLink::new(bps, prop)),
            (None, Some((seed, p))) => Box::new(FaultLink::wrap(
                IdealLink::new(prop),
                FaultSpec::new(seed).with_iid_loss(p),
            )),
            (Some(bps), Some((seed, p))) => Box::new(FaultLink::wrap(
                EtherLink::new(bps, prop),
                FaultSpec::new(seed).with_iid_loss(p),
            )),
        }
    }
}

/// One branch of the fan-out: hold times for its hops, then its links
/// (`hops.len() + 1` of them).
#[derive(Debug, Clone)]
struct BranchPlan {
    hops: Vec<Option<u64>>, // ns; None = cut-through
    links: Vec<LinkPlan>,
}

#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    branches: Vec<BranchPlan>,
    /// iid loss probability on every link when faults are on.
    loss: f64,
    frames: u32,
    payload: usize,
    interval_ns: u64,
}

fn arb_link() -> impl Strategy<Value = LinkPlan> {
    (
        prop_oneof![
            Just(None),
            Just(Some(1_000_000_000u64)),
            Just(Some(10_000_000_000u64)),
        ],
        0u64..20_000,
    )
        .prop_map(|(rate_bps, prop_ns)| LinkPlan { rate_bps, prop_ns })
}

fn arb_branch() -> impl Strategy<Value = BranchPlan> {
    let hold = prop_oneof![Just(None), (1u64..5_000).prop_map(Some)];
    proptest::collection::vec(hold, 0..3).prop_flat_map(|hops| {
        let links = proptest::collection::vec(arb_link(), hops.len() + 1..hops.len() + 2);
        (Just(hops), links).prop_map(|(hops, links)| BranchPlan { hops, links })
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(arb_branch(), 1..4),
        any::<u64>(),
        1u32..40,
        1u32..24,
        32usize..512,
        100u64..50_000,
    )
        .prop_map(
            |(branches, seed, loss_pct, frames, payload, interval_ns)| Plan {
                seed,
                branches,
                loss: f64::from(loss_pct) / 100.0,
                frames,
                payload,
                interval_ns,
            },
        )
}

/// Build the fan-out simulator a plan describes; returns the sim and its
/// sink node ids.
fn build_plan(
    plan: &Plan,
    kind: SchedulerKind,
    faults: bool,
) -> (Simulator, Vec<trading_networks::sim::NodeId>) {
    let mut sim = Simulator::with_scheduler(plan.seed, kind);
    let src = sim.add_node(
        "src",
        FanSource {
            interval: SimTime::from_ns(plan.interval_ns),
            count: plan.frames,
            payload: plan.payload,
            branches: plan.branches.len() as u32,
            sent: 0,
        },
    );
    let mut sinks = Vec::new();
    for (bi, branch) in plan.branches.iter().enumerate() {
        let mut prev = src;
        let mut prev_port = PortId(bi as u16);
        for (hi, hold) in branch.hops.iter().enumerate() {
            let hop = sim.add_node(
                format!("hop{bi}.{hi}"),
                Hop {
                    hold: hold.map(SimTime::from_ns),
                    held: std::collections::VecDeque::new(),
                },
            );
            let fault = faults.then(|| ((bi * 31 + hi) as u64, plan.loss));
            sim.install_link(
                prev,
                prev_port,
                hop,
                PortId(0),
                branch.links[hi].build(fault),
            );
            prev = hop;
            prev_port = PortId(1);
        }
        let sink = sim.add_node(format!("sink{bi}"), Sink::default());
        let fault = faults.then(|| ((bi * 31 + branch.hops.len()) as u64, plan.loss));
        sim.install_link(
            prev,
            prev_port,
            sink,
            PortId(0),
            branch.links[branch.hops.len()].build(fault),
        );
        sinks.push(sink);
    }
    sim.schedule_timer(SimTime::from_ns(10), src, TICK);
    (sim, sinks)
}

/// Far beyond the last event any plan can schedule (frames × interval
/// plus path delays tops out well under a millisecond × 24).
const DRAIN: SimTime = SimTime::from_ms(100);

/// What one run distills to: `(digest, events, per-sink (count, bytes))`.
type RunResult = (u64, u64, Vec<(u64, u64)>);

fn harvest(sim: &Simulator, sinks: &[trading_networks::sim::NodeId]) -> RunResult {
    let tallies = sinks
        .iter()
        .map(|&s| {
            let sink = sim.node::<Sink>(s).expect("sink");
            (sink.delivered, sink.bytes)
        })
        .collect();
    (sim.trace.digest(), sim.trace.recorded(), tallies)
}

fn run_serial(plan: &Plan, kind: SchedulerKind, faults: bool) -> RunResult {
    let (mut sim, sinks) = build_plan(plan, kind, faults);
    sim.run_until(DRAIN);
    harvest(&sim, &sinks)
}

/// Run under an auto plan with `k` shards; `threshold` is the
/// parallel-dispatch knob (0 forces scoped OS threads every window).
fn run_auto(plan: &Plan, kind: SchedulerKind, faults: bool, k: u16, threshold: usize) -> RunResult {
    let (sim, sinks) = build_plan(plan, kind, faults);
    let shard_plan = ShardPlan::auto(&sim, k);
    let mut sharded =
        ShardedSimulator::split(sim, &shard_plan).expect("auto plans always validate");
    sharded.set_parallel_threshold(threshold);
    sharded.run_until(DRAIN);
    let sim = sharded.finish();
    harvest(&sim, &sinks)
}

/// Run under a derived pseudo-random manual assignment. Returns `None`
/// when the assignment is (legitimately) rejected — a zero-delay or
/// coin-consuming cut — which the caller counts as vacuous.
fn run_manual(plan: &Plan, faults: bool, assign_seed: u64) -> Option<(Vec<u32>, RunResult)> {
    let (sim, sinks) = build_plan(plan, SchedulerKind::BinaryHeap, faults);
    let shards = 2 + (assign_seed % 3) as u32; // 2..=4
    let mut x = assign_seed | 1;
    let assignment: Vec<u32> = (0..sim.node_count())
        .map(|_| {
            // xorshift: cheap, deterministic, seed-derived spread.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % u64::from(shards)) as u32
        })
        .collect();
    let shard_plan = ShardPlan::manual(assignment.clone());
    match shard_plan.validate(&sim) {
        Err(ShardError::ZeroDelayCut { .. }) | Err(ShardError::CoinLink { .. }) => return None,
        Err(e) => panic!("unexpected rejection of a covering assignment: {e}"),
        Ok(()) => {}
    }
    let mut sharded = ShardedSimulator::split(sim, &shard_plan).expect("validated above");
    sharded.run_until(DRAIN);
    let sim = sharded.finish();
    Some((assignment, harvest(&sim, &sinks)))
}

proptest! {
    /// For every random fan-out plan, every shard count 1..=8 under
    /// every scheduler — faulted or not — reproduces the serial kernel
    /// bit-for-bit, and forcing real OS threads changes nothing.
    #[test]
    fn sharded_runs_match_serial_on_random_topologies(
        plan in arb_plan(),
        k in 1u16..=8,
    ) {
        for faults in [false, true] {
            for kind in SchedulerKind::ALL {
                let serial = run_serial(&plan, kind, faults);
                let sharded = run_auto(&plan, kind, faults, k, usize::MAX);
                prop_assert_eq!(
                    &serial, &sharded,
                    "{} diverged sharded (k={}, faults={})", kind.name(), k, faults
                );
            }
            // One threaded pass per plan: scoped threads every window
            // must execute the identical merge, so the digest holds.
            let serial = run_serial(&plan, SchedulerKind::BinaryHeap, faults);
            let threaded = run_auto(&plan, SchedulerKind::BinaryHeap, faults, k, 0);
            prop_assert_eq!(
                &serial, &threaded,
                "threaded windows diverged (k={}, faults={})", k, faults
            );
        }
    }

    /// Random manual assignments either get rejected at validation (a
    /// zero-delay or coin cut — never silently accepted) or reproduce
    /// the serial run exactly.
    #[test]
    fn random_manual_assignments_match_serial_or_reject(
        plan in arb_plan(),
        assign_seed in any::<u64>(),
    ) {
        for faults in [false, true] {
            if let Some((assignment, sharded)) = run_manual(&plan, faults, assign_seed) {
                let serial = run_serial(&plan, SchedulerKind::BinaryHeap, faults);
                prop_assert_eq!(
                    &serial, &sharded,
                    "manual assignment {:?} diverged (faults={})", assignment, faults
                );
            }
        }
    }
}

/// Regression (folded in from the PR-9 review probe
/// `tmp_coin_probe.rs`): what a kernel-coin (lossy) link does to a
/// sharded run, pinned in all three directions.
///
/// 1. *Cutting* a coin link is refused at validation — the documented
///    `ShardError::CoinLink` contract.
/// 2. An *intra-shard* coin link is accepted, and the sharded run is
///    self-deterministic (two runs agree bit-for-bit).
/// 3. But it still **diverges from the serial run** — per-shard kernel
///    PRNG streams differ from the serial stream, exactly as the
///    `tn_sim::shard` module docs warn. That divergence is the probe's
///    finding and the reason every fault model the designs use
///    (`FaultLink`) owns its *own* seeded PRNG instead of the kernel
///    coin; this test keeps anyone from quietly "fixing" the docs
///    instead of the mechanism.
#[test]
fn intra_shard_kernel_coin_link_diverges_from_serial_by_contract() {
    struct Ticker {
        period: SimTime,
        ticks_left: u32,
    }
    impl Node for Ticker {
        fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
            ctx.recycle(frame);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
            let f = ctx
                .frame()
                .zeroed(64)
                .tag(u64::from(self.ticks_left))
                .build();
            ctx.send(PortId(0), f);
            if self.ticks_left > 0 {
                self.ticks_left -= 1;
                ctx.set_timer(self.period, timer);
            }
        }
    }
    let build = || {
        let mut sim = Simulator::new(42);
        let a = sim.add_node(
            "a",
            Ticker {
                period: SimTime::from_ns(100),
                ticks_left: 200,
            },
        );
        let b = sim.add_node("b", Sink::default());
        let c = sim.add_node("c", Sink::default());
        // Lossy (kernel-coin) link fully inside shard 0.
        let lossy = EtherLink::ten_gig(SimTime::from_ns(5)).with_loss(0.3);
        sim.install_link(a, PortId(0), b, PortId(0), Box::new(lossy));
        // Clean cut link b->c so a 2-shard plan validates.
        sim.install_link(
            b,
            PortId(1),
            c,
            PortId(0),
            Box::new(IdealLink::new(SimTime::from_ns(50))),
        );
        sim.schedule_timer(SimTime::ZERO, a, TimerToken(1));
        sim
    };

    let deadline = SimTime::from_us(50);
    let mut serial = build();
    serial.run_until(deadline);
    let want = (serial.trace.digest(), serial.stats().frames_dropped);
    assert!(want.1 > 0, "the lossy link must actually drop frames");

    // (1) Cutting the coin link (a and b in different shards) is refused.
    let cut = ShardPlan::manual(vec![0, 1, 1]);
    assert!(
        cut.validate(&build()).is_err(),
        "a cross-shard kernel-coin link must be rejected at validation"
    );

    // (2)+(3) Intra-shard placement is accepted, deterministic, and
    // diverges from serial.
    let run_sharded = || {
        let sim = build();
        let plan = ShardPlan::manual(vec![0, 0, 1]);
        plan.validate(&sim)
            .expect("coin link is intra-shard, so validate accepts it");
        let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
        sharded.run_until(deadline);
        let merged = sharded.finish();
        (merged.trace.digest(), merged.stats().frames_dropped)
    };
    let got = run_sharded();
    assert_eq!(got, run_sharded(), "sharded coin runs must dual-run equal");
    assert_ne!(
        got, want,
        "an intra-shard kernel-coin link replays a per-shard PRNG stream, \
         not the serial one; if this suddenly matches, the kernel grew a \
         serial-faithful coin and the shard-module docs (and this pin) \
         should both change"
    );
}

/// Design-level equivalence: the full `DesignReport` JSON document — not
/// just the digest — is identical between serial and sharded runs, for
/// several shard counts, once the additive `shard` section is cleared.
#[test]
fn sharded_design_reports_match_serial_exactly() {
    let trim = |mut sc: ScenarioConfig| {
        sc.duration = SimTime::from_ms(4);
        sc.warmup = SimTime::from_ms(1);
        sc
    };
    let serial = TraditionalSwitches::default().run(&trim(ScenarioConfig::small(42)));
    let serial_json = serial.to_json();
    for k in [2u16, 5, 8] {
        let mut sc = trim(ScenarioConfig::small(42));
        sc.shards = ShardSpec::Auto(k);
        let mut report = TraditionalSwitches::default().run(&sc);
        let stats = report
            .shard
            .take()
            .expect("sharded run reports its partition");
        assert_eq!(stats.shards, k);
        assert_eq!(
            report.to_json(),
            serial_json,
            "sharded DesignReport (k={k}) must match serial field-for-field"
        );
    }
}
