//! Differential property tests for the pluggable event schedulers: over
//! random fan-out topologies — mixed link speeds, store-and-forward hops,
//! optional fault-degraded links, telemetry on or off — the binary heap
//! and the calendar queue must pop the exact same `(time, seq)` order,
//! observed as bit-identical trace digests, event counts, and per-sink
//! delivery tallies.
//!
//! This is the contract that makes `ScenarioConfig::scheduler` a pure
//! performance knob: no choice of scheduler may ever change a result.

use proptest::prelude::*;

use trading_networks::fault::{FaultLink, FaultSpec};
use trading_networks::netdev::EtherLink;
use trading_networks::sim::{
    Context, Frame, IdealLink, Link, Metrics, Node, PortId, SchedulerKind, SimTime, Simulator,
    TimerToken,
};

const TICK: TimerToken = TimerToken(1);

/// Emits `count` pooled frames, one per timer firing, cycling across
/// `branches` output ports — the fan-out root.
struct FanSource {
    interval: SimTime,
    count: u32,
    payload: usize,
    branches: u32,
    sent: u32,
}

impl Node for FanSource {
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        let frame = ctx.frame().zeroed(self.payload).build();
        ctx.send(PortId((self.sent % self.branches) as u16), frame);
        self.sent += 1;
        if self.sent < self.count {
            ctx.set_timer(self.interval, TICK);
        }
    }
}

/// A middle hop: either cut-through (forward immediately) or
/// store-and-forward (hold each frame for a fixed service time).
struct Hop {
    hold: Option<SimTime>,
    held: std::collections::VecDeque<Frame>,
}

impl Node for Hop {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        match self.hold {
            None => ctx.send(PortId(1), frame),
            Some(service) => {
                self.held.push_back(frame);
                ctx.set_timer(service, TICK);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        if let Some(frame) = self.held.pop_front() {
            ctx.send(PortId(1), frame);
        }
    }
}

/// Counts deliveries and recycles every payload into the frame arena.
#[derive(Default)]
struct Sink {
    delivered: u64,
    bytes: u64,
}

impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.delivered += 1;
        self.bytes += frame.bytes.len() as u64;
        ctx.recycle(frame);
    }
}

/// One link of a branch, as drawn by proptest.
#[derive(Debug, Clone, Copy)]
struct LinkPlan {
    /// `None` is an ideal link; `Some(bps)` serializes.
    rate_bps: Option<u64>,
    prop_ns: u64,
}

impl LinkPlan {
    /// Build the link, optionally behind a [`FaultLink`] with `loss`
    /// iid drop probability (seeded off this link's position).
    fn build(&self, fault: Option<(u64, f64)>) -> Box<dyn Link> {
        let prop = SimTime::from_ns(self.prop_ns);
        match (self.rate_bps, fault) {
            (None, None) => Box::new(IdealLink::new(prop)),
            (Some(bps), None) => Box::new(EtherLink::new(bps, prop)),
            (None, Some((seed, p))) => Box::new(FaultLink::wrap(
                IdealLink::new(prop),
                FaultSpec::new(seed).with_iid_loss(p),
            )),
            (Some(bps), Some((seed, p))) => Box::new(FaultLink::wrap(
                EtherLink::new(bps, prop),
                FaultSpec::new(seed).with_iid_loss(p),
            )),
        }
    }
}

/// One branch of the fan-out: hold times for its hops, then its links
/// (`hops.len() + 1` of them).
#[derive(Debug, Clone)]
struct BranchPlan {
    hops: Vec<Option<u64>>, // ns; None = cut-through
    links: Vec<LinkPlan>,
}

#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    branches: Vec<BranchPlan>,
    /// iid loss probability on every link when faults are on.
    loss: f64,
    frames: u32,
    payload: usize,
    interval_ns: u64,
}

fn arb_link() -> impl Strategy<Value = LinkPlan> {
    (
        prop_oneof![
            Just(None),
            Just(Some(1_000_000_000u64)),
            Just(Some(10_000_000_000u64)),
        ],
        0u64..20_000,
    )
        .prop_map(|(rate_bps, prop_ns)| LinkPlan { rate_bps, prop_ns })
}

fn arb_branch() -> impl Strategy<Value = BranchPlan> {
    let hold = prop_oneof![Just(None), (1u64..5_000).prop_map(Some)];
    proptest::collection::vec(hold, 0..3).prop_flat_map(|hops| {
        let links = proptest::collection::vec(arb_link(), hops.len() + 1..hops.len() + 2);
        (Just(hops), links).prop_map(|(hops, links)| BranchPlan { hops, links })
    })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    (
        proptest::collection::vec(arb_branch(), 1..4),
        any::<u64>(),
        1u32..40,
        1u32..24,
        32usize..512,
        100u64..50_000,
    )
        .prop_map(
            |(branches, seed, loss_pct, frames, payload, interval_ns)| Plan {
                seed,
                branches,
                loss: f64::from(loss_pct) / 100.0,
                frames,
                payload,
                interval_ns,
            },
        )
}

/// What one run distills to: `(digest, events, per-sink (count, bytes))`.
type RunResult = (u64, u64, Vec<(u64, u64)>);

fn run_plan(plan: &Plan, kind: SchedulerKind, faults: bool, telemetry: bool) -> RunResult {
    let mut sim = Simulator::with_scheduler(plan.seed, kind);
    if telemetry {
        sim.set_provenance(true);
        sim.set_metrics(Metrics::enabled());
    }
    let src = sim.add_node(
        "src",
        FanSource {
            interval: SimTime::from_ns(plan.interval_ns),
            count: plan.frames,
            payload: plan.payload,
            branches: plan.branches.len() as u32,
            sent: 0,
        },
    );
    let mut sinks = Vec::new();
    for (bi, branch) in plan.branches.iter().enumerate() {
        let mut prev = src;
        let mut prev_port = PortId(bi as u16);
        for (hi, hold) in branch.hops.iter().enumerate() {
            let hop = sim.add_node(
                format!("hop{bi}.{hi}"),
                Hop {
                    hold: hold.map(SimTime::from_ns),
                    held: std::collections::VecDeque::new(),
                },
            );
            let fault = faults.then(|| ((bi * 31 + hi) as u64, plan.loss));
            sim.install_link(
                prev,
                prev_port,
                hop,
                PortId(0),
                branch.links[hi].build(fault),
            );
            prev = hop;
            prev_port = PortId(1);
        }
        let sink = sim.add_node(format!("sink{bi}"), Sink::default());
        let fault = faults.then(|| ((bi * 31 + branch.hops.len()) as u64, plan.loss));
        sim.install_link(
            prev,
            prev_port,
            sink,
            PortId(0),
            branch.links[branch.hops.len()].build(fault),
        );
        sinks.push(sink);
    }
    sim.schedule_timer(SimTime::from_ns(10), src, TICK);
    sim.run();
    let tallies = sinks
        .iter()
        .map(|&s| {
            let sink = sim.node::<Sink>(s).expect("sink");
            (sink.delivered, sink.bytes)
        })
        .collect();
    (sim.trace.digest(), sim.trace.recorded(), tallies)
}

proptest! {
    /// For every random fan-out plan, every `{faults} × {telemetry}`
    /// setting runs bit-for-bit identically under both schedulers, and
    /// telemetry never moves a digest.
    #[test]
    fn schedulers_are_equivalent_on_random_topologies(plan in arb_plan()) {
        for faults in [false, true] {
            let mut baseline: Option<RunResult> = None;
            for telemetry in [false, true] {
                let heap = run_plan(&plan, SchedulerKind::BinaryHeap, faults, telemetry);
                for kind in SchedulerKind::ALL {
                    let other = run_plan(&plan, kind, faults, telemetry);
                    prop_assert_eq!(
                        &heap, &other,
                        "{} diverged (faults={}, telemetry={})", kind.name(), faults, telemetry
                    );
                }
                if !faults {
                    // Lossless fan-out must deliver every frame somewhere.
                    let total: u64 = heap.2.iter().map(|(n, _)| n).sum();
                    prop_assert_eq!(total, u64::from(plan.frames));
                }
                match &baseline {
                    None => baseline = Some(heap),
                    Some(b) => prop_assert_eq!(b, &heap, "telemetry moved the digest"),
                }
            }
        }
    }
}
