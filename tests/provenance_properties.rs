//! Property tests for per-hop latency provenance: over random chain
//! topologies — mixed link speeds, store-and-forward hops, bursty
//! arrivals — every delivered frame's segment sums must reconcile exactly
//! with its end-to-end latency, and turning telemetry on must never move
//! the trace digest.

use proptest::prelude::*;

use trading_networks::netdev::EtherLink;
use trading_networks::sim::{
    Context, Frame, IdealLink, Link, Metrics, Node, PortId, Provenance, SegmentKind, SimTime,
    Simulator, TimerToken,
};

const TICK: TimerToken = TimerToken(1);

/// Emits `count` frames of `payload` bytes, one per timer firing.
struct Source {
    interval: SimTime,
    count: u32,
    payload: usize,
    sent: u32,
}

impl Node for Source {
    fn on_frame(&mut self, _ctx: &mut Context<'_>, _port: PortId, _frame: Frame) {}

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        let frame = ctx.frame().zeroed(self.payload).build();
        ctx.send(PortId(0), frame);
        self.sent += 1;
        if self.sent < self.count {
            ctx.set_timer(self.interval, TICK);
        }
    }
}

/// A middle hop: either cut-through (forward immediately) or
/// store-and-forward (hold each frame for a fixed service time).
struct Hop {
    hold: Option<SimTime>,
    held: std::collections::VecDeque<Frame>,
}

impl Node for Hop {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        match self.hold {
            None => ctx.send(PortId(1), frame),
            Some(service) => {
                self.held.push_back(frame);
                ctx.set_timer(service, TICK);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        debug_assert_eq!(timer, TICK);
        if let Some(frame) = self.held.pop_front() {
            ctx.send(PortId(1), frame);
        }
    }
}

/// `(born_ps, arrived_ps, provenance)` per delivered frame.
type Deliveries = Vec<(u64, u64, Option<Provenance>)>;

/// Collects one [`Deliveries`] entry per delivered frame.
#[derive(Default)]
struct Sink {
    deliveries: Deliveries,
}

impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.deliveries.push((
            frame.born.as_ps(),
            ctx.now().as_ps(),
            frame.meta.provenance.map(|b| *b),
        ));
    }
}

/// One link of the chain, as drawn by proptest.
#[derive(Debug, Clone, Copy)]
struct LinkPlan {
    /// `None` is an ideal link; `Some(bps)` serializes.
    rate_bps: Option<u64>,
    prop_ns: u64,
}

impl LinkPlan {
    fn build(&self) -> Box<dyn Link> {
        let prop = SimTime::from_ns(self.prop_ns);
        match self.rate_bps {
            None => Box::new(IdealLink::new(prop)),
            Some(bps) => Box::new(EtherLink::new(bps, prop)),
        }
    }
}

#[derive(Debug, Clone)]
struct Plan {
    seed: u64,
    /// Hold time per middle hop; `None` forwards cut-through.
    hops: Vec<Option<u64>>, // ns
    /// One link per hop boundary: `hops.len() + 1` entries.
    links: Vec<LinkPlan>,
    frames: u32,
    payload: usize,
    interval_ns: u64,
}

fn arb_link() -> impl Strategy<Value = LinkPlan> {
    (
        prop_oneof![
            Just(None),
            Just(Some(1_000_000_000u64)),
            Just(Some(10_000_000_000u64)),
        ],
        0u64..20_000,
    )
        .prop_map(|(rate_bps, prop_ns)| LinkPlan { rate_bps, prop_ns })
}

fn arb_plan() -> impl Strategy<Value = Plan> {
    let hold = prop_oneof![Just(None), (1u64..5_000).prop_map(Some)];
    proptest::collection::vec(hold, 0..4).prop_flat_map(|hops| {
        let links = proptest::collection::vec(arb_link(), hops.len() + 1..hops.len() + 2);
        (
            Just(hops),
            links,
            any::<u64>(),
            1u32..24,
            32usize..1024,
            100u64..50_000,
        )
            .prop_map(|(hops, links, seed, frames, payload, interval_ns)| Plan {
                seed,
                hops,
                links,
                frames,
                payload,
                interval_ns,
            })
    })
}

/// Run the chain; returns `(digest, events, deliveries)`.
fn run_plan(plan: &Plan, telemetry: bool) -> (u64, u64, Deliveries) {
    let mut sim = Simulator::new(plan.seed);
    if telemetry {
        sim.set_provenance(true);
        sim.set_metrics(Metrics::enabled());
    }
    let src = sim.add_node(
        "src",
        Source {
            interval: SimTime::from_ns(plan.interval_ns),
            count: plan.frames,
            payload: plan.payload,
            sent: 0,
        },
    );
    let mut prev = src;
    for (i, hold) in plan.hops.iter().enumerate() {
        let hop = sim.add_node(
            format!("hop{i}"),
            Hop {
                hold: hold.map(SimTime::from_ns),
                held: std::collections::VecDeque::new(),
            },
        );
        let out = if prev == src { PortId(0) } else { PortId(1) };
        sim.install_link(prev, out, hop, PortId(0), plan.links[i].build());
        prev = hop;
    }
    let sink = sim.add_node("sink", Sink::default());
    let out = if prev == src { PortId(0) } else { PortId(1) };
    sim.install_link(
        prev,
        out,
        sink,
        PortId(0),
        plan.links[plan.hops.len()].build(),
    );
    sim.schedule_timer(SimTime::from_ns(10), src, TICK);
    sim.run();
    let deliveries = sim.node::<Sink>(sink).expect("sink").deliveries.clone();
    (sim.trace.digest(), sim.trace.recorded(), deliveries)
}

proptest! {
    /// Segment sums == end-to-end latency, exactly, for every frame of
    /// every random chain; provenance is contiguous (no gaps, no
    /// overlaps); and the digest is identical with telemetry on and off.
    #[test]
    fn provenance_reconciles_on_random_chains(plan in arb_plan()) {
        let (digest_off, events_off, plain) = run_plan(&plan, false);
        let (digest_on, events_on, traced) = run_plan(&plan, true);

        prop_assert_eq!(digest_off, digest_on, "telemetry moved the digest");
        prop_assert_eq!(events_off, events_on);
        prop_assert_eq!(plain.len(), traced.len());
        prop_assert_eq!(traced.len() as u32, plan.frames, "all frames delivered");
        prop_assert!(plain.iter().all(|(_, _, p)| p.is_none()));

        for (born, arrived, prov) in &traced {
            let prov = prov.as_ref().expect("provenance recorded when enabled");
            prop_assert!(prov.is_contiguous());
            prop_assert_eq!(prov.sum_ps(), prov.total_ps());
            prop_assert_eq!(prov.total_ps(), arrived - born, "segment sums must reconcile");
        }

        // Propagation is deterministic per link, so provenance must agree
        // with the plan: every frame crosses every link exactly once.
        let per_frame_prop_ps: u64 = plan
            .links
            .iter()
            .map(|l| SimTime::from_ns(l.prop_ns).as_ps())
            .sum();
        for (_, _, prov) in &traced {
            let seen: u64 = prov
                .as_ref()
                .unwrap()
                .segments()
                .iter()
                .filter(|s| s.kind == SegmentKind::Propagate)
                .map(|s| s.duration_ps())
                .sum();
            prop_assert_eq!(seen, per_frame_prop_ps);
        }
    }
}
