//! Integration: the §2 A/B feed pair over lossy metro links, through a
//! real normalizer node — redundancy absorbs single-path loss; only
//! both-path loss surfaces as gaps.

use trading_networks::fault::{FaultConnect, FaultSpec, LinkSpec};
use trading_networks::market::{Exchange, ExchangeConfig, PartitionScheme, SymbolDirectory};
use trading_networks::sim::{PortId, SimTime, Simulator};
use trading_networks::trading::{normalizer, Normalizer, NormalizerConfig};

fn run(loss_a: f64, loss_b: f64, seed: u64) -> (u64, u64, u64, u64) {
    let mut sim = Simulator::new(seed);
    let dir = SymbolDirectory::synthetic(20);
    let mut cfg = ExchangeConfig::new(1, dir);
    cfg.scheme = PartitionScheme::ByHash { units: 2 };
    cfg.background_rate = 40_000.0;
    cfg.tick_interval = SimTime::from_us(100);
    cfg.feed_ports = vec![PortId(0), PortId(1)]; // the A/B pair
    let exchange = sim.add_node("exch", Exchange::new(cfg));

    let norm = sim.add_node("norm", Normalizer::new(NormalizerConfig::new(1, 0)));
    // Two independent lossy paths, as microwave circuits would be; each
    // fault stream derives its seed from the scenario's, so a run replays
    // from one number.
    sim.connect_spec(
        exchange,
        PortId(0),
        norm,
        normalizer::FEED_A,
        &LinkSpec::ten_gig(SimTime::from_us(100))
            .with_fault(FaultSpec::new(seed ^ 0xA).with_iid_loss(loss_a)),
    );
    sim.connect_spec(
        exchange,
        PortId(1),
        norm,
        normalizer::FEED_B,
        &LinkSpec::ten_gig(SimTime::from_us(120))
            .with_fault(FaultSpec::new(seed ^ 0xB).with_iid_loss(loss_b)),
    );
    sim.schedule_timer(SimTime::ZERO, exchange, trading_networks::market::TICK);
    sim.run_until(SimTime::from_ms(60));

    let published = sim.node::<Exchange>(exchange).unwrap().stats().feed_packets / 2;
    let n = sim.node::<Normalizer>(norm).unwrap();
    let arb = n.core().arbiter().stats();
    (published, arb.accepted, arb.duplicates, arb.gap_messages)
}

/// Packets published in the last ~link-delay before the deadline may
/// still be in flight; allow that small tail.
const IN_FLIGHT_TOLERANCE: u64 = 8;

#[test]
fn clean_ab_pair_delivers_everything_once() {
    let (published, accepted, duplicates, gaps) = run(0.0, 0.0, 1);
    assert!(published > 100);
    assert!(
        accepted + IN_FLIGHT_TOLERANCE >= published && accepted <= published,
        "exactly-once delivery: {accepted} of {published}"
    );
    assert!(
        duplicates + IN_FLIGHT_TOLERANCE >= accepted,
        "every twin dropped"
    );
    assert_eq!(gaps, 0);
}

#[test]
fn single_path_loss_is_invisible() {
    // 5% loss on A alone: B covers every hole; no gaps reach the book.
    let (published, accepted, _dups, gaps) = run(0.05, 0.0, 2);
    assert!(accepted + IN_FLIGHT_TOLERANCE >= published && accepted <= published);
    assert_eq!(gaps, 0, "redundancy must hide single-path loss");
}

#[test]
fn dual_path_loss_surfaces_as_gaps() {
    // Heavy loss on both paths: some packets die twice.
    let (published, accepted, _dups, gaps) = run(0.2, 0.2, 3);
    assert!(accepted < published);
    assert!(gaps > 0, "both-path loss must be visible as sequence gaps");
    // But far fewer gaps than either path's raw loss (~4% joint vs 20%).
    let joint_loss = (published - accepted) as f64 / published as f64;
    assert!(joint_loss < 0.10, "joint loss {joint_loss} should be ~0.04");
}

#[test]
fn ab_skew_does_not_reorder_the_stream() {
    // B is 20 us slower than A: whichever copy lands first wins, and the
    // message stream stays in sequence (the arbiter's contract).
    let (published, accepted, _d, gaps) = run(0.10, 0.10, 4);
    assert!(accepted <= published);
    // The normalizer processed everything the arbiter released without
    // unknown-order errors — in-order delivery held.
    let _ = gaps;
}
