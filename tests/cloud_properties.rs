//! Property tests for the tn-cloud fairness mechanisms: with every
//! stochastic knob zeroed the machinery must be *exactly* fair and
//! *exactly* transparent, over random overlay shapes and under every
//! scheduler.
//!
//! * Equalizer: zero hop jitter + zero residual + a covering ceiling ⇒
//!   every subscriber sees each event at the identical instant — the
//!   delivery spread is exactly zero, not merely small.
//! * Sequencer: perfect clock sync (ε = 0) ⇒ release order equals
//!   arrival order, each release exactly `hold` after its arrival, with
//!   zero reordered releases.
//!
//! Both properties double as scheduler-equivalence checks: the three
//! event schedulers must agree on the trace digest for every drawn case.

use std::collections::BTreeMap;

use proptest::prelude::*;

use trading_networks::cloud::{
    equalizer, overlay, sequencer, DelayEqualizer, EqualizerConfig, HoldReleaseSequencer,
    OverlayTree, OverlayTreeConfig, SequencerConfig,
};
use trading_networks::sim::{
    Context, Frame, IdealLink, Node, PortId, SchedulerKind, SimTime, Simulator, TimerToken,
};

const EMIT: TimerToken = TimerToken(7);

/// Emits one tagged frame per timer tick, so each event is *born* at its
/// emission instant (the equalizer pads relative to birth).
struct Source {
    period: SimTime,
    left: u32,
}

impl Node for Source {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        ctx.recycle(frame);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerToken) {
        let f = ctx.frame().zeroed(128).tag(u64::from(self.left)).build();
        ctx.send(PortId(0), f);
        if self.left > 0 {
            self.left -= 1;
            ctx.set_timer(self.period, EMIT);
        }
    }
}

/// Records `(frame id, arrival ps)` per delivery.
#[derive(Default)]
struct Sink {
    seen: Vec<(u64, u64)>,
    tags: Vec<u64>,
}

impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        self.seen.push((frame.id.0, ctx.now().as_ps()));
        self.tags.push(frame.meta.tag);
        ctx.recycle(frame);
    }
}

/// One drawn overlay shape plus traffic pattern.
#[derive(Debug, Clone)]
struct OverlayCase {
    fanout: u16,
    subscribers: usize,
    events: u32,
    period_ns: u64,
    vm_prop_ns: u64,
    copy_gap_ns: u64,
    seed: u64,
}

fn arb_overlay() -> impl Strategy<Value = OverlayCase> {
    (
        2u16..6,
        1usize..10,
        1u32..12,
        200u64..5_000,
        100u64..30_000,
        0u64..300,
        any::<u64>(),
    )
        .prop_map(
            |(fanout, subscribers, events, period_ns, vm_prop_ns, copy_gap_ns, seed)| OverlayCase {
                fanout,
                subscribers,
                events,
                period_ns,
                vm_prop_ns,
                copy_gap_ns,
                seed,
            },
        )
}

/// Build + run the overlay → equalizer-gate pipeline for one scheduler;
/// returns `(digest, per-sink deliveries)`.
fn run_overlay(case: &OverlayCase, kind: SchedulerKind) -> (u64, Vec<Vec<(u64, u64)>>) {
    let mut sim = Simulator::with_scheduler(case.seed, kind);
    let src = sim.add_node(
        "src",
        Source {
            period: SimTime::from_ns(case.period_ns),
            left: case.events - 1,
        },
    );
    let cfg = OverlayTreeConfig {
        fanout: case.fanout,
        leaves: case.subscribers,
        copy_gap: SimTime::from_ns(case.copy_gap_ns),
    };
    let tree = OverlayTree::build(&mut sim, "ov", &cfg, |_| {
        Box::new(IdealLink::new(SimTime::from_ns(case.vm_prop_ns)))
    });
    sim.install_link(
        src,
        PortId(0),
        tree.root,
        overlay::RELAY_IN,
        Box::new(IdealLink::new(SimTime::from_ns(case.vm_prop_ns))),
    );
    // Conservative covering ceiling: every hop is an ideal `vm_prop`
    // link (publisher + intra-tree + leaf = depth + 1 of them) and each
    // relay level can stagger copies by at most `fanout × copy_gap`.
    let ceiling_ns = (tree.depth as u64 + 1) * case.vm_prop_ns
        + (tree.depth as u64 + 1) * u64::from(case.fanout) * case.copy_gap_ns
        + 1_000;
    let mut sinks = Vec::new();
    for (s, &(relay, port)) in tree.leaf_ports.iter().enumerate() {
        let gate = sim.add_node(
            format!("gate{s}"),
            DelayEqualizer::new(EqualizerConfig {
                ceiling: SimTime::from_ns(ceiling_ns),
                residual: SimTime::ZERO,
                seed: case.seed ^ s as u64,
            }),
        );
        sim.install_link(
            relay,
            port,
            gate,
            equalizer::IN,
            Box::new(IdealLink::new(SimTime::from_ns(case.vm_prop_ns))),
        );
        let sink = sim.add_node(format!("sink{s}"), Sink::default());
        sim.install_link(
            gate,
            equalizer::OUT,
            sink,
            PortId(0),
            Box::new(IdealLink::new(SimTime::ZERO)),
        );
        sinks.push(sink);
    }
    sim.schedule_timer(SimTime::from_ns(10), src, EMIT);
    sim.run();
    let deliveries = sinks
        .iter()
        .map(|&s| sim.node::<Sink>(s).expect("sink").seen.clone())
        .collect();
    (sim.trace.digest(), deliveries)
}

/// One drawn sequencer workload: sorted arrival instants and a hold.
#[derive(Debug, Clone)]
struct SequencerCase {
    arrivals_ns: Vec<u64>,
    hold_ns: u64,
    seed: u64,
}

fn arb_sequencer() -> impl Strategy<Value = SequencerCase> {
    (
        proptest::collection::vec(10u64..100_000, 1..40),
        0u64..10_000,
        any::<u64>(),
    )
        .prop_map(|(mut arrivals_ns, hold_ns, seed)| {
            arrivals_ns.sort_unstable();
            SequencerCase {
                arrivals_ns,
                hold_ns,
                seed,
            }
        })
}

/// Run one sequencer workload under `kind`; returns
/// `(digest, sink tags, sink arrival ps, reordered)`.
fn run_sequencer(case: &SequencerCase, kind: SchedulerKind) -> (u64, Vec<u64>, Vec<u64>, u64) {
    let mut sim = Simulator::with_scheduler(case.seed, kind);
    let seqr = sim.add_node(
        "seq",
        HoldReleaseSequencer::new(SequencerConfig {
            hold: SimTime::from_ns(case.hold_ns),
            clock_error: SimTime::ZERO,
            seed: case.seed,
        }),
    );
    let sink = sim.add_node("sink", Sink::default());
    sim.install_link(
        seqr,
        sequencer::OUT,
        sink,
        PortId(0),
        Box::new(IdealLink::new(SimTime::ZERO)),
    );
    for (i, &at) in case.arrivals_ns.iter().enumerate() {
        let f = sim.frame().zeroed(64).tag(i as u64).build();
        sim.inject_frame(SimTime::from_ns(at), seqr, sequencer::IN, f);
    }
    sim.run();
    let reordered = sim
        .node::<HoldReleaseSequencer>(seqr)
        .expect("sequencer")
        .stats()
        .reordered;
    let snk = sim.node::<Sink>(sink).expect("sink");
    let ats = snk.seen.iter().map(|&(_, at)| at).collect();
    (sim.trace.digest(), snk.tags.clone(), ats, reordered)
}

proptest! {
    /// Zero jitter + zero residual + covering ceiling ⇒ the delivery
    /// spread of every event across every subscriber is exactly zero,
    /// under all three schedulers, which also must agree on the digest.
    #[test]
    fn zero_jitter_equalizer_has_exactly_zero_spread(case in arb_overlay()) {
        let mut digests = Vec::new();
        for kind in SchedulerKind::ALL {
            let (digest, deliveries) = run_overlay(&case, kind);
            digests.push(digest);
            // Every subscriber saw every event exactly once…
            for per_sink in &deliveries {
                prop_assert_eq!(per_sink.len(), case.events as usize,
                    "{}: wrong delivery count", kind.name());
            }
            // …and for each event (grouped by frame id, preserved across
            // relay clones) all release instants are identical.
            let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for per_sink in &deliveries {
                for &(id, at) in per_sink {
                    groups.entry(id).or_default().push(at);
                }
            }
            prop_assert_eq!(groups.len(), case.events as usize);
            for (id, ats) in groups {
                let spread = ats.iter().max().unwrap() - ats.iter().min().unwrap();
                prop_assert_eq!(spread, 0,
                    "{}: event {} spread {} ps across {:?}",
                    kind.name(), id, spread, ats);
            }
        }
        prop_assert!(digests.windows(2).all(|w| w[0] == w[1]),
            "schedulers disagree: {digests:x?}");
    }

    /// Perfect clock sync ⇒ release order equals arrival order exactly,
    /// each release exactly `hold` after its arrival, zero reordered —
    /// for any hold, any arrival pattern, all three schedulers.
    #[test]
    fn perfect_clocks_release_in_arrival_order(case in arb_sequencer()) {
        let want_tags: Vec<u64> = (0..case.arrivals_ns.len() as u64).collect();
        let want_ats: Vec<u64> = case
            .arrivals_ns
            .iter()
            .map(|&ns| SimTime::from_ns(ns + case.hold_ns).as_ps())
            .collect();
        let mut digests = Vec::new();
        for kind in SchedulerKind::ALL {
            let (digest, tags, ats, reordered) = run_sequencer(&case, kind);
            digests.push(digest);
            prop_assert_eq!(&tags, &want_tags, "{}: release order", kind.name());
            prop_assert_eq!(&ats, &want_ats, "{}: release times", kind.name());
            prop_assert_eq!(reordered, 0, "{}: spurious reorder count", kind.name());
        }
        prop_assert!(digests.windows(2).all(|w| w[0] == w[1]),
            "schedulers disagree: {digests:x?}");
    }
}
