//! Cross-crate integration tests: the whole system assembled through the
//! facade crate, asserting the paper's structural and quantitative claims
//! end to end.

use trading_networks::core::design::{
    CloudDesign, LayerOneSwitches, TradingNetworkDesign, TraditionalSwitches,
};
use trading_networks::core::ScenarioConfig;
use trading_networks::sim::SimTime;

fn quick(seed: u64) -> ScenarioConfig {
    ScenarioConfig::builder(seed)
        .duration(SimTime::from_ms(25))
        .build()
        .expect("valid scenario")
}

#[test]
fn design1_full_loop_produces_fills() {
    let report = TraditionalSwitches::default().run(&quick(11));
    // The complete causal chain: feed -> normalize -> decide -> gateway
    // -> exchange -> ack/fill, all over the simulated fabric.
    assert!(report.feed_messages > 500, "{}", report.summary());
    assert!(report.orders_sent > 10, "{}", report.summary());
    assert_eq!(report.orders_sent, report.acks, "every order must be acked");
    assert!(
        report.fills > 0,
        "momentum orders cross the spread: some must fill"
    );
    assert!(
        report.frames_dropped == 0,
        "no loss in an unloaded design-1 fabric"
    );
}

#[test]
fn reaction_decomposition_matches_section_4_1() {
    // With the paper's assumption of ~2 us per software function, the
    // network's share of the round trip should be roughly half — §4.1's
    // punchline ("half of the overall time through the system is spent
    // in the network").
    let mut sc = quick(13);
    sc.normalizer_service = SimTime::from_us(2);
    sc.background_rate = 10_000.0; // light load: no queueing noise
    sc.tick_interval = SimTime::from_us(20); // near-per-event publication
    let report = TraditionalSwitches::default().run(&sc);
    assert!(report.reaction.count > 0);
    let share = report.network_share;
    assert!(
        (0.30..=0.75).contains(&share),
        "network share should be near half, got {share:.2}\n{}",
        report.summary()
    );
}

#[test]
fn design_ordering_holds_across_seeds() {
    // The paper's qualitative result must be robust, not a seed artifact.
    for seed in [1, 2, 3] {
        let sc = quick(seed);
        let d1 = TraditionalSwitches::default().run(&sc);
        let d3 = LayerOneSwitches::default().run(&sc);
        assert!(
            d3.reaction.median < d1.reaction.median,
            "seed {seed}: d3 {} !< d1 {}",
            d3.reaction.median,
            d1.reaction.median
        );
        assert!(d3.network_time() < d1.network_time(), "seed {seed}");
    }
}

#[test]
fn cloud_is_orders_of_magnitude_slower() {
    let sc = quick(17);
    let d1 = TraditionalSwitches::default().run(&sc);
    let d2 = CloudDesign::default().run(&sc);
    assert!(d2.reaction.count > 0, "{}", d2.summary());
    // Equalized fabric + WAN puts the cloud's reaction out by >10x.
    assert!(
        d2.reaction.median.as_ps() > 10 * d1.reaction.median.as_ps(),
        "d2 {} vs d1 {}",
        d2.reaction.median,
        d1.reaction.median
    );
}

#[test]
fn l1_subscription_cap_reduces_coverage() {
    // §4.3: capping subscriptions means strategies miss market data. With
    // the cap at 1 of 2 normalizers, roughly half the records reaching
    // each strategy disappear.
    let sc = quick(19);
    let full = LayerOneSwitches {
        subscription_cap: None,
        ..Default::default()
    }
    .run(&sc);
    let capped = LayerOneSwitches {
        subscription_cap: Some(1),
        ..Default::default()
    }
    .run(&sc);
    let full_seen = full.records_evaluated + full.records_discarded;
    let capped_seen = capped.records_evaluated + capped.records_discarded;
    assert!(full_seen > 0 && capped_seen > 0);
    assert!(
        (capped_seen as f64) < 0.8 * full_seen as f64,
        "cap should shrink delivered records: {capped_seen} vs {full_seen}"
    );
}

#[test]
fn identical_seeds_identical_reports() {
    let sc = quick(23);
    let a = TraditionalSwitches::default().run(&sc);
    let b = TraditionalSwitches::default().run(&sc);
    assert_eq!(a.reaction.count, b.reaction.count);
    assert_eq!(a.reaction.median, b.reaction.median);
    assert_eq!(a.feed_messages, b.feed_messages);
    assert_eq!(a.orders_sent, b.orders_sent);
}

#[test]
fn strategies_only_see_subscribed_partitions_on_multicast_fabrics() {
    // On design 1 the switches filter by group: strategies should discard
    // nothing (their NIC never sees unsubscribed partitions).
    let report = TraditionalSwitches::default().run(&quick(29));
    assert_eq!(report.records_discarded, 0, "{}", report.summary());
    // On the L1 fabric, circuits deliver whole normalizer outputs, so
    // host-side filtering must be doing real work.
    let l1 = LayerOneSwitches::default().run(&quick(29));
    assert!(l1.records_discarded > 0, "{}", l1.summary());
}
