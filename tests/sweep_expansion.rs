//! Property tests for `tn-lab` sweep expansion.
//!
//! The parallel batch runner's determinism rests on `SweepSpec::expand`
//! being a pure function of the spec: the manifest must come out in the
//! same order every time, cover exactly `designs × Π(axis lengths) ×
//! seeds` runs, and never repeat a (design, params, seed) tuple. These
//! properties are what let `run_batch` merge worker results by manifest
//! index and still be byte-identical to a serial run, so they are pinned
//! here over random axis shapes rather than just the fixed smoke grid.

use proptest::prelude::*;
use trading_networks::lab::{Axis, AxisValues, LabReport, RunOutcome, RunPlan, SweepSpec};

/// Distinct positive values derived from the index, so duplicate axis
/// values (which would legitimately collapse cells) cannot occur.
fn arb_axis(name: String) -> impl Strategy<Value = Axis> {
    let list = proptest::collection::vec(1u32..1000, 1..5).prop_map(|raw| {
        let mut vs: Vec<f64> = raw.into_iter().map(f64::from).collect();
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vs.dedup();
        AxisValues::List(vs)
    });
    let range = (1u32..100, 1u32..5, 1u32..50).prop_map(|(start, count, step)| AxisValues::Range {
        start: f64::from(start),
        stop: f64::from(start + (count - 1) * step),
        step: f64::from(step),
    });
    let log = (1u32..100, 1usize..5).prop_map(|(start, points)| AxisValues::LogRange {
        start: f64::from(start),
        stop: f64::from(start * 16),
        points,
    });
    prop_oneof![list, range, log].prop_map(move |values| Axis {
        param: name.clone(),
        values,
    })
}

fn arb_spec() -> impl Strategy<Value = SweepSpec> {
    let designs = prop_oneof![
        Just(vec!["traditional".to_string()]),
        Just(vec!["traditional".to_string(), "cloud".to_string()]),
        Just(vec![
            "l1".to_string(),
            "fpga".to_string(),
            "traditional".to_string()
        ]),
    ];
    let axes = prop_oneof![
        Just(Vec::new()).boxed(),
        arb_axis("axis0".into()).prop_map(|a| vec![a]).boxed(),
        (arb_axis("axis0".into()), arb_axis("axis1".into()))
            .prop_map(|(a, b)| vec![a, b])
            .boxed(),
        (
            arb_axis("axis0".into()),
            arb_axis("axis1".into()),
            arb_axis("axis2".into()),
        )
            .prop_map(|(a, b, c)| vec![a, b, c])
            .boxed(),
    ];
    let seeds = proptest::collection::vec(1u64..1_000, 1..4).prop_map(|mut s| {
        s.sort_unstable();
        s.dedup();
        s
    });
    (designs, axes, seeds).prop_map(|(designs, axes, seeds)| SweepSpec {
        name: "prop".into(),
        base: "small".into(),
        designs,
        overrides: vec![("duration_us".into(), 8_000.0)],
        axes,
        seeds,
    })
}

proptest! {
    /// Same spec, same manifest — expansion has no hidden state.
    #[test]
    fn expansion_is_deterministic(spec in arb_spec()) {
        prop_assert_eq!(spec.expand().unwrap(), spec.expand().unwrap());
    }

    /// The manifest covers the full cross product, nothing more.
    #[test]
    fn expansion_is_complete(spec in arb_spec()) {
        let manifest = spec.expand().unwrap();
        let cells: usize = spec
            .axes
            .iter()
            .map(|a| a.values.materialize().unwrap().len())
            .product();
        prop_assert_eq!(
            manifest.len(),
            spec.designs.len() * cells * spec.seeds.len()
        );
    }

    /// No two runs resolve to the same (design, params, seed) tuple, and
    /// indices are sequential so worker results merge by position.
    #[test]
    fn expansion_is_duplicate_free_and_indexed(spec in arb_spec()) {
        let manifest = spec.expand().unwrap();
        for (i, plan) in manifest.iter().enumerate() {
            prop_assert_eq!(plan.index, i);
        }
        let mut keys: Vec<(String, u64, String)> = manifest
            .iter()
            .map(|p| (p.design.clone(), p.seed, format!("{:?}", p.params)))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "manifest has duplicate runs");
    }

    /// The spec survives serialization: emit → parse → emit is
    /// byte-stable and the parsed spec expands to the same manifest.
    #[test]
    fn spec_round_trips_through_json(spec in arb_spec()) {
        let j = spec.to_json();
        let back = SweepSpec::parse(&j).unwrap();
        prop_assert_eq!(back.to_json(), j);
        prop_assert_eq!(back.expand().unwrap(), spec.expand().unwrap());
    }
}

/// Synthetic outcomes for the report round-trip below — one run per
/// manifest entry with index-derived samples and metrics.
fn stub_outcomes(manifest: &[RunPlan]) -> Vec<RunOutcome> {
    manifest
        .iter()
        .map(|p| RunOutcome {
            digest: 0x1000 + p.index as u64,
            events: 100 + p.index as u64,
            samples_ps: (0..20).map(|i| 1_000 + 13 * i + p.index as u64).collect(),
            metrics: vec![("fills".into(), p.index as f64)],
        })
        .collect()
}

#[test]
fn lab_report_round_trips_byte_exactly() {
    let spec = SweepSpec::smoke();
    let manifest = spec.expand().unwrap();
    let report = LabReport::build(&spec.name, &spec.base, &manifest, &stub_outcomes(&manifest));
    let j = report.to_json();
    let back = LabReport::parse(&j).unwrap();
    assert_eq!(back, report);
    assert_eq!(back.to_json(), j, "emit→parse→emit must be byte-stable");
    assert_eq!(report.runs.len(), 18);
    assert_eq!(
        report.cells.len(),
        18,
        "one seed per cell on the smoke grid"
    );
}

#[test]
fn lab_report_pools_seed_replicates_into_one_cell() {
    let mut spec = SweepSpec::smoke();
    spec.axes.truncate(1); // 3 cells…
    spec.seeds = vec![1, 2, 3]; // …× 3 seeds = 9 runs
    let manifest = spec.expand().unwrap();
    let report = LabReport::build(&spec.name, &spec.base, &manifest, &stub_outcomes(&manifest));
    assert_eq!(report.runs.len(), 9);
    assert_eq!(report.cells.len(), 3);
    for cell in &report.cells {
        assert_eq!(cell.seeds, vec![1, 2, 3]);
        assert_eq!(cell.count, 60, "3 runs × 20 pooled samples");
    }
    let back = LabReport::parse(&report.to_json()).unwrap();
    assert_eq!(back, report);
}
