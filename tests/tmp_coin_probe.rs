//! Scratch review probe: does an intra-shard kernel-coin link diverge
//! from the serial run? (Deleted after review.)

use trading_networks::netdev::EtherLink;
use trading_networks::sim::{
    Context, Frame, IdealLink, Node, PortId, ShardPlan, ShardedSimulator, SimTime, Simulator,
    TimerToken,
};

struct Ticker {
    period: SimTime,
    ticks_left: u32,
}

impl Node for Ticker {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        ctx.recycle(frame);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        let f = ctx.frame().zeroed(64).tag(u64::from(self.ticks_left)).build();
        ctx.send(PortId(0), f);
        if self.ticks_left > 0 {
            self.ticks_left -= 1;
            ctx.set_timer(self.period, timer);
        }
    }
}

struct Sink;
impl Node for Sink {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        ctx.recycle(frame);
    }
}

fn build() -> Simulator {
    let mut sim = Simulator::new(42);
    let a = sim.add_node(
        "a",
        Ticker {
            period: SimTime::from_ns(100),
            ticks_left: 200,
        },
    );
    let b = sim.add_node("b", Sink);
    let c = sim.add_node("c", Sink);
    // Lossy (kernel-coin) link fully inside shard 0.
    let lossy = EtherLink::ten_gig(SimTime::from_ns(5)).with_loss(0.3);
    sim.install_link(a, PortId(0), b, PortId(0), Box::new(lossy));
    // Clean cut link b->c so a 2-shard plan validates.
    sim.install_link(b, PortId(1), c, PortId(0), Box::new(IdealLink::new(SimTime::from_ns(50))));
    sim.schedule_timer(SimTime::ZERO, a, TimerToken(1));
    sim
}

#[test]
fn intra_shard_coin_link_digest() {
    let deadline = SimTime::from_us(50);
    let mut serial = build();
    serial.run_until(deadline);
    let want = (serial.trace.digest(), serial.stats().frames_dropped);

    let sim = build();
    let plan = ShardPlan::manual(vec![0, 0, 1]);
    plan.validate(&sim).expect("coin link is intra-shard, so validate accepts it");
    let mut sharded = ShardedSimulator::split(sim, &plan).expect("valid");
    sharded.run_until(deadline);
    let merged = sharded.finish();
    let got = (merged.trace.digest(), merged.stats().frames_dropped);
    assert_eq!(got, want, "sharded run diverged from serial");
}
