//! Property tests for the flight recorder and kernel self-profiler: over
//! random scenario configurations — seeds, schedulers, workload rates,
//! optional feed faults — a run with the flight recorder and profiler
//! fully on must produce a bit-identical trace digest to the same run
//! with them off, and the recorder's ring must never hold more records
//! than its configured capacity no matter how many kernel events flow
//! through it.
//!
//! This is the contract that makes `ObsConfig::flight`/`profile` pure
//! observability knobs: turning them on may never change a result, and
//! their memory use is bounded up front.

use proptest::prelude::*;

use trading_networks::core::{ScenarioConfig, TradingNetworkDesign, TraditionalSwitches};
use trading_networks::fault::FaultSpec;
use trading_networks::sim::{
    Context, FlightKind, FlightRecord, FlightRecorder, Frame, IdealLink, Node, PortId,
    SchedulerKind, SimTime, Simulator, TimerToken,
};

/// One randomized scenario drawing: workload knobs that materially move
/// the event stream, plus the observability capacity under test.
#[derive(Debug, Clone)]
struct Draw {
    seed: u64,
    scheduler: SchedulerKind,
    background_rate: f64,
    subs_per_strategy: usize,
    flight_capacity: u32,
    loss: Option<f64>,
}

fn arb_draw() -> impl Strategy<Value = Draw> {
    (
        any::<u64>(),
        prop_oneof![
            Just(SchedulerKind::BinaryHeap),
            Just(SchedulerKind::CalendarQueue),
            Just(SchedulerKind::TimingWheel),
        ],
        10_000u32..80_000,
        1usize..5,
        1u32..2_048,
        prop_oneof![
            Just(None),
            (1u32..20).prop_map(|p| Some(f64::from(p) / 100.0))
        ],
    )
        .prop_map(
            |(seed, scheduler, rate, subs, flight_capacity, loss)| Draw {
                seed,
                scheduler,
                background_rate: f64::from(rate),
                subs_per_strategy: subs,
                flight_capacity,
                loss,
            },
        )
}

/// Build the scenario for a draw, trimmed short enough that a proptest
/// sweep stays fast while still exercising warmup, faults, and recovery.
fn scenario(draw: &Draw, flight: bool) -> ScenarioConfig {
    let mut sc = ScenarioConfig::small(draw.seed);
    sc.scheduler = draw.scheduler;
    sc.background_rate = draw.background_rate;
    sc.subs_per_strategy = draw.subs_per_strategy;
    sc.duration = SimTime::from_ms(2);
    sc.warmup = SimTime::from_us(500);
    sc.feed_fault = draw
        .loss
        .map(|p| FaultSpec::new(draw.seed ^ 0x9e37).with_iid_loss(p));
    if flight {
        sc.obs.flight = true;
        sc.obs.flight_capacity = draw.flight_capacity;
        sc.obs.profile = true;
    }
    sc
}

proptest! {
    /// For every random scenario, the flight recorder and profiler are
    /// digest-neutral: on-vs-off runs agree bit-for-bit on the trace
    /// digest and event count, and the on-run actually collected a
    /// profile (the knob is live, not silently ignored).
    #[test]
    fn flight_and_profiler_never_move_the_digest(draw in arb_draw()) {
        let design = TraditionalSwitches::default();
        let off = design.run(&scenario(&draw, false));
        let on = design.run(&scenario(&draw, true));
        prop_assert_eq!(
            (off.trace_digest, off.events_recorded),
            (on.trace_digest, on.events_recorded),
            "flight recorder/profiler perturbed the run: {:?}", draw
        );
        prop_assert!(on.profile.is_some(), "profiler knob was on but no profile collected");
        prop_assert!(off.profile.is_none(), "profiler knob was off but a profile appeared");
        let dump = on.flight_dump.as_deref().unwrap_or("");
        prop_assert!(dump.starts_with("tn-flight dump @ "), "bad dump header: {dump:.40}");
    }

    /// The ring is hard-bounded: however many records flow through, the
    /// buffer holds at most `capacity` of them — and exactly the newest
    /// ones, oldest-first on read-back.
    #[test]
    fn ring_never_exceeds_capacity(
        capacity in 1usize..128,
        count in 0u64..600,
    ) {
        let mut ring = FlightRecorder::with_capacity(capacity);
        for i in 0..count {
            ring.record(FlightRecord { at_ps: i, kind: FlightKind::Schedule, node: 7, shard: 0, a: i, b: i * 2 });
        }
        prop_assert!(ring.len() <= capacity);
        prop_assert_eq!(ring.len(), count.min(capacity as u64) as usize);
        prop_assert_eq!(ring.total(), count);
        prop_assert_eq!(ring.capacity(), capacity);
        // Read-back is the newest `len()` records, oldest first.
        let first = count.saturating_sub(capacity as u64);
        for (k, rec) in ring.records().enumerate() {
            prop_assert_eq!(rec.a, first + k as u64);
        }
    }

    /// Same bound observed end-to-end through a live kernel: a timer
    /// ping-pong generates far more events than the ring holds, and the
    /// ring never grows past its configured capacity.
    #[test]
    fn kernel_runs_respect_the_ring_bound(
        capacity in 1usize..48,
        bounces in 1u32..400,
    ) {
        let mut sim = Simulator::new(1);
        sim.set_flight_capacity(capacity);
        let ping = sim.add_node("ping", Bouncer { remaining: bounces });
        let pong = sim.add_node("pong", Bouncer { remaining: bounces });
        let hop = || Box::new(IdealLink::new(SimTime::from_ns(50)));
        sim.install_link(ping, PortId(0), pong, PortId(0), hop());
        sim.install_link(pong, PortId(0), ping, PortId(0), hop());
        sim.schedule_timer(SimTime::from_ns(10), ping, TimerToken(1));
        sim.run();
        let ring = sim.flight();
        prop_assert!(ring.is_enabled());
        prop_assert!(ring.len() <= capacity, "len {} > capacity {}", ring.len(), capacity);
        prop_assert!(ring.total() >= ring.len() as u64);
        prop_assert!(ring.total() >= u64::from(bounces), "ping-pong under-recorded");
    }
}

/// Echoes every frame back out and seeds the exchange with one timer
/// frame; `remaining` bounds the volley so runs terminate.
struct Bouncer {
    remaining: u32,
}

impl Node for Bouncer {
    fn on_frame(&mut self, ctx: &mut Context<'_>, _port: PortId, frame: Frame) {
        if self.remaining == 0 {
            ctx.recycle(frame);
            return;
        }
        self.remaining -= 1;
        ctx.send(PortId(0), frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerToken) {
        let frame = ctx.frame().zeroed(64).build();
        ctx.send(PortId(0), frame);
    }
}
